"""Benchmark: regenerate Fig. 6 (refresh-timer sweep, single hop)."""

from __future__ import annotations

from repro.experiments import run_experiment


def test_bench_fig06(benchmark):
    result = benchmark(run_experiment, "fig6", fast=True)
    rate_panel = result.panel("b: signaling message rate")
    ss = rate_panel.series_by_label("SS")
    assert ss.y[0] > ss.y[-1]  # long timers are cheap
