"""Benchmark: regenerate Fig. 5 (loss-rate and delay sensitivity)."""

from __future__ import annotations

from repro.experiments import run_experiment


def test_bench_fig05(benchmark):
    result = benchmark(run_experiment, "fig5", fast=True)
    loss_panel = result.panel("a: vs loss rate")
    for series in loss_panel.series:
        assert series.y[-1] > series.y[0]  # loss hurts everyone
