"""Benchmarks for the O(hops) block-tridiagonal chain kernel.

The headline claim (ISSUE 10): at 128 hops on the heterogeneous
scaling workload the structured backend must beat the generic dense
per-point path by >= 5x, while matching it to solver tolerance.  The
nightly bench job records this file as ``BENCH_chain_kernel.json`` so
the kernel has its own trend series.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core import templates
from repro.core.multihop.heterogeneous import HeterogeneousMultiHopModel
from repro.core.parameters import reservation_defaults
from repro.core.protocols import Protocol
from repro.experiments.scaling import heterogeneous_path

HOPS = 128


def _timed(func):
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start


def _scaling_points():
    """The 128-hop heterogeneous decoding grid of the scaling scenario."""
    params = reservation_defaults().replace(hops=HOPS)
    hops = heterogeneous_path(HOPS)
    return [
        (params.with_coupled_timers(refresh), hops)
        for refresh in (2.0, 3.0, 5.0, 8.0, 10.0, 15.0)
    ]


def test_bench_chain_kernel_128_hops_speedup(run_once):
    """>= 5x over the generic dense path at 128 hops, same answers."""
    points = _scaling_points()
    template = templates.multihop_template(Protocol.SS, HOPS)
    template.solve_batch(points[:1], backend="structured")  # warm caches
    fast, fast_seconds = _timed(
        lambda: run_once(lambda: template.solve_batch(points, backend="structured"))
    )
    reference, reference_seconds = _timed(
        lambda: [
            HeterogeneousMultiHopModel(Protocol.SS, point_params, point_hops).solve()
            for point_params, point_hops in points
        ]
    )
    assert len(fast) == len(points)
    for fast_solution, reference_solution in zip(fast, reference):
        for state, probability in reference_solution.stationary.items():
            assert fast_solution.stationary[state] == pytest.approx(
                probability, abs=1e-9
            )
    if os.environ.get("CI"):
        pytest.skip(
            f"CI runner: recorded structured {fast_seconds:.3f}s vs "
            f"dense {reference_seconds:.3f}s without asserting"
        )
    assert fast_seconds * 5.0 < reference_seconds, (
        f"expected >= 5x: structured {fast_seconds:.3f}s vs "
        f"dense {reference_seconds:.3f}s "
        f"({reference_seconds / fast_seconds:.1f}x)"
    )


def test_bench_chain_kernel_all_protocols(benchmark):
    """The structured backend across the whole multihop family."""
    points = _scaling_points()[:3]
    tasks = [
        (protocol, point_params, hops)
        for protocol in Protocol.multihop_family()
        for point_params, hops in points
    ]
    templates.solve_heterogeneous_structured_tasks(tasks[:1])  # warm caches

    solutions = benchmark.pedantic(
        lambda: templates.solve_heterogeneous_structured_tasks(tasks),
        rounds=3,
        iterations=1,
    )
    assert len(solutions) == len(tasks)
    for solution, (protocol, _, _) in zip(solutions, tasks):
        assert solution.protocol is protocol
        assert 0.0 <= solution.inconsistency_ratio <= 1.0
