"""Benchmarks for the parallel sweep runtime and the sparse CTMC backend.

Three speedups are demonstrated:

* serial vs process-pool execution of the sensitivity decoding grid
  (the ``--jobs`` path) — the wall-clock assertion only runs on
  machines with enough usable cores;
* dense vs sparse stationary solves on a large chain;
* cold vs memo-cached sweep re-solves (the cross-figure cache).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis.sensitivity import check_claims, plausible_decodings
from repro.core.markov import ContinuousTimeMarkovChain
from repro.core.parameters import kazaa_defaults, reservation_defaults
from repro.core.protocols import Protocol
from repro.runtime import global_cache, solve_multihop_batch, solve_singlehop_batch
from repro.runtime.executor import available_cpus, process_pool_usable

GRID = plausible_decodings()


def _timed(func):
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start


def test_bench_sensitivity_grid_serial(run_once):
    """The 16-decoding x 5-claim grid, one process (the baseline)."""
    global_cache().clear()
    checks = run_once(lambda: check_claims(jobs=1))
    assert len(checks) == len(GRID) * 5


def test_bench_sensitivity_grid_parallel(run_once):
    """The same grid fanned across 4 workers, verified identical to the
    serial run.  The grid itself is tiny (~1 ms per decoding), so no
    speedup is asserted here — that claim is made on a workload heavy
    enough to amortize pool startup (see the multihop grid below)."""
    global_cache().clear()
    checks = run_once(lambda: check_claims(jobs=4))
    assert len(checks) == len(GRID) * 5
    global_cache().clear()
    serial_reference = check_claims(jobs=1)
    assert [(c.claim, c.holds, c.detail) for c in checks] == [
        (c.claim, c.holds, c.detail) for c in serial_reference
    ]


def _multihop_decoding_grid():
    """A sensitivity-style grid over multi-hop decodings: heavy enough
    (~60 ms per point at 100 hops) that 4-way parallelism pays."""
    base = reservation_defaults().replace(hops=100)
    return [
        (protocol, base.replace(update_rate=1.0 / interval).with_coupled_timers(refresh))
        for protocol in Protocol.multihop_family()
        for interval in (20.0, 30.0, 60.0, 90.0)
        for refresh in (5.0, 10.0)
    ]


def test_bench_multihop_grid_parallel_speedup(run_once):
    """The 100-hop decoding grid with 4 workers; asserts >= 2x speedup
    over serial on machines with >= 4 usable cores and a working pool."""
    tasks = _multihop_decoding_grid()
    global_cache().clear()
    serial, serial_seconds = _timed(lambda: solve_multihop_batch(tasks, jobs=1))
    global_cache().clear()
    parallel, parallel_seconds = _timed(
        lambda: run_once(lambda: solve_multihop_batch(tasks, jobs=4))
    )
    assert [s.inconsistency_ratio for s in parallel] == [
        s.inconsistency_ratio for s in serial
    ]
    if available_cpus() < 4:
        pytest.skip(
            f"only {available_cpus()} usable core(s); speedup assertion "
            "needs >= 4 (results verified identical)"
        )
    if not process_pool_usable():
        pytest.skip("process pools unavailable here; parallel_map fell back to serial")
    if os.environ.get("CI"):
        # Shared CI runners have noisy, oversubscribed cores; the
        # wall-clock claim is asserted on real hardware only.
        pytest.skip(
            f"CI runner: recorded serial {serial_seconds:.2f}s vs "
            f"parallel {parallel_seconds:.2f}s without asserting"
        )
    assert parallel_seconds < serial_seconds / 2.0, (
        "expected >=2x speedup with 4 workers: "
        f"serial {serial_seconds:.2f}s vs parallel {parallel_seconds:.2f}s"
    )


def _large_birth_death(solver: str) -> ContinuousTimeMarkovChain:
    n = 1500
    rates = {}
    for i in range(n - 1):
        rates[(i, i + 1)] = 2.0
        rates[(i + 1, i)] = 1.0 + 0.001 * i
    return ContinuousTimeMarkovChain(range(n), rates, solver=solver)


def test_bench_stationary_dense_1500_states(run_once):
    """Dense baseline: 1500-state stationary solve (O(n^3) LU)."""
    chain = _large_birth_death("dense")
    pi = run_once(chain.stationary_distribution)
    assert sum(pi.values()) == pytest.approx(1.0)


def test_bench_stationary_sparse_1500_states(run_once):
    """Sparse path on the same chain; asserts it beats dense."""
    dense = _large_birth_death("dense")
    sparse = _large_birth_death("sparse")
    pi_dense, dense_seconds = _timed(dense.stationary_distribution)
    pi_sparse, sparse_seconds = _timed(
        lambda: run_once(sparse.stationary_distribution)
    )
    assert pi_sparse == pytest.approx(pi_dense, abs=1e-12)
    assert sparse_seconds < dense_seconds, (
        f"sparse ({sparse_seconds:.3f}s) should beat dense ({dense_seconds:.3f}s) "
        "on a 1500-state tridiagonal chain"
    )


def test_bench_sweep_memo_cache(benchmark):
    """Re-solving an already-seen sweep is served from the memo cache."""
    base = kazaa_defaults()
    tasks = [
        (protocol, base.replace(delay=delay))
        for protocol in Protocol
        for delay in (0.01, 0.02, 0.03, 0.05)
    ]
    global_cache().clear()
    cold = solve_singlehop_batch(tasks)

    def cached():
        return solve_singlehop_batch(tasks)

    warm = benchmark(cached)
    assert [s.inconsistency_ratio for s in warm] == [s.inconsistency_ratio for s in cold]
    stats = global_cache().stats()
    assert stats["size"] == len(tasks)
    assert stats["hits"] >= len(tasks)
