"""Micro-benchmarks of the substrates the experiments run on.

These track the cost of the building blocks so performance regressions
in the kernel or the linear algebra show up independently of the
figure-level benchmarks.
"""

from __future__ import annotations

from repro.core.parameters import kazaa_defaults, reservation_defaults
from repro.core.protocols import Protocol
from repro.core.singlehop import SingleHopModel
from repro.core.multihop import MultiHopModel
from repro.protocols.config import SingleHopSimConfig
from repro.protocols.session import SingleHopSimulation
from repro.sim.engine import Environment


def test_bench_engine_event_throughput(benchmark):
    """Raw event-loop throughput: 10k timeout events."""

    def run():
        env = Environment()

        def ticker(env):
            for _ in range(10_000):
                yield env.timeout(1.0)

        env.process(ticker(env))
        env.run()
        return env.now

    assert benchmark(run) == 10_000.0


def test_bench_singlehop_solve(benchmark):
    """One full single-hop model solve (stationary + absorption)."""
    params = kazaa_defaults()

    def solve():
        return SingleHopModel(Protocol.SS_RTR, params).solve()

    solution = benchmark(solve)
    assert 0.0 < solution.inconsistency_ratio < 1.0


def test_bench_multihop_solve_20_hops(benchmark):
    """One 20-hop chain solve (41-state dense linear system)."""
    params = reservation_defaults()

    def solve():
        return MultiHopModel(Protocol.SS, params).solve()

    solution = benchmark(solve)
    assert 0.0 < solution.inconsistency_ratio < 1.0


def test_bench_singlehop_simulation_sessions(run_once):
    """Simulate 100 SS+ER sessions end to end."""
    config = SingleHopSimConfig(
        protocol=Protocol.SS_ER, params=kazaa_defaults(), sessions=100, seed=3
    )
    result = run_once(lambda: SingleHopSimulation(config).run())
    assert result.sessions == 100
