"""Benchmark: regenerate Fig. 7 (integrated cost vs refresh timer)."""

from __future__ import annotations

from repro.experiments import run_experiment


def test_bench_fig07(benchmark):
    result = benchmark(run_experiment, "fig7", fast=True)
    panel = result.panel("integrated cost")
    ss = panel.series_by_label("SS")
    # The sensitive interior optimum the paper highlights.
    assert min(ss.y) < ss.y[0]
    assert min(ss.y) < ss.y[-1]
