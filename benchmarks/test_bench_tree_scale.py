"""Benchmark: tree solves past the old 4096-state wall.

The lumped and iterative tree backends are a different workload from
every other bench: orbit enumeration plus a sparse solve an order of
magnitude past what direct enumeration could reach.  The nightly bench
job records this file separately as ``BENCH_tree_scale.json`` so the
scale backends have their own performance trajectory.
"""

from __future__ import annotations

import math

from repro.core.multihop import (
    LumpedTreeModel,
    Topology,
    TreeModel,
    select_tree_backend,
)
from repro.core.parameters import reservation_defaults
from repro.core.protocols import Protocol
from repro.experiments import run_experiment


def _params_for(topology):
    return reservation_defaults().replace(hops=topology.num_edges)


def test_bench_lumped_binary_depth3(run_once):
    # 15129 raw states -> 741 orbits: the wall-breaking solve.
    topology = Topology.kary(2, 3)
    assert select_tree_backend(topology) == "lumped"
    solution = run_once(
        lambda: LumpedTreeModel(Protocol.SS, _params_for(topology), topology).solve()
    )
    assert 0.0 < solution.inconsistency_ratio < 1.0
    assert math.isfinite(solution.message_rate)


def test_bench_lumped_star64(run_once):
    # 3^64 raw states -> 2211 orbits: width is effectively free.
    topology = Topology.star(64)
    assert select_tree_backend(topology) == "lumped"
    solution = run_once(
        lambda: LumpedTreeModel(Protocol.SS, _params_for(topology), topology).solve()
    )
    assert 0.0 < solution.inconsistency_ratio < 1.0


def test_bench_iterative_star8(run_once):
    # Above the direct cap on the raw space: ILU + GMRES on 6561 states.
    topology = Topology.star(8)
    solution = run_once(
        lambda: TreeModel(
            Protocol.SS,
            _params_for(topology),
            topology,
            max_states=65536,
            solver="iterative",
        ).solve()
    )
    lumped = LumpedTreeModel(Protocol.SS, _params_for(topology), topology).solve()
    assert solution.inconsistency_ratio == lumped.inconsistency_ratio or abs(
        solution.inconsistency_ratio - lumped.inconsistency_ratio
    ) <= 1e-8 * lumped.inconsistency_ratio


def test_bench_direct_vs_lumped_crossover(run_once):
    # The largest direct solve still under the cap, for a baseline the
    # trend series can compare the lumped curve against.
    topology = Topology.star(7)  # 2187 raw states
    assert select_tree_backend(topology) == "direct"
    solution = run_once(
        lambda: TreeModel(Protocol.SS, _params_for(topology), topology).solve()
    )
    lumped = LumpedTreeModel(Protocol.SS, _params_for(topology), topology).solve()
    assert solution.inconsistency_ratio == lumped.inconsistency_ratio or abs(
        solution.inconsistency_ratio - lumped.inconsistency_ratio
    ) <= 1e-9 * lumped.inconsistency_ratio


def test_bench_tree_deep_scenario(run_once):
    result = run_once(run_experiment, "tree_deep", fast=True)
    series = result.panel("a: any-leaf inconsistency").series_by_label("SS binary")
    assert series.x == (1.0, 2.0, 3.0)
    assert all(math.isfinite(y) for y in series.y)


def test_bench_tree_wide_scenario(run_once):
    result = run_once(run_experiment, "tree_wide", fast=True)
    series = result.panel("a: any-leaf inconsistency").series_by_label("SS star")
    assert series.y[-1] > series.y[0]
