"""Benchmarks for the compiled-template batched solve path.

The headline claim (ISSUE 2): on a 1000-point single-hop sweep the
template path must beat the per-point model path by >= 5x in a single
process, with dense results matching the reference bit for bit.  The
multi-hop benchmarks record the structure-cached sparse path against
the dict-built reference on the 128-hop scaling regime.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core import templates
from repro.core.parameters import kazaa_defaults, reservation_defaults
from repro.core.protocols import Protocol
from repro.core.singlehop import SingleHopModel
from repro.core.multihop.heterogeneous import HeterogeneousMultiHopModel
from repro.experiments.runner import geometric_sweep
from repro.experiments.scaling import heterogeneous_path
from repro.runtime import global_cache, solve_singlehop_batch


def _timed(func):
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start


def _singlehop_sweep_tasks():
    """1000 distinct points: 200 delays x 5 protocols (no cache repeats)."""
    base = kazaa_defaults()
    delays = geometric_sweep(0.001, 0.3, 200)
    return [
        (protocol, base.replace(delay=delay))
        for protocol in Protocol
        for delay in delays
    ]


def test_bench_singlehop_template_speedup(run_once):
    """>= 5x over the per-point path on a 1000-point single-hop sweep."""
    tasks = _singlehop_sweep_tasks()
    templates.solve_singlehop_tasks(tasks[:5])  # warm the compile cache
    fast, fast_seconds = _timed(
        lambda: run_once(lambda: templates.solve_singlehop_tasks(tasks))
    )
    reference, reference_seconds = _timed(
        lambda: [SingleHopModel(protocol, params).solve() for protocol, params in tasks]
    )
    assert len(fast) == len(tasks)
    for fast_solution, reference_solution in zip(fast, reference):
        assert fast_solution.stationary == reference_solution.stationary
        assert fast_solution.message_breakdown == reference_solution.message_breakdown
        assert fast_solution.expected_receiver_lifetime == (
            reference_solution.expected_receiver_lifetime
        )
    if os.environ.get("CI"):
        # Shared CI runners have noisy, oversubscribed cores; the
        # wall-clock claim is asserted on real hardware only (the
        # parity asserts above always run).
        pytest.skip(
            f"CI runner: recorded template {fast_seconds:.3f}s vs "
            f"per-point {reference_seconds:.3f}s without asserting"
        )
    assert fast_seconds * 5.0 < reference_seconds, (
        f"expected >= 5x: template {fast_seconds:.3f}s vs "
        f"per-point {reference_seconds:.3f}s "
        f"({reference_seconds / fast_seconds:.1f}x)"
    )


def test_bench_singlehop_batch_through_runtime(benchmark):
    """The full runtime batch helper (cache + templates), cold cache."""
    tasks = _singlehop_sweep_tasks()

    def cold():
        global_cache().clear()
        return solve_singlehop_batch(tasks, jobs=1)

    solutions = benchmark.pedantic(cold, rounds=3, iterations=1)
    assert len(solutions) == len(tasks)
    global_cache().clear()


def test_bench_multihop_sparse_template_128_hops(run_once):
    """Structure-cached sparse solves across a 128-hop decoding grid."""
    params = reservation_defaults().replace(hops=128)
    hops = heterogeneous_path(128)
    points = [
        (params.with_coupled_timers(refresh), hops)
        for refresh in (2.0, 3.0, 5.0, 8.0, 10.0, 15.0)
    ]
    template = templates.multihop_template(Protocol.SS_RT, 128)
    template.solve_batch(points[:1])  # warm the compile + symbolic cache
    fast, fast_seconds = _timed(lambda: run_once(lambda: template.solve_batch(points)))
    reference, reference_seconds = _timed(
        lambda: [
            HeterogeneousMultiHopModel(Protocol.SS_RT, point_params, point_hops).solve()
            for point_params, point_hops in points
        ]
    )
    for fast_solution, reference_solution in zip(fast, reference):
        for state, probability in reference_solution.stationary.items():
            assert fast_solution.stationary[state] == pytest.approx(
                probability, abs=1e-9
            )
    # The reference rebuilds the O(n^2) rate dict and the CSC structure
    # per point; the template refreshes .data only.  Record both times
    # and assert the template at least keeps pace (the hard >= claims
    # live on quieter single-hop arithmetic above).
    if os.environ.get("CI"):
        pytest.skip(
            f"CI runner: recorded template {fast_seconds:.3f}s vs "
            f"per-point {reference_seconds:.3f}s without asserting"
        )
    assert fast_seconds < reference_seconds, (
        f"template sparse path ({fast_seconds:.3f}s) slower than the "
        f"dict-built reference ({reference_seconds:.3f}s) at 128 hops"
    )
