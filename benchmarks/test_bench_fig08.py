"""Benchmark: regenerate Fig. 8 (timeout and retransmission timers)."""

from __future__ import annotations

from repro.experiments import run_experiment


def test_bench_fig08(benchmark):
    result = benchmark(run_experiment, "fig8", fast=True)
    timeout_panel = result.panel("a: vs state-timeout timer")
    ss = timeout_panel.series_by_label("SS")
    assert ss.y[0] > 10 * min(ss.y)  # T < R collapses soft state
