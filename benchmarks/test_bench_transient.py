"""Benchmark: regenerate the transient scenarios (fast fidelity).

The transient stack is a different workload from the stationary
sweeps: Poisson power sums over a piecewise-constant generator plus
grid-sampled simulation replications.  The nightly bench job records
this file separately as ``BENCH_transient.json`` so the uniformization
path has its own performance trajectory.
"""

from __future__ import annotations

from repro.experiments import run_experiment


def test_bench_time_to_consistency(run_once):
    result = run_once(run_experiment, "time_to_consistency", fast=True)
    panel = result.panel("a: consistency probability over time")
    model = panel.series_by_label("SS")
    sim = panel.series_by_label("SS sim")
    assert sim.y_err is not None
    assert all(0.0 <= y <= 1.0 for y in model.y)
    # Cold start: the install wave must actually arrive.
    assert model.y[0] < model.y[-1]
    assert model.y[-1] > 0.9


def test_bench_recovery_crash(run_once):
    result = run_once(run_experiment, "recovery_crash", fast=True)
    panel = result.panel("a: consistency through a silent crash (t = 5 .. 35)")
    model = panel.series_by_label("SS")
    by_time = dict(zip(model.x, model.y))
    # Whole-chain consistency is exactly zero while the node is down
    # and recovers after the restart at t = 35.
    assert by_time[6.0] < 1e-9
    assert by_time[80.0] > 0.5
