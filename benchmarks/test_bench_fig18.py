"""Benchmark: regenerate Fig. 18 (metrics vs number of hops)."""

from __future__ import annotations

from repro.experiments import run_experiment


def test_bench_fig18(benchmark):
    result = benchmark(run_experiment, "fig18", fast=True)
    rate_panel = result.panel("b: signaling message rate")
    assert (
        rate_panel.series_by_label("HS").y[-1]
        < rate_panel.series_by_label("SS").y[-1]
    )
