"""Benchmark: regenerate Fig. 10 (tradeoffs under workload sweeps)."""

from __future__ import annotations

from repro.experiments import run_experiment


def test_bench_fig10(benchmark):
    result = benchmark(run_experiment, "fig10", fast=True)
    assert len(result.panels) == 2
    for panel in result.panels:
        assert len(panel.series) == 5
