"""Benchmark: regenerate Fig. 17 (per-hop inconsistency profile)."""

from __future__ import annotations

from repro.experiments import run_experiment


def test_bench_fig17(benchmark):
    result = benchmark(run_experiment, "fig17", fast=True)
    panel = result.panel("per-hop inconsistency")
    ss = panel.series_by_label("SS")
    assert ss.y[-1] > ss.y[0]  # inconsistency grows along the path
