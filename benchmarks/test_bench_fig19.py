"""Benchmark: regenerate Fig. 19 (multi-hop refresh-timer sweep)."""

from __future__ import annotations

from repro.experiments import run_experiment


def test_bench_fig19(benchmark):
    result = benchmark(run_experiment, "fig19", fast=True)
    panel = result.panel("a: inconsistency ratio")
    ss = panel.series_by_label("SS")
    best = min(range(len(ss.y)), key=lambda i: ss.y[i])
    assert ss.y[-1] > ss.y[best]  # the multi-hop vee shape
