"""Benchmark: regenerate the fault-injection scenarios (fast fidelity).

``burst_loss`` is the canonical fault workload: product-chain solves
(the Gilbert-Elliott templates) plus replicated simulations with the
stateful channel modulator.  The nightly bench job records this file
separately as ``BENCH_faults.json`` so the fault stack has its own
performance trajectory.
"""

from __future__ import annotations

from repro.experiments import run_experiment


def test_bench_burst_loss(run_once):
    result = run_once(run_experiment, "burst_loss", fast=True)
    panel = result.panel("a: inconsistency ratio")
    model = panel.series_by_label("SS")
    sim = panel.series_by_label("SS sim")
    assert sim.y_err is not None
    # The i.i.d. anchor (burstiness 0) agrees; the bursty tail stays
    # within the equivalence band used by the validation plan.
    for m, s in zip(model.y, sim.y):
        assert abs(s - m) < max(0.4 * m, 1e-2)
    # Matched average loss: burstiness must not run away with the metric.
    assert max(model.y) < 10 * max(min(model.y), 1e-6)


def test_bench_link_flap(run_once):
    result = run_once(run_experiment, "link_flap", fast=True)
    panel = result.panel("a: inconsistency ratio")
    for series in panel.series:
        assert all(y >= 0 for y in series.y)
