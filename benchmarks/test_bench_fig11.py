"""Benchmark: regenerate Fig. 11 (simulation vs model, session sweep).

This is the expensive validation experiment (replicated discrete-event
simulations), so it runs exactly one round.
"""

from __future__ import annotations

from repro.experiments import run_experiment


def test_bench_fig11(run_once):
    result = run_once(run_experiment, "fig11", fast=True)
    panel = result.panel("a: inconsistency ratio")
    sim = panel.series_by_label("SS sim")
    model = panel.series_by_label("SS")
    assert sim.y_err is not None
    # Simulation tracks the model across the sweep.
    for m, s in zip(model.y, sim.y):
        assert abs(s - m) < max(0.4 * m, 1e-3)
