"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each benchmark isolates one mechanism on the hard-state/soft-state
spectrum and measures its marginal effect, regenerating the ablation
evidence behind the paper's conclusions:

* explicit removal (SS -> SS+ER),
* reliable triggers (SS -> SS+RT),
* reliable removal (SS+ER -> SS+RTR),
* refresh machinery on top of hard state (HS vs SS+RTR),
* the timeout-multiple choice T = 3R,
* the decoded-parameter sensitivity sweep.
"""

from __future__ import annotations

from repro.analysis.optimizer import optimize_timers_jointly
from repro.analysis.sensitivity import check_claims
from repro.core.parameters import kazaa_defaults
from repro.core.protocols import Protocol
from repro.core.singlehop import SingleHopModel, solve_all


def test_bench_ablation_mechanism_ladder(benchmark):
    """Solve the full protocol ladder; check each rung's marginal gain."""

    def ladder():
        return solve_all(kazaa_defaults())

    solutions = benchmark(ladder)
    inconsistency = {p: s.inconsistency_ratio for p, s in solutions.items()}
    # Each added mechanism must not hurt consistency.
    assert inconsistency[Protocol.SS_ER] < inconsistency[Protocol.SS]
    assert inconsistency[Protocol.SS_RT] < inconsistency[Protocol.SS]
    assert inconsistency[Protocol.SS_RTR] < inconsistency[Protocol.SS_ER]


def test_bench_ablation_timeout_multiple(benchmark):
    """T = 3R against alternative multiples for pure SS."""
    params = kazaa_defaults()

    def sweep():
        costs = {}
        for multiple in (1.5, 2.0, 3.0, 5.0, 10.0):
            candidate = params.with_coupled_timers(
                params.refresh_interval, timeout_multiple=multiple
            )
            solution = SingleHopModel(Protocol.SS, candidate).solve()
            costs[multiple] = solution.integrated_cost(10.0)
        return costs

    costs = benchmark(sweep)
    # The paper's choice (3R) must be competitive: within 25% of the
    # best multiple in the sweep.
    assert costs[3.0] < 1.25 * min(costs.values())


def test_bench_ablation_joint_timer_optimum(run_once):
    """Joint (R, T) optimization for each soft-state protocol."""

    def optimize():
        return {
            protocol: optimize_timers_jointly(protocol, kazaa_defaults())
            for protocol in Protocol.soft_state_family()
        }

    best = run_once(optimize)
    # Fig. 8a structure: SS+RT tight timeout, SS+RTR loose timeout.
    assert best[Protocol.SS_RT].timeout_multiple <= 2.0
    assert best[Protocol.SS_RTR].timeout_multiple >= 5.0


def test_bench_ablation_decoding_sensitivity(run_once):
    """All headline claims across the 16 plausible parameter decodings."""
    checks = run_once(check_claims)
    assert all(check.holds for check in checks)
