"""Benchmark: regenerate Fig. 4 (metrics vs session length)."""

from __future__ import annotations

from repro.experiments import run_experiment


def test_bench_fig04(benchmark):
    result = benchmark(run_experiment, "fig4", fast=True)
    inconsistency = result.panel("a: inconsistency ratio")
    ss = inconsistency.series_by_label("SS")
    # The headline shape: inconsistency falls as sessions lengthen.
    assert ss.y[0] > ss.y[-1]
    assert result.panel("b: signaling message rate").series_by_label("HS").y[-1] < 0.2
