"""Benchmark: regenerate Table I (model transition rates)."""

from __future__ import annotations

from repro.core.protocols import Protocol
from repro.experiments import run_experiment


def test_bench_table1(benchmark):
    result = benchmark(run_experiment, "table1")
    panel = result.panel("transition rates")
    assert panel.labels() == tuple(p.value for p in Protocol)
    # Every protocol column evaluates all seven Table I rows.
    for series in panel.series:
        assert len(series.y) == 7
