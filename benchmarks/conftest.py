"""Benchmark configuration.

Every paper artifact gets one benchmark that regenerates it end to end
(deliverable d).  Simulation-backed experiments run a single round via
``benchmark.pedantic`` so the suite stays fast; analytic experiments use
normal rounds.  Each benchmark also sanity-checks its result so the
suite doubles as an integration smoke test.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an expensive callable exactly once under the benchmark clock."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
