"""Benchmark: regenerate Fig. 12 (simulation vs model, refresh sweep).

Replicated discrete-event simulations: one benchmark round.
"""

from __future__ import annotations

from repro.experiments import run_experiment


def test_bench_fig12(run_once):
    result = run_once(run_experiment, "fig12", fast=True)
    panel = result.panel("b: signaling message rate")
    sim = panel.series_by_label("SS sim")
    model = panel.series_by_label("SS")
    for m, s in zip(model.y, sim.y):
        assert abs(s - m) < 0.35 * m
