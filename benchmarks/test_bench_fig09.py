"""Benchmark: regenerate Fig. 9 (I-vs-M tradeoff, varying R)."""

from __future__ import annotations

from repro.experiments import run_experiment


def test_bench_fig09(benchmark):
    result = benchmark(run_experiment, "fig9", fast=True)
    panel = result.panel("tradeoff")
    assert len(panel.series_by_label("HS").x) == 1  # HS is a point
