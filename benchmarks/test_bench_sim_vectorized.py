"""Benchmarks for the vectorized single-hop replication path.

The vectorized replay must beat the event engine decisively on the
replication sweeps the validation figures run (the engine charges a
heap operation and a generator resume per event; the replay charges a
handful of array ops per session) while producing the exact same
samples.  The nightly bench job records this file as
``BENCH_sim_vectorized.json``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.parameters import kazaa_defaults
from repro.core.protocols import Protocol
from repro.protocols.config import SingleHopSimConfig
from repro.protocols.session import simulate_replications

SESSIONS = 100
REPLICATIONS = 5


def _timed(func):
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start


def _config(protocol=Protocol.SS_ER):
    return SingleHopSimConfig(
        protocol=protocol, params=kazaa_defaults(), sessions=SESSIONS, seed=5
    )


def test_bench_sim_vectorized_speedup(run_once):
    """Vectorized replications vs the event engine, same samples."""
    config = _config()
    fast, fast_seconds = _timed(
        lambda: run_once(
            lambda: simulate_replications(config, REPLICATIONS, engine="vectorized")
        )
    )
    reference, reference_seconds = _timed(
        lambda: simulate_replications(config, REPLICATIONS, engine="scalar")
    )
    for metric in ("inconsistency_ratio", "normalized_message_rate"):
        assert fast.samples(metric) == reference.samples(metric)
    if os.environ.get("CI"):
        pytest.skip(
            f"CI runner: recorded vectorized {fast_seconds:.3f}s vs "
            f"scalar {reference_seconds:.3f}s without asserting"
        )
    assert fast_seconds * 5.0 < reference_seconds, (
        f"expected >= 5x: vectorized {fast_seconds:.3f}s vs "
        f"scalar {reference_seconds:.3f}s "
        f"({reference_seconds / fast_seconds:.1f}x)"
    )


def test_bench_sim_vectorized_ss_sweep(benchmark):
    """A loss sweep for pure SS through the vectorized path only."""
    base = _config(Protocol.SS)

    def sweep():
        return [
            simulate_replications(
                base.replace(params=base.params.replace(loss_rate=loss)),
                REPLICATIONS,
                engine="vectorized",
            )
            for loss in (0.01, 0.05, 0.1, 0.2, 0.4)
        ]

    results = benchmark.pedantic(sweep, rounds=3, iterations=1)
    for point in results:
        samples = point.samples("inconsistency_ratio")
        assert len(samples) == REPLICATIONS
        assert all(0.0 <= sample <= 1.0 for sample in samples)
