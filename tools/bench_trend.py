"""Append pytest-benchmark results to the committed trend series.

Stdlib-only, like the rest of ``tools/``.  Reads one or more
pytest-benchmark JSON files (``BENCH_*.json``) and appends one CSV row
per benchmark to ``benchmarks/TREND.csv``::

    date,commit,file,test,median_seconds

Rows already present for the same ``(commit, test)`` pair are skipped,
so re-running on the same checkout is idempotent and the series never
double-counts a commit.  The nightly bench job runs this after each
suite and uploads the updated CSV; committing it back keeps a
performance trajectory reviewable in-repo.

Usage::

    python tools/bench_trend.py BENCH_transient.json [more.json ...] \
        [--trend benchmarks/TREND.csv]
"""

from __future__ import annotations

import argparse
import csv
import datetime
import json
import pathlib
import sys

FIELDS = ("date", "commit", "file", "test", "median_seconds")


def _rows_from_report(path: pathlib.Path) -> list[dict[str, str]]:
    report = json.loads(path.read_text())
    commit = report.get("commit_info", {}).get("id") or "unknown"
    date = (report.get("datetime") or "")[:10] or datetime.date.today().isoformat()
    rows = []
    for bench in report.get("benchmarks", ()):
        rows.append(
            {
                "date": date,
                "commit": commit,
                "file": bench.get("fullname", "").split("::")[0],
                "test": bench["name"],
                "median_seconds": f"{bench['stats']['median']:.6g}",
            }
        )
    return rows


def _existing_keys(trend: pathlib.Path) -> set[tuple[str, str]]:
    if not trend.exists():
        return set()
    with trend.open(newline="") as handle:
        return {(row["commit"], row["test"]) for row in csv.DictReader(handle)}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("reports", nargs="+", type=pathlib.Path,
                        help="pytest-benchmark JSON file(s)")
    parser.add_argument("--trend", type=pathlib.Path,
                        default=pathlib.Path("benchmarks/TREND.csv"),
                        help="trend CSV to append to (default: %(default)s)")
    args = parser.parse_args(argv)

    seen = _existing_keys(args.trend)
    fresh = []
    for report in args.reports:
        for row in _rows_from_report(report):
            key = (row["commit"], row["test"])
            if key not in seen:
                seen.add(key)
                fresh.append(row)

    new_file = not args.trend.exists()
    with args.trend.open("a", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=FIELDS)
        if new_file:
            writer.writeheader()
        writer.writerows(fresh)
    print(f"{args.trend}: appended {len(fresh)} row(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
