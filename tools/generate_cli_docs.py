#!/usr/bin/env python
"""Regenerate (or drift-check) ``docs/cli.md`` from the argparse tree.

Usage::

    python tools/generate_cli_docs.py            # rewrite docs/cli.md
    python tools/generate_cli_docs.py --check    # exit 1 if out of sync

The rendering itself lives in :func:`repro.cli.generate_cli_markdown`
(also reachable as ``python -m repro.cli --generate-docs``); this
script adds the CI-friendly ``--check`` mode.  Run from the repo root;
``src/`` is put on ``sys.path`` automatically so no install is needed.
"""

from __future__ import annotations

import argparse
import difflib
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import generate_cli_markdown  # noqa: E402 - path setup first

DOC_PATH = REPO_ROOT / "docs" / "cli.md"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) when the committed docs/cli.md is out of sync "
        "instead of rewriting it",
    )
    args = parser.parse_args(argv)
    generated = generate_cli_markdown()
    if args.check:
        committed = DOC_PATH.read_text() if DOC_PATH.exists() else ""
        if committed == generated:
            print(f"{DOC_PATH.relative_to(REPO_ROOT)} is in sync")
            return 0
        diff = difflib.unified_diff(
            committed.splitlines(keepends=True),
            generated.splitlines(keepends=True),
            fromfile="docs/cli.md (committed)",
            tofile="docs/cli.md (generated)",
        )
        sys.stderr.writelines(diff)
        print(
            "docs/cli.md is out of sync; regenerate with "
            "`python tools/generate_cli_docs.py`",
            file=sys.stderr,
        )
        return 1
    DOC_PATH.parent.mkdir(parents=True, exist_ok=True)
    DOC_PATH.write_text(generated)
    print(f"wrote {DOC_PATH.relative_to(REPO_ROOT)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
