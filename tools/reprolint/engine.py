"""The reprolint engine: file walking, rule driving, suppressions, reports.

A *rule* is an object with a ``code`` (``RLxxx``), a ``name``, a
``description`` and one or both of:

``check_module(module, context)``
    called once per linted file with a parsed :class:`Module`;
``check_project(context)``
    called once per run, for cross-file contracts (e.g. RL004 compares
    solver entry points against the validation parity registry).

Both return lists of :class:`Finding`.  The engine applies per-line
suppressions (``# reprolint: disable=RL001 -- justification``) after
all rules ran, and reports anything wrong with the suppressions
themselves — unknown codes, missing justifications, suppressions that
matched nothing — under the engine's own code ``RL000``, so a stale or
unexplained escape hatch is itself a finding.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import pathlib
import re

from tools.reprolint.manifest import LayerManifest

__all__ = [
    "Finding",
    "JSON_SCHEMA_VERSION",
    "LintContext",
    "LintReport",
    "Module",
    "Suppression",
    "run_lint",
]

#: Version of the JSON report layout (same discipline as the
#: validation reports: consumers pin on this, bumps are deliberate).
JSON_SCHEMA_VERSION = 1

#: The engine's own meta-rule (suppression hygiene, unparsable files).
ENGINE_CODE = "RL000"

_SUPPRESS = re.compile(
    r"#\s*reprolint:\s*disable=(?P<codes>RL\d{3}(?:\s*,\s*RL\d{3})*)"
    r"(?:\s*--\s*(?P<justification>\S.*))?"
)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative, POSIX separators
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclasses.dataclass(frozen=True)
class Suppression:
    """One ``# reprolint: disable=...`` comment."""

    path: str
    line: int
    codes: tuple[str, ...]
    justification: str


@dataclasses.dataclass(frozen=True)
class Module:
    """A parsed source file under lint."""

    path: pathlib.Path  # absolute
    rel_path: str  # repo-relative, POSIX separators
    source: str
    tree: ast.Module
    #: Dotted-path components below the package source root
    #: (``src/repro/core/markov.py`` -> ``("core", "markov")``), or
    #: ``None`` for files outside it (tools, tests, fixtures).
    package_parts: tuple[str, ...] | None


class LintContext:
    """Shared state for one run: root, manifest, parsed-file cache."""

    def __init__(self, root: pathlib.Path, manifest: LayerManifest) -> None:
        self.root = root.resolve()
        self.manifest = manifest
        self._parsed: dict[str, Module | None] = {}

    def rel_path(self, path: pathlib.Path) -> str:
        resolved = path.resolve()
        try:
            return resolved.relative_to(self.root).as_posix()
        except ValueError:
            return resolved.as_posix()

    def package_parts(self, rel_path: str) -> tuple[str, ...] | None:
        prefix = self.manifest.source_root.rstrip("/") + "/"
        if not rel_path.startswith(prefix):
            return None
        inner = rel_path[len(prefix):]
        parts = inner.rsplit(".py", 1)[0].split("/")
        return tuple(parts)

    def load(self, rel_path: str) -> Module | None:
        """Parse one repo-relative file (cached); ``None`` if unreadable."""
        if rel_path not in self._parsed:
            path = self.root / rel_path
            try:
                source = path.read_text()
                tree = ast.parse(source, filename=str(path))
            except (OSError, SyntaxError, ValueError):
                self._parsed[rel_path] = None
            else:
                self._parsed[rel_path] = Module(
                    path=path,
                    rel_path=rel_path,
                    source=source,
                    tree=tree,
                    package_parts=self.package_parts(rel_path),
                )
        return self._parsed[rel_path]


@dataclasses.dataclass(frozen=True)
class LintReport:
    """The outcome of one run: findings, honored suppressions, coverage."""

    findings: tuple[Finding, ...]
    suppressed: tuple[tuple[Finding, Suppression], ...]
    files_checked: int
    rules: tuple[tuple[str, str, str], ...]  # (code, name, description)

    @property
    def passed(self) -> bool:
        return not self.findings

    def to_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        summary = (
            f"reprolint: {len(self.findings)} finding(s), "
            f"{len(self.suppressed)} suppressed, "
            f"{self.files_checked} file(s) checked"
        )
        lines.append(summary)
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "schema_version": JSON_SCHEMA_VERSION,
            "tool": "reprolint",
            "files_checked": self.files_checked,
            "passed": self.passed,
            "rules": [
                {"code": code, "name": name, "description": description}
                for code, name, description in self.rules
            ],
            "findings": [dataclasses.asdict(finding) for finding in self.findings],
            "suppressed": [
                {
                    **dataclasses.asdict(finding),
                    "justification": suppression.justification,
                }
                for finding, suppression in self.suppressed
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def parse_suppressions(rel_path: str, source: str) -> list[Suppression]:
    """All suppression comments of one file, in line order."""
    suppressions = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS.search(line)
        if match is None:
            continue
        codes = tuple(
            code.strip() for code in match.group("codes").split(",")
        )
        suppressions.append(
            Suppression(
                path=rel_path,
                line=lineno,
                codes=codes,
                justification=(match.group("justification") or "").strip(),
            )
        )
    return suppressions


def discover_files(root: pathlib.Path, paths: list[pathlib.Path]) -> list[pathlib.Path]:
    """Python files under ``paths``, sorted, hidden/cache dirs skipped."""
    files: set[pathlib.Path] = set()
    for path in paths:
        path = path if path.is_absolute() else root / path
        if path.is_file() and path.suffix == ".py":
            files.add(path.resolve())
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if any(
                    part.startswith(".") or part == "__pycache__"
                    for part in candidate.relative_to(path).parts
                ):
                    continue
                files.add(candidate.resolve())
    return sorted(files)


def _suppression_hygiene(
    suppressions: list[Suppression],
    used: set[tuple[str, int, str]],
    known_codes: set[str],
) -> list[Finding]:
    findings = []
    for suppression in suppressions:
        for code in suppression.codes:
            if code not in known_codes:
                findings.append(
                    Finding(
                        rule=ENGINE_CODE,
                        path=suppression.path,
                        line=suppression.line,
                        message=f"suppression names unknown rule {code}",
                    )
                )
            elif (suppression.path, suppression.line, code) not in used:
                findings.append(
                    Finding(
                        rule=ENGINE_CODE,
                        path=suppression.path,
                        line=suppression.line,
                        message=f"unused suppression of {code} (nothing to suppress here)",
                    )
                )
        if not suppression.justification:
            findings.append(
                Finding(
                    rule=ENGINE_CODE,
                    path=suppression.path,
                    line=suppression.line,
                    message=(
                        "suppression without a justification "
                        "(write `# reprolint: disable=RLxxx -- why`)"
                    ),
                )
            )
    return findings


def run_lint(
    root: pathlib.Path,
    paths: list[pathlib.Path],
    manifest: LayerManifest,
    rules: list | None = None,
) -> LintReport:
    """Run every rule over the files under ``paths``; apply suppressions."""
    if rules is None:
        from tools.reprolint.rules import default_rules

        rules = default_rules()
    context = LintContext(root, manifest)
    files = discover_files(context.root, paths)

    raw_findings: list[Finding] = []
    suppressions: list[Suppression] = []
    modules: list[Module] = []
    for path in files:
        rel = context.rel_path(path)
        module = context.load(rel)
        if module is None:
            raw_findings.append(
                Finding(
                    rule=ENGINE_CODE,
                    path=rel,
                    line=1,
                    message="file could not be read or parsed",
                )
            )
            continue
        modules.append(module)
        suppressions.extend(parse_suppressions(rel, module.source))

    for rule in rules:
        check_module = getattr(rule, "check_module", None)
        if check_module is not None:
            for module in modules:
                raw_findings.extend(check_module(module, context))
        check_project = getattr(rule, "check_project", None)
        if check_project is not None:
            raw_findings.extend(check_project(context))

    # Project-level findings can land in files outside the linted set;
    # honor their suppressions too (parsed on demand).
    by_location: dict[tuple[str, int], list[Suppression]] = {}
    for suppression in suppressions:
        by_location.setdefault((suppression.path, suppression.line), []).append(suppression)
    linted_paths = {module.rel_path for module in modules}

    def suppressions_at(path: str, line: int) -> list[Suppression]:
        if path not in linted_paths:
            module = context.load(path)
            if module is not None:
                for suppression in parse_suppressions(path, module.source):
                    key = (suppression.path, suppression.line)
                    by_location.setdefault(key, []).append(suppression)
            linted_paths.add(path)
        return by_location.get((path, line), [])

    kept: list[Finding] = []
    suppressed: list[tuple[Finding, Suppression]] = []
    used: set[tuple[str, int, str]] = set()
    for finding in raw_findings:
        match = next(
            (
                suppression
                for suppression in suppressions_at(finding.path, finding.line)
                if finding.rule in suppression.codes
            ),
            None,
        )
        if match is None:
            kept.append(finding)
        else:
            suppressed.append((finding, match))
            used.add((match.path, match.line, finding.rule))

    known_codes = {rule.code for rule in rules} | {ENGINE_CODE}
    kept.extend(_suppression_hygiene(suppressions, used, known_codes))
    kept.sort(key=lambda finding: (finding.path, finding.line, finding.rule))
    suppressed.sort(key=lambda pair: (pair[0].path, pair[0].line, pair[0].rule))

    rule_table = tuple(
        (rule.code, rule.name, rule.description) for rule in rules
    )
    return LintReport(
        findings=tuple(kept),
        suppressed=tuple(suppressed),
        files_checked=len(files),
        rules=rule_table,
    )
