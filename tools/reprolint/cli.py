"""Command line for reprolint.

Usage::

    python -m tools.reprolint [PATH ...] [--format {text,json}]
                              [--manifest FILE] [--list-rules]

Defaults to linting ``src/repro``.  Exit codes: ``0`` clean, ``1``
findings, ``2`` usage or manifest/configuration error — so CI can tell
"contract violated" from "checker misconfigured".
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from tools.reprolint.engine import run_lint
from tools.reprolint.manifest import DEFAULT_MANIFEST_PATH, ManifestError, load_manifest
from tools.reprolint.rules import default_rules

__all__ = ["main"]

#: The repo checkout this tools/ package belongs to.
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_CONFIG = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "AST-based invariant checker for the repo's layer, determinism, "
            "bit-parity and failure-handling contracts (rules RL001-RL006; "
            "see docs/linting.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=pathlib.Path,
        default=None,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="human-readable findings (default) or the schema-versioned "
        "JSON report",
    )
    parser.add_argument(
        "--manifest",
        type=pathlib.Path,
        default=None,
        help=f"layer manifest to use (default: {DEFAULT_MANIFEST_PATH.name} "
        "next to the package)",
    )
    parser.add_argument(
        "--root",
        type=pathlib.Path,
        default=None,
        help="repo root for relative paths in reports and rule config "
        "(default: the checkout containing this package)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.code}  {rule.name}: {rule.description}")
        return EXIT_CLEAN
    try:
        manifest = load_manifest(args.manifest)
    except ManifestError as error:
        print(f"reprolint: configuration error: {error}", file=sys.stderr)
        return EXIT_CONFIG
    root = (args.root or REPO_ROOT).resolve()
    paths = list(args.paths) or [pathlib.Path(manifest.source_root)]
    for path in paths:
        resolved = path if path.is_absolute() else root / path
        if not resolved.exists():
            print(f"reprolint: no such path: {path}", file=sys.stderr)
            return EXIT_CONFIG
    report = run_lint(root, paths, manifest, rules)
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.to_text())
    return EXIT_CLEAN if report.passed else EXIT_FINDINGS


if __name__ == "__main__":
    sys.exit(main())
