"""RL006 — silent failure: exceptions must not vanish without a trace.

The fault-tolerant runtime's whole contract is that failures are
*recorded* (retried, logged, counted in the
:class:`~repro.runtime.executor.FailureReport`) — never swallowed.  A
``except: pass`` anywhere in the stack silently converts a crash into
wrong-but-plausible numbers, the worst possible failure mode for a
reproduction repo.  This rule flags, anywhere in the linted tree:

* a bare ``except:`` — regardless of body, because it also traps
  ``SystemExit``/``KeyboardInterrupt``;
* ``except Exception:`` / ``except BaseException:`` (bare or aliased,
  alone or inside a tuple) whose body does nothing but ``pass`` or
  ``...``.

Broad handlers with a real body (log, count, re-raise, fall back) pass:
breadth is sometimes right, silence never is.  ``[rules.RL006]
extra_paths`` names directories outside the default lint set (the
repo's ``tools/``) that this rule additionally sweeps in its
project-level pass, so the checker cannot exempt itself.
"""

from __future__ import annotations

import ast
import pathlib

from tools.reprolint.engine import Finding, LintContext, Module, discover_files

__all__ = ["SilentFailureRule"]

_BROAD = frozenset({"Exception", "BaseException"})


def _broad_name(expr: ast.expr) -> str | None:
    """The broad class name caught by ``expr``, or ``None``."""
    if isinstance(expr, ast.Name) and expr.id in _BROAD:
        return expr.id
    if isinstance(expr, ast.Attribute) and expr.attr in _BROAD:
        return expr.attr
    if isinstance(expr, ast.Tuple):
        for element in expr.elts:
            name = _broad_name(element)
            if name is not None:
                return name
    return None


def _is_noop(body: list[ast.stmt]) -> bool:
    """Whether a handler body does nothing at all (``pass`` / ``...``)."""
    for statement in body:
        if isinstance(statement, ast.Pass):
            continue
        if (
            isinstance(statement, ast.Expr)
            and isinstance(statement.value, ast.Constant)
            and statement.value.value is Ellipsis
        ):
            continue
        return False
    return True


class SilentFailureRule:
    code = "RL006"
    name = "silent-failure"
    description = (
        "no bare `except:` and no `except Exception: pass` — failures "
        "must be recorded (logged, counted, re-raised), never swallowed"
    )

    def __init__(self) -> None:
        # Files already seen by check_module this run, so the
        # extra_paths sweep cannot double-report them.
        self._checked: set[str] = set()

    def check_module(self, module: Module, context: LintContext) -> list[Finding]:
        self._checked.add(module.rel_path)
        return self._scan(module)

    def check_project(self, context: LintContext) -> list[Finding]:
        # check_project ends the run: consume the seen-set so the
        # instance stays correct if reused for another run_lint call.
        checked, self._checked = self._checked, set()
        findings: list[Finding] = []
        extra = context.manifest.rule_config(self.code).get("extra_paths", [])
        for entry in extra:
            for path in discover_files(context.root, [pathlib.Path(entry)]):
                rel = context.rel_path(path)
                if rel in checked:
                    continue
                checked.add(rel)
                module = context.load(rel)
                if module is None:
                    continue
                findings.extend(self._scan(module))
        return findings

    def _scan(self, module: Module) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(
                    Finding(
                        rule=self.code,
                        path=module.rel_path,
                        line=node.lineno,
                        message=(
                            "bare `except:` traps SystemExit/KeyboardInterrupt "
                            "too; catch a specific exception class"
                        ),
                    )
                )
                continue
            broad = _broad_name(node.type)
            if broad is not None and _is_noop(node.body):
                findings.append(
                    Finding(
                        rule=self.code,
                        path=module.rel_path,
                        line=node.lineno,
                        message=(
                            f"`except {broad}` with an empty body silently "
                            "swallows failures; log, count, re-raise or "
                            "narrow the class"
                        ),
                    )
                )
        return findings
