"""Small AST helpers shared by the rule implementations."""

from __future__ import annotations

import ast

__all__ = ["dotted_chain", "import_aliases"]


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted import path they are bound to.

    Covers ``import x``, ``import x.y as z``, ``from x import y [as z]``
    anywhere in the module (function-level imports included — scope
    precision is not needed for ban lists).  ``import x.y`` binds the
    *top* name ``x`` (attribute access spells out the rest).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    aliases[alias.asname] = alias.name
                else:
                    top = alias.name.split(".")[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def dotted_chain(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """The fully-resolved dotted path of a Name/Attribute chain.

    ``np.random.rand`` with ``np -> numpy`` resolves to
    ``"numpy.random.rand"``.  Returns ``None`` when the chain does not
    start from an imported name (locals, calls, subscripts...).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id)
    if root is None:
        return None
    parts.append(root)
    return ".".join(reversed(parts))
