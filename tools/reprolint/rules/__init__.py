"""The reprolint rule set.

``default_rules()`` returns one instance of every shipped rule, in
code order.  To add a rule: implement a class with ``code``/``name``/
``description`` and ``check_module`` and/or ``check_project`` (see
``docs/linting.md``), add any configuration under ``[rules.RLxxx]`` in
``layers.toml``, register it here, and give it a violating + clean
fixture pair under ``tests/lint/fixtures/``.
"""

from __future__ import annotations

from tools.reprolint.rules.determinism import DeterminismRule
from tools.reprolint.rules.failures import SilentFailureRule
from tools.reprolint.rules.layers import LayerContractRule
from tools.reprolint.rules.ordering import CanonicalOrderRule
from tools.reprolint.rules.parity import ParityRegistrationRule
from tools.reprolint.rules.workers import WorkerSafetyRule

__all__ = ["default_rules"]


def default_rules() -> list:
    return [
        LayerContractRule(),
        DeterminismRule(),
        CanonicalOrderRule(),
        ParityRegistrationRule(),
        WorkerSafetyRule(),
        SilentFailureRule(),
    ]
