"""RL003 — canonical-order safety in order-critical modules.

State enumeration and memo-cache key construction pin the float
accumulation order that the chain<->tree bit-parity contract depends
on (see docs/architecture.md, "preserve expression shapes and
accumulation order").  In the modules listed under ``[rules.RL003]
modules`` in ``layers.toml``, iterating anything without a canonical
order is flagged:

* ``for``/comprehension iteration over a set literal, set
  comprehension, ``set(...)``/``frozenset(...)`` call, or a local name
  assigned one of those;
* iteration over ``.keys()`` — make the order explicit: ``sorted(...)``
  for a canonical order, or iterate the dict itself if insertion order
  *is* the canonical order (then the code says so).

Wrapping the iterable in ``sorted(...)`` always passes.
"""

from __future__ import annotations

import ast

from tools.reprolint.engine import Finding, LintContext, Module

__all__ = ["CanonicalOrderRule"]


class CanonicalOrderRule:
    code = "RL003"
    name = "canonical-order"
    description = (
        "order-critical modules (state enumeration, memo-key builders) "
        "must not iterate sets or bare .keys(); wrap in sorted()"
    )

    def check_module(self, module: Module, context: LintContext) -> list[Finding]:
        scoped = context.manifest.rule_config(self.code).get("modules", [])
        if module.rel_path not in scoped:
            return []
        set_names = _set_assigned_names(module.tree)
        findings: list[Finding] = []
        for iterable in _iteration_sites(module.tree):
            reason = _unordered_reason(iterable, set_names)
            if reason is not None:
                findings.append(
                    Finding(
                        rule=self.code,
                        path=module.rel_path,
                        line=iterable.lineno,
                        message=(
                            f"iteration over {reason} in an order-critical "
                            "module; wrap in sorted(...) to pin the canonical "
                            "order"
                        ),
                    )
                )
        return findings


def _iteration_sites(tree: ast.Module) -> list[ast.expr]:
    """Every expression that a for-loop or comprehension iterates."""
    sites: list[ast.expr] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            sites.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            sites.extend(gen.iter for gen in node.generators)
    return sites


def _set_assigned_names(tree: ast.Module) -> set[str]:
    """Names bound to a set-valued expression anywhere in the module."""
    names: set[str] = set()
    for node in ast.walk(tree):
        value = None
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value, targets = node.value, [node.target]
        if value is not None and _is_set_expression(value):
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _unordered_reason(node: ast.expr, set_names: set[str]) -> str | None:
    if _is_set_expression(node):
        return "a set expression"
    if isinstance(node, ast.Name) and node.id in set_names:
        return f"the set-valued name {node.id!r}"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "keys"
        and not node.args
    ):
        return "bare .keys()"
    return None
