"""RL001 — the layer contract: imports point downward only.

Every ``repro.*`` import inside ``src/repro`` (absolute or relative,
module level or nested in a function) is resolved to the top-level
entry it reaches, mapped to its owning layer via ``layers.toml``, and
checked against the importing module's declared ``depends`` list.  The
package root ``__init__.py`` is the facade and is exempt; importing
*the root itself* from below (``from repro import ...``) is flagged,
because the root pulls in the whole stack — constants that every layer
needs belong in a bottom layer (``repro._version``).
"""

from __future__ import annotations

import ast

from tools.reprolint.engine import Finding, LintContext, Module

__all__ = ["LayerContractRule"]


class LayerContractRule:
    code = "RL001"
    name = "layer-contract"
    description = (
        "imports across src/repro layers must follow the downward DAG "
        "declared in tools/reprolint/layers.toml"
    )

    def check_module(self, module: Module, context: LintContext) -> list[Finding]:
        parts = module.package_parts
        if parts is None or parts == ("__init__",):
            return []
        manifest = context.manifest
        package = manifest.package
        source_layer = manifest.layer_of_module(parts[0])
        if source_layer is None:
            return [
                Finding(
                    rule=self.code,
                    path=module.rel_path,
                    line=1,
                    message=(
                        f"module {package}.{parts[0]} is not owned by any layer "
                        f"in {manifest.path.name}; add it to the manifest"
                    ),
                )
            ]
        findings: list[Finding] = []
        for top, lineno, display in _import_targets(module.tree, parts, package):
            if top is None:
                findings.append(
                    Finding(
                        rule=self.code,
                        path=module.rel_path,
                        line=lineno,
                        message=(
                            f"imports the package root facade ({display}); "
                            "import from the owning layer instead "
                            f"(e.g. {package}._version for __version__)"
                        ),
                    )
                )
                continue
            target_layer = manifest.layer_of_module(top)
            if target_layer is None:
                findings.append(
                    Finding(
                        rule=self.code,
                        path=module.rel_path,
                        line=lineno,
                        message=(
                            f"imports {package}.{top}, which no layer in "
                            f"{manifest.path.name} owns"
                        ),
                    )
                )
            elif not manifest.allowed(source_layer.name, target_layer.name):
                allowed = ", ".join(source_layer.depends) or "(nothing)"
                findings.append(
                    Finding(
                        rule=self.code,
                        path=module.rel_path,
                        line=lineno,
                        message=(
                            f"layer {source_layer.name!r} may not import layer "
                            f"{target_layer.name!r} ({display}); its declared "
                            f"dependencies are: {allowed}"
                        ),
                    )
                )
        return findings


def _import_targets(
    tree: ast.Module, parts: tuple[str, ...], package: str
) -> list[tuple[str | None, int, str]]:
    """``(top_level_entry, line, display)`` per in-package import edge.

    ``top_level_entry`` is the first component under the package root
    (``"core"``, ``"api"``, ...), or ``None`` when the import reaches
    the root package itself.
    """
    targets: list[tuple[str | None, int, str]] = []
    prefix = package + "."
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == package:
                    targets.append((None, node.lineno, f"import {alias.name}"))
                elif alias.name.startswith(prefix):
                    top = alias.name.split(".")[1]
                    targets.append((top, node.lineno, f"import {alias.name}"))
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                if node.module == package:
                    targets.append(
                        (None, node.lineno, f"from {package} import ...")
                    )
                elif node.module and node.module.startswith(prefix):
                    top = node.module.split(".")[1]
                    targets.append(
                        (top, node.lineno, f"from {node.module} import ...")
                    )
                continue
            # Relative import: resolve against the module's own package
            # path.  parts[:-1] is the containing package for plain
            # modules and subpackage __init__ files alike.
            base = list(parts[:-1])
            hops = node.level - 1
            if hops > len(base):
                continue  # reaches above the package root; not ours to judge
            base = base[: len(base) - hops] if hops else base
            resolved = base + (node.module.split(".") if node.module else [])
            dots = "." * node.level
            display = f"from {dots}{node.module or ''} import ..."
            if resolved:
                targets.append((resolved[0], node.lineno, display))
            else:
                # `from . import x` at the package root: each imported
                # name is itself a top-level entry.
                for alias in node.names:
                    if alias.name != "*":
                        targets.append((alias.name, node.lineno, display))
    return targets
