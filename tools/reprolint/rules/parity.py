"""RL004 — every solver backend entry point is in the parity matrix.

The validation parity matrix (``src/repro/validation/parity.py``) is
the continuously-enforced form of the bit-parity contract: dense ==
template == batched exactly, sparse within tolerance.  A new backend
that never enters the matrix is unvalidated by construction.  This rule
cross-references the public ``solve_*``/``batched_*`` functions defined
in the files named by ``[rules.RL004] entrypoint_files`` against the
``PARITY_CLASSES`` registry in the parity module: every entry point
must be registered as ``"exact"`` or ``"tolerance"``, and the registry
must not carry stale names.
"""

from __future__ import annotations

import ast

from tools.reprolint.engine import Finding, LintContext

__all__ = ["ParityRegistrationRule"]

_PREFIXES = ("solve_", "batched_")


class ParityRegistrationRule:
    code = "RL004"
    name = "parity-registration"
    description = (
        "public solve_*/batched_* backend entry points must be registered "
        "in validation/parity.py PARITY_CLASSES as exact or tolerance"
    )

    def check_project(self, context: LintContext) -> list[Finding]:
        config = context.manifest.rule_config(self.code)
        entrypoint_files = config.get("entrypoint_files", [])
        registry_file = config.get("registry_file")
        registry_name = config.get("registry_name", "PARITY_CLASSES")
        classes = tuple(config.get("classes", ["exact", "tolerance"]))
        if not entrypoint_files or not registry_file:
            return []

        entry_points: dict[str, tuple[str, int]] = {}
        findings: list[Finding] = []
        for rel in entrypoint_files:
            module = context.load(rel)
            if module is None:
                findings.append(
                    Finding(
                        rule=self.code,
                        path=rel,
                        line=1,
                        message="configured entrypoint file is missing or unparsable",
                    )
                )
                continue
            for node in module.tree.body:
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name.startswith(_PREFIXES)
                    and not node.name.startswith("_")
                ):
                    entry_points[node.name] = (rel, node.lineno)

        registry = _load_registry(context, registry_file, registry_name)
        if registry is None:
            findings.append(
                Finding(
                    rule=self.code,
                    path=registry_file,
                    line=1,
                    message=(
                        f"no module-level dict literal named {registry_name} "
                        "found; the parity registry is the machine-readable "
                        "half of the bit-parity contract"
                    ),
                )
            )
            return findings

        for name, (rel, lineno) in sorted(entry_points.items()):
            if name not in registry:
                findings.append(
                    Finding(
                        rule=self.code,
                        path=rel,
                        line=lineno,
                        message=(
                            f"backend entry point {name!r} is not registered in "
                            f"{registry_file} {registry_name}; add it with class "
                            f"{' or '.join(repr(c) for c in classes)} and cover "
                            "it in the parity matrix"
                        ),
                    )
                )
        for name, (value, lineno) in sorted(registry.items()):
            if name not in entry_points:
                findings.append(
                    Finding(
                        rule=self.code,
                        path=registry_file,
                        line=lineno,
                        message=(
                            f"{registry_name} registers {name!r}, but no such "
                            "entry point exists in the configured files "
                            "(stale registration)"
                        ),
                    )
                )
            elif value not in classes:
                findings.append(
                    Finding(
                        rule=self.code,
                        path=registry_file,
                        line=lineno,
                        message=(
                            f"{registry_name}[{name!r}] = {value!r} is not a "
                            f"known parity class {classes}"
                        ),
                    )
                )
        return findings


def _load_registry(
    context: LintContext, registry_file: str, registry_name: str
) -> dict[str, tuple[str, int]] | None:
    """``{entry point name: (class, line)}`` from the registry dict literal."""
    module = context.load(registry_file)
    if module is None:
        return None
    for node in module.tree.body:
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        else:
            continue
        if (
            isinstance(target, ast.Name)
            and target.id == registry_name
            and isinstance(value, ast.Dict)
        ):
            registry: dict[str, tuple[str, int]] = {}
            for key, entry in zip(value.keys, value.values):
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(entry, ast.Constant)
                    and isinstance(entry.value, str)
                ):
                    registry[key.value] = (entry.value, key.lineno)
            return registry
    return None
