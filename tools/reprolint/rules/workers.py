"""RL005 — worker safety: pool callables must be module-level.

``runtime.parallel_map`` (and raw pool ``submit``/``apply_async``)
pickle the callable into worker processes.  Lambdas and functions
defined inside another function do not pickle — and worse, they fail
only when a pool actually spawns, which the one-worker fast path and
sandboxed CI never exercise.  This rule flags, at the call site, a
lambda or a locally-defined function passed as the callable argument
of any API named in ``[rules.RL005] apis``.

Names that cannot be resolved statically (parameters, attributes) pass:
the rule proves the definite failures, the test suite catches the rest.
"""

from __future__ import annotations

import ast

from tools.reprolint.engine import Finding, LintContext, Module

__all__ = ["WorkerSafetyRule"]

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


class WorkerSafetyRule:
    code = "RL005"
    name = "worker-safety"
    description = (
        "callables passed to parallel_map/pool submission must be "
        "module-level functions (lambdas/closures do not pickle)"
    )

    def check_module(self, module: Module, context: LintContext) -> list[Finding]:
        apis = set(context.manifest.rule_config(self.code).get("apis", []))
        if not apis:
            return []
        findings: list[Finding] = []
        self._visit_scope(module.tree.body, [], apis, module, findings)
        return findings

    def _visit_scope(
        self,
        body: list[ast.stmt],
        frames: list[set[str]],
        apis: set[str],
        module: Module,
        findings: list[Finding],
    ) -> None:
        """Check one scope's calls, then recurse into nested functions.

        ``frames`` holds, per enclosing *function* scope, the names
        bound there to a def or lambda.  Module-level defs never enter
        a frame — they pickle fine.
        """
        nested: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
        for node in _scope_nodes(body, nested):
            if isinstance(node, ast.Call):
                self._check_call(node, frames, apis, module, findings)
        for func in nested:
            frame = _local_callable_names(func)
            self._visit_scope(func.body, frames + [frame], apis, module, findings)

    def _check_call(
        self,
        node: ast.Call,
        frames: list[set[str]],
        apis: set[str],
        module: Module,
        findings: list[Finding],
    ) -> None:
        func_name = None
        if isinstance(node.func, ast.Name):
            func_name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            func_name = node.func.attr
        if func_name not in apis or not node.args:
            return
        candidate = node.args[0]
        if isinstance(candidate, ast.Lambda):
            findings.append(
                Finding(
                    rule=self.code,
                    path=module.rel_path,
                    line=candidate.lineno,
                    message=(
                        f"lambda passed to {func_name}(); pool callables must "
                        "be module-level functions (lambdas do not pickle)"
                    ),
                )
            )
        elif isinstance(candidate, ast.Name) and any(
            candidate.id in frame for frame in frames
        ):
            findings.append(
                Finding(
                    rule=self.code,
                    path=module.rel_path,
                    line=candidate.lineno,
                    message=(
                        f"locally-defined function {candidate.id!r} passed to "
                        f"{func_name}(); move it to module level so it pickles "
                        "into worker processes"
                    ),
                )
            )


def _scope_nodes(body: list[ast.stmt], nested: list) -> list[ast.AST]:
    """All nodes of one scope, stopping at nested function boundaries.

    Nested defs are appended to ``nested`` for the caller to recurse
    into with their own frame.
    """
    nodes: list[ast.AST] = []
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, _FUNCTION_NODES):
            nested.append(node)
            # Decorators and defaults evaluate in the enclosing scope.
            stack.extend(node.decorator_list)
            stack.extend(node.args.defaults)
            stack.extend(d for d in node.args.kw_defaults if d is not None)
            continue
        nodes.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return nodes


def _local_callable_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound to a def or lambda directly inside ``func``'s body."""
    names: set[str] = set()
    for stmt in func.body:
        if isinstance(stmt, _FUNCTION_NODES):
            names.add(stmt.name)
        elif isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Lambda):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names
