"""RL002 — determinism: no ambient randomness or wall-clock reads.

Inside the layers named by ``[rules.RL002] layers`` in ``layers.toml``
(the numerical core, the simulator kernel, the runtime and the multihop
harnesses), results must be a pure function of parameters and the root
seed.  Banned:

* the stdlib ``random`` module (import or use) — hidden global state;
* ``time.time``/``monotonic``/``perf_counter`` and friends,
  ``datetime.now``/``utcnow``/``today``, ``date.today`` — wall-clock
  reads that leak the host into results or cache keys;
* ``os.urandom``, ``uuid.uuid1``/``uuid4``, anything in ``secrets``;
* legacy global-state ``numpy.random`` functions (``rand``, ``seed``,
  ``shuffle``, ``RandomState``, ...) and **unseeded**
  ``numpy.random.default_rng()``.

The sanctioned path is ``sim/randomness.RandomStreams``: explicit
``SeedSequence``-derived generators threaded to the draw site.  The
modern seeded constructors (``default_rng(seed)``, ``SeedSequence``,
``Generator``, bit generators) pass.
"""

from __future__ import annotations

import ast

from tools.reprolint.engine import Finding, LintContext, Module
from tools.reprolint.rules._common import dotted_chain, import_aliases

__all__ = ["DeterminismRule"]

#: Exact dotted names that are always findings.
_BANNED_EXACT = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.monotonic": "wall-clock read",
    "time.monotonic_ns": "wall-clock read",
    "time.perf_counter": "wall-clock read",
    "time.perf_counter_ns": "wall-clock read",
    "os.urandom": "OS entropy",
    "uuid.uuid1": "host/time-derived id",
    "uuid.uuid4": "OS entropy",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
}

#: Dotted prefixes banned wholesale.
_BANNED_PREFIXES = {
    "random": "stdlib random (hidden global state)",
    "secrets": "OS entropy",
}

#: numpy.random attributes that are part of the explicit-seeding API.
_NUMPY_RANDOM_ALLOWED = {
    "BitGenerator",
    "Generator",
    "MT19937",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "SeedSequence",
    "default_rng",
}


class DeterminismRule:
    code = "RL002"
    name = "determinism"
    description = (
        "core/sim/runtime/multihop must route all randomness through "
        "sim/randomness.RandomStreams; no ambient entropy or wall-clock reads"
    )

    def check_module(self, module: Module, context: LintContext) -> list[Finding]:
        parts = module.package_parts
        if parts is None:
            return []
        layer = context.manifest.layer_of_module(parts[0])
        scoped = context.manifest.rule_config(self.code).get("layers", [])
        if layer is None or layer.name not in scoped:
            return []
        aliases = import_aliases(module.tree)
        findings: list[Finding] = []

        def flag(lineno: int, what: str, why: str) -> None:
            findings.append(
                Finding(
                    rule=self.code,
                    path=module.rel_path,
                    line=lineno,
                    message=(
                        f"{what} ({why}); derive randomness from "
                        "sim/randomness.RandomStreams and pass clocks/ids "
                        "in explicitly"
                    ),
                )
            )

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top in _BANNED_PREFIXES:
                        flag(node.lineno, f"import {alias.name}", _BANNED_PREFIXES[top])
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                top = node.module.split(".")[0]
                if top in _BANNED_PREFIXES:
                    flag(
                        node.lineno,
                        f"from {node.module} import ...",
                        _BANNED_PREFIXES[top],
                    )
                else:
                    for alias in node.names:
                        dotted = f"{node.module}.{alias.name}"
                        if dotted in _BANNED_EXACT:
                            flag(node.lineno, dotted, _BANNED_EXACT[dotted])
                        elif _legacy_numpy_random(dotted):
                            flag(
                                node.lineno,
                                dotted,
                                "legacy global-state numpy.random",
                            )
            elif isinstance(node, (ast.Attribute, ast.Name)):
                dotted = dotted_chain(node, aliases)
                if dotted is None:
                    continue
                if dotted in _BANNED_EXACT:
                    flag(node.lineno, dotted, _BANNED_EXACT[dotted])
                else:
                    top = dotted.split(".")[0]
                    if top in _BANNED_PREFIXES and dotted != top:
                        flag(node.lineno, dotted, _BANNED_PREFIXES[top])
                    elif _legacy_numpy_random(dotted):
                        flag(node.lineno, dotted, "legacy global-state numpy.random")
            elif isinstance(node, ast.Call):
                dotted = dotted_chain(node.func, aliases)
                if (
                    dotted is not None
                    and dotted.endswith("random.default_rng")
                    and dotted in ("numpy.random.default_rng", "random.default_rng")
                    and not node.args
                    and not node.keywords
                ):
                    flag(
                        node.lineno,
                        "default_rng() without a seed",
                        "fresh OS entropy per call",
                    )
        # One finding per (line, message): the Attribute walk sees the
        # same chain once, but an import plus a use on one line should
        # not double up.
        unique: dict[tuple[int, str], Finding] = {
            (finding.line, finding.message): finding for finding in findings
        }
        return list(unique.values())


def _legacy_numpy_random(dotted: str) -> bool:
    parts = dotted.split(".")
    return (
        len(parts) == 3
        and parts[0] == "numpy"
        and parts[1] == "random"
        and parts[2] not in _NUMPY_RANDOM_ALLOWED
    )
