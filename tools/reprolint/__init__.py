"""reprolint — AST-based invariant checker for this repo's contracts.

The repo's correctness story rests on contracts that used to be prose:
layers import downward only (docs/architecture.md), the numerical core
is deterministic given a seed, state enumeration order underpins the
chain<->tree bit-parity, every solver backend enters the validation
parity matrix, and pool callables must pickle.  reprolint turns each
into a machine-checked rule:

========  ====================  ==============================================
code      name                  contract
========  ====================  ==============================================
RL001     layer-contract        imports follow the layers.toml downward DAG
RL002     determinism           no ambient randomness / wall-clock in the core
RL003     canonical-order       no set/bare-.keys() iteration where order is
                                load-bearing
RL004     parity-registration   solver entry points registered in the parity
                                matrix (exact or tolerance class)
RL005     worker-safety         pool callables are module-level (picklable)
========  ====================  ==============================================

Run ``python -m tools.reprolint`` (or ``repro-signaling lint`` from a
checkout); see ``docs/linting.md`` for the rule catalogue, suppression
syntax and how to add a rule.  Stdlib-only by design: ``ast`` +
``tomllib``, no third-party dependencies.
"""

from __future__ import annotations

from tools.reprolint.engine import (
    JSON_SCHEMA_VERSION,
    Finding,
    LintReport,
    run_lint,
)
from tools.reprolint.manifest import LayerManifest, ManifestError, load_manifest
from tools.reprolint.rules import default_rules

__all__ = [
    "Finding",
    "JSON_SCHEMA_VERSION",
    "LayerManifest",
    "LintReport",
    "ManifestError",
    "default_rules",
    "load_manifest",
    "run_lint",
]

__version__ = "1.0.0"
