"""Load and validate the layer manifest (``layers.toml``).

The manifest is the single machine-readable source of truth for the
repo's layering contract: rule RL001 checks imports against it and
``tools/generate_layer_docs.py`` renders the ``docs/architecture.md``
layer-map block from it.  Loading validates the declaration itself —
unknown dependency names, duplicate module ownership, or a cycle in the
declared edges are configuration errors (exit code 2), not findings.
"""

from __future__ import annotations

import dataclasses
import pathlib
import tomllib

__all__ = ["Layer", "LayerManifest", "ManifestError", "load_manifest"]

DEFAULT_MANIFEST_PATH = pathlib.Path(__file__).resolve().parent / "layers.toml"


class ManifestError(Exception):
    """The manifest file is missing, unparsable, or inconsistent."""


@dataclasses.dataclass(frozen=True)
class Layer:
    """One stratum of the package: a name, its modules, its allowed deps."""

    name: str
    modules: tuple[str, ...]
    depends: tuple[str, ...]
    description: str = ""


@dataclasses.dataclass(frozen=True)
class LayerManifest:
    """The validated layer DAG plus per-rule configuration tables."""

    package: str
    source_root: str
    layers: tuple[Layer, ...]
    rules: dict[str, dict]
    path: pathlib.Path

    def layer_names(self) -> list[str]:
        return [layer.name for layer in self.layers]

    def layer_of_module(self, module: str) -> Layer | None:
        """The layer owning a top-level entry of the package, if any.

        ``module`` is the first path component under ``src/repro/`` —
        a subpackage name (``core``) or a module stem (``api``).
        """
        return self._module_map().get(module)

    def allowed(self, source: str, target: str) -> bool:
        """Whether layer ``source`` may import from layer ``target``."""
        if source == target:
            return True
        layer = self._layer_map().get(source)
        return layer is not None and target in layer.depends

    def rule_config(self, code: str) -> dict:
        return self.rules.get(code, {})

    # Derived lookup tables (built lazily; the dataclass is frozen so
    # they are cached on the instance via object.__setattr__).

    def _layer_map(self) -> dict[str, Layer]:
        cached = self.__dict__.get("_layers_by_name")
        if cached is None:
            cached = {layer.name: layer for layer in self.layers}
            object.__setattr__(self, "_layers_by_name", cached)
        return cached

    def _module_map(self) -> dict[str, Layer]:
        cached = self.__dict__.get("_layers_by_module")
        if cached is None:
            cached = {}
            for layer in self.layers:
                for module in layer.modules:
                    cached[module] = layer
            object.__setattr__(self, "_layers_by_module", cached)
        return cached


def _validate(layers: tuple[Layer, ...], path: pathlib.Path) -> None:
    names = [layer.name for layer in layers]
    if len(set(names)) != len(names):
        raise ManifestError(f"{path}: duplicate layer names in manifest")
    known = set(names)
    owners: dict[str, str] = {}
    for layer in layers:
        for dep in layer.depends:
            if dep not in known:
                raise ManifestError(
                    f"{path}: layer {layer.name!r} depends on unknown layer {dep!r}"
                )
        for module in layer.modules:
            if module in owners:
                raise ManifestError(
                    f"{path}: module {module!r} owned by both "
                    f"{owners[module]!r} and {layer.name!r}"
                )
            owners[module] = layer.name
    # The declared edges must form a DAG: the "downward only" contract
    # is meaningless if the manifest itself smuggles in a cycle.
    edges = {layer.name: set(layer.depends) for layer in layers}
    seen: dict[str, int] = {}  # 1 = on stack, 2 = done

    def visit(node: str, stack: list[str]) -> None:
        state = seen.get(node)
        if state == 2:
            return
        if state == 1:
            cycle = " -> ".join(stack[stack.index(node):] + [node])
            raise ManifestError(f"{path}: dependency cycle in manifest: {cycle}")
        seen[node] = 1
        for dep in sorted(edges[node]):
            visit(dep, stack + [node])
        seen[node] = 2

    for name in names:
        visit(name, [])


def load_manifest(path: pathlib.Path | None = None) -> LayerManifest:
    """Parse and validate ``layers.toml`` (the packaged one by default)."""
    path = pathlib.Path(path) if path is not None else DEFAULT_MANIFEST_PATH
    try:
        data = tomllib.loads(path.read_text())
    except FileNotFoundError as error:
        raise ManifestError(f"manifest not found: {path}") from error
    except tomllib.TOMLDecodeError as error:
        raise ManifestError(f"{path}: invalid TOML: {error}") from error
    meta = data.get("manifest", {})
    if meta.get("schema") != 1:
        raise ManifestError(f"{path}: unsupported manifest schema {meta.get('schema')!r}")
    layers = []
    for entry in data.get("layer", []):
        try:
            name = entry["name"]
        except KeyError as error:
            raise ManifestError(f"{path}: layer entry without a name") from error
        layers.append(
            Layer(
                name=name,
                modules=tuple(entry.get("modules", [name])),
                depends=tuple(entry.get("depends", [])),
                description=entry.get("description", ""),
            )
        )
    if not layers:
        raise ManifestError(f"{path}: manifest declares no layers")
    layers = tuple(layers)
    _validate(layers, path)
    return LayerManifest(
        package=meta.get("package", "repro"),
        source_root=meta.get("source_root", "src/repro"),
        layers=layers,
        rules=data.get("rules", {}),
        path=path,
    )
