#!/usr/bin/env python
"""Check relative markdown links in ``docs/*.md`` and ``README.md``.

Usage::

    python tools/check_links.py            # exit 1 on any broken link

For every ``[text](target)`` link whose target is not an absolute URL
or mail address, the target file must exist relative to the linking
document (query strings are rejected, ``#anchor`` suffixes are checked
against the target file's headings).  The ``docs`` CI job runs this so
reorganizing files cannot silently strand references.
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: ``[text](target)`` — target captured; images share the syntax.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_EXTERNAL = ("http://", "https://", "mailto:")


def _anchors(path: pathlib.Path) -> set[str]:
    """GitHub-style anchor slugs of a markdown file's headings."""
    slugs: set[str] = set()
    for line in path.read_text().splitlines():
        if not line.startswith("#"):
            continue
        title = line.lstrip("#").strip().lower()
        slug = re.sub(r"[^\w\- ]", "", title).replace(" ", "-")
        slugs.add(slug)
    return slugs


def check_file(path: pathlib.Path) -> list[str]:
    """All broken relative links of one markdown file."""
    problems: list[str] = []
    for target in _LINK.findall(path.read_text()):
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            if target.startswith("#") and target[1:] not in _anchors(path):
                problems.append(f"{path.name}: missing local anchor {target}")
            continue
        file_part, _, anchor = target.partition("#")
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            problems.append(f"{path.name}: broken link {target}")
        elif anchor and resolved.suffix == ".md" and anchor not in _anchors(resolved):
            problems.append(f"{path.name}: missing anchor {target}")
    return problems


def main() -> int:
    documents = sorted((REPO_ROOT / "docs").glob("*.md"))
    documents.append(REPO_ROOT / "README.md")
    problems: list[str] = []
    for document in documents:
        problems.extend(check_file(document))
    for problem in problems:
        print(problem, file=sys.stderr)
    checked = len(documents)
    if problems:
        print(f"{len(problems)} broken link(s) across {checked} file(s)", file=sys.stderr)
        return 1
    print(f"links ok across {checked} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
