"""Repo maintenance tooling (not installed with the package).

Importable from a source checkout only — ``python -m tools.reprolint``
and the test suite put the repo root on ``sys.path``.
"""
