#!/usr/bin/env python
"""Regenerate (or drift-check) the layer-map block of ``docs/architecture.md``.

Usage::

    python tools/generate_layer_docs.py            # rewrite the block in place
    python tools/generate_layer_docs.py --check    # exit 1 if out of sync

The block between the ``<!-- layer-map:begin -->`` / ``<!-- layer-map:end -->``
markers is rendered from ``tools/reprolint/layers.toml`` — the same
manifest reprolint rule RL001 enforces — so the documented DAG and the
enforced DAG cannot diverge (same pattern as ``generate_cli_docs.py``
for the CLI reference).
"""

from __future__ import annotations

import argparse
import difflib
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint.manifest import LayerManifest, load_manifest  # noqa: E402 - path setup first

DOC_PATH = REPO_ROOT / "docs" / "architecture.md"
BEGIN = "<!-- layer-map:begin -->"
END = "<!-- layer-map:end -->"


def _display_path(manifest: LayerManifest, module: str) -> str:
    base = f"{manifest.source_root}/{module}"
    if (REPO_ROOT / base).is_dir():
        return base
    return f"{base}.py"


def render_layer_map(manifest: LayerManifest) -> str:
    """The generated markdown block (markers included)."""
    lines = [
        BEGIN,
        "<!-- generated from tools/reprolint/layers.toml by",
        "     tools/generate_layer_docs.py; edit the manifest, not this block -->",
        "",
        "```",
    ]
    rows = [
        (_display_path(manifest, module), layer.description)
        for layer in manifest.layers
        for module in layer.modules
    ]
    width = max(len(path) for path, _ in rows)
    lines.extend(f"{path:<{width}}  {description}" for path, description in rows)
    lines.append("```")
    lines.extend(
        [
            "",
            "Dependencies point downward only — machine-checked by reprolint",
            "rule RL001 ([linting guide](linting.md)) against the manifest in",
            "`tools/reprolint/layers.toml`.  Each layer's declared imports:",
            "",
            "| Layer | May import from |",
            "| --- | --- |",
        ]
    )
    for layer in manifest.layers:
        depends = ", ".join(f"`{dep}`" for dep in layer.depends) or "—"
        lines.append(f"| `{layer.name}` | {depends} |")
    lines.append(END)
    return "\n".join(lines)


def spliced_document(manifest: LayerManifest) -> str:
    """``docs/architecture.md`` with a freshly rendered layer-map block."""
    text = DOC_PATH.read_text()
    try:
        head, rest = text.split(BEGIN, 1)
        _, tail = rest.split(END, 1)
    except ValueError:
        raise SystemExit(
            f"{DOC_PATH}: missing {BEGIN} / {END} markers; cannot splice"
        ) from None
    return head + render_layer_map(manifest) + tail


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) when the committed block is out of sync "
        "instead of rewriting it",
    )
    args = parser.parse_args(argv)
    manifest = load_manifest()
    generated = spliced_document(manifest)
    committed = DOC_PATH.read_text()
    if args.check:
        if committed == generated:
            print(f"{DOC_PATH.relative_to(REPO_ROOT)} layer map is in sync")
            return 0
        diff = difflib.unified_diff(
            committed.splitlines(keepends=True),
            generated.splitlines(keepends=True),
            fromfile="docs/architecture.md (committed)",
            tofile="docs/architecture.md (generated)",
        )
        sys.stderr.writelines(diff)
        print(
            "docs/architecture.md layer map is out of sync with "
            "tools/reprolint/layers.toml; regenerate with "
            "`python tools/generate_layer_docs.py`",
            file=sys.stderr,
        )
        return 1
    if committed != generated:
        DOC_PATH.write_text(generated)
        print(f"wrote {DOC_PATH.relative_to(REPO_ROOT)}")
    else:
        print(f"{DOC_PATH.relative_to(REPO_ROOT)} already in sync")
    return 0


if __name__ == "__main__":
    sys.exit(main())
