"""Student-t equivalence tests between simulation and analytic metrics.

The paper's validation figures (Figs. 11-12) overlay replicated
discrete-event simulations — deterministic timers, 95% confidence
intervals — on the exponential-timer analytic curves, and argue the two
agree.  This module turns that visual argument into a per-point test.

The simulated estimate at each point is a sample mean with a Student-t
half-width ``hw`` (from :func:`repro.sim.stats.student_t_interval`,
already carrying the t quantile for the replication count).  The
analytic prediction ``m`` is declared *equivalent* to the simulated
mean ``s`` when::

    |s - m| <= max(ci_multiplier * hw,  rel_tol * |m|,  abs_floor)

i.e. the model must sit within a widened confidence band, where the
widening terms absorb the paper's documented *systematic* gaps between
the deterministic-timer simulations and the exponential-timer model
(a few percent on the inconsistency ratio, 5-15% on the message rate),
and ``abs_floor`` keeps near-zero metrics from demanding impossible
relative precision.  This is a TOST-style equivalence margin: the
statistical term shrinks as replications grow, while the relative term
encodes the accepted model bias.
"""

from __future__ import annotations

import dataclasses
import math

from repro.validation.report import PointCheck

__all__ = [
    "CURVE_EQUIVALENCE_CRITERIA",
    "CurveCriterion",
    "EquivalenceCriterion",
    "SIM_EQUIVALENCE_CRITERIA",
    "equivalence_curve",
    "equivalence_point",
]


@dataclasses.dataclass(frozen=True)
class EquivalenceCriterion:
    """Margin parameters of one sim-vs-model equivalence test."""

    ci_multiplier: float = 2.5
    rel_tol: float = 0.35
    abs_floor: float = 0.0

    def __post_init__(self) -> None:
        if self.ci_multiplier < 0 or self.rel_tol < 0 or self.abs_floor < 0:
            raise ValueError("equivalence margins must be non-negative")

    def allowance(self, model: float, half_width: float) -> float:
        """The allowed ``|sim - model|`` at one point."""
        return max(
            self.ci_multiplier * half_width,
            self.rel_tol * abs(model),
            self.abs_floor,
        )


#: Per simulated metric (the :data:`repro.experiments.spec.SIM_METRICS`
#: names): the margins used when a scenario does not override them.
#: The inconsistency band is wider than the message-rate band in
#: relative terms because deterministic timers bias soft-state timeouts
#: downward most at short sessions (paper §III-A.3); the floors stop
#: ~1e-4-scale inconsistency ratios from failing on noise.
SIM_EQUIVALENCE_CRITERIA: dict[str, EquivalenceCriterion] = {
    "inconsistency": EquivalenceCriterion(
        ci_multiplier=2.5, rel_tol=0.40, abs_floor=1e-3
    ),
    "message_rate": EquivalenceCriterion(
        ci_multiplier=2.5, rel_tol=0.30, abs_floor=1e-6
    ),
}


@dataclasses.dataclass(frozen=True)
class CurveCriterion:
    """Equivalence margin for a whole time-dependent curve.

    Each grid point is tested with ``point`` exactly like a stationary
    metric, but the curve as a whole passes as long as at most
    ``max_violation_fraction`` of its points violate their bands.  A
    transient curve crosses steep ramps where a deterministic-timer
    simulation moves in steps while the exponential-timer model moves
    smoothly; scenario grids avoid the worst ramps, and the violation
    budget absorbs the residual phase error without letting a curve
    that is wrong *everywhere* pass.
    """

    point: EquivalenceCriterion = EquivalenceCriterion()
    max_violation_fraction: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.max_violation_fraction < 1.0:
            raise ValueError(
                "max_violation_fraction must be in [0, 1), got "
                f"{self.max_violation_fraction}"
            )


#: Per curve metric: margins for the transient consistency curves.  The
#: 0.15 absolute floor reflects that both sides estimate a probability
#: in [0, 1] from O(10) replications of a step-shaped process; the
#: relative term matches the stationary inconsistency band.
CURVE_EQUIVALENCE_CRITERIA: dict[str, CurveCriterion] = {
    "consistency": CurveCriterion(
        point=EquivalenceCriterion(ci_multiplier=2.5, rel_tol=0.35, abs_floor=0.15),
        max_violation_fraction=0.25,
    ),
}


def equivalence_curve(
    label: str,
    times: tuple[float, ...],
    model: tuple[float, ...],
    sim_means: tuple[float, ...],
    half_widths: tuple[float, ...],
    criterion: CurveCriterion,
) -> tuple[tuple[PointCheck, ...], bool]:
    """Test a simulated curve against its analytic twin on one grid.

    Returns the per-point checks plus the curve-level verdict: passed
    when the fraction of violating points stays within the criterion's
    budget (an empty grid fails).
    """
    points = tuple(
        equivalence_point(f"{label} @ t={t:g}", m, s, hw, criterion.point)
        for t, m, s, hw in zip(times, model, sim_means, half_widths)
    )
    if not points:
        return points, False
    violations = sum(1 for point in points if not point.passed)
    return points, violations / len(points) <= criterion.max_violation_fraction


def equivalence_point(
    label: str,
    model: float,
    sim_mean: float,
    half_width: float,
    criterion: EquivalenceCriterion,
) -> PointCheck:
    """Test one simulated point against its analytic prediction.

    Returns a :class:`~repro.validation.report.PointCheck` whose
    ``tolerance`` records the realized allowance.  Non-finite inputs
    fail outright (tolerance 0) rather than raising, so one broken
    point cannot abort a whole report.
    """
    values = (model, sim_mean, half_width)
    if not all(math.isfinite(v) for v in values):
        return PointCheck(
            label=label,
            expected=model,
            observed=sim_mean,
            tolerance=0.0,
            passed=False,
        )
    tolerance = criterion.allowance(model, half_width)
    return PointCheck(
        label=label,
        expected=model,
        observed=sim_mean,
        tolerance=tolerance,
        passed=abs(sim_mean - model) <= tolerance,
    )
