"""Validation plans: every ScenarioSpec becomes an executable check list.

:func:`build_plan` inspects a registered
:class:`~repro.experiments.spec.ScenarioSpec` and derives what can be
certified about it:

* **artifact checks** (every scenario): the scenario runs at the
  requested fidelity, produces finite numbers, and its JSON artifact
  round-trips losslessly through the schema-versioned loader;
* **invariant checks** (every scenario): stationary distributions sum
  to one, inconsistency ratios stay in ``[0, 1]`` and receiver
  lifetimes are positive at the scenario's base parameter point;
* **backend parity checks** (every scenario): the scenario's family
  slice of the :mod:`~repro.validation.parity` matrix — dense, template
  and batched solves must agree exactly, sparse within tolerance,
  across the scenario's protocols (and two hop counts for multi-hop
  families);
* **differential sim-vs-model checks** (scenarios with a
  :class:`~repro.experiments.spec.SimPlan`): the replicated
  discrete-event simulations must be Student-t-equivalent to the
  analytic predictions at every swept point
  (:mod:`~repro.validation.equivalence`).

:func:`execute_plan` runs the checks and packages a
:class:`~repro.validation.report.ValidationReport`;
:func:`validate_scenario` / :func:`validate_all` are the one-call
entry points the CLI ``validate`` verb and :mod:`repro.api` use.
"""

from __future__ import annotations

import dataclasses
import functools
import math

from repro.core.markov import SPARSE_STATE_THRESHOLD
from repro.core.protocols import Protocol
from repro.experiments import run_scenario, scenario_ids
from repro.experiments import spec as _spec
from repro.experiments.runner import ExperimentResult
from repro.experiments.spec import ScenarioSpec, SeriesPlan
from repro.core.multihop.topology import Topology
from repro.core.parameters import MultiHopParameters
from repro.faults.gilbert import GilbertElliottParameters
from repro.transient import transient_model
from repro.runtime import (
    solve_gilbert_multihop_batch,
    solve_gilbert_singlehop_batch,
    solve_multihop_batch,
    solve_singlehop_batch,
    solve_transient_curve,
    solve_tree_batch,
)
from repro.validation.equivalence import (
    CURVE_EQUIVALENCE_CRITERIA,
    SIM_EQUIVALENCE_CRITERIA,
    equivalence_curve,
    equivalence_point,
)
from repro.validation.parity import (
    BACKENDS,
    chain_backend_parity_checks,
    gilbert_multihop_parity_checks,
    gilbert_singlehop_parity_checks,
    heterogeneous_parity_check,
    multihop_parity_checks,
    singlehop_parity_checks,
    tree_parity_checks,
    tree_scale_parity_checks,
)
from repro.validation.report import CheckResult, PointCheck, ValidationReport

__all__ = [
    "ValidationPlan",
    "build_plan",
    "execute_plan",
    "validate_all",
    "validate_scenario",
]


@dataclasses.dataclass(frozen=True)
class ValidationPlan:
    """What validating one scenario at one fidelity will exercise."""

    spec: ScenarioSpec
    fidelity: str
    protocols: tuple[Protocol, ...]
    sim_panels: tuple[str, ...]
    parity_families: tuple[str, ...]
    hop_counts: tuple[int, ...]

    @property
    def has_simulation(self) -> bool:
        """Whether differential sim-vs-model checks will run."""
        return bool(self.sim_panels)


def _sim_panels(spec: ScenarioSpec) -> tuple[str, ...]:
    return tuple(
        panel.name
        for panel in spec.panels
        if any(plan.kind == "sim" for plan in panel.plans)
    )


#: The canonical topology tree-family invariants are checked on: small
#: enough to solve densely, non-trivial in both depth and fan-out.
_INVARIANT_TOPOLOGY = Topology.kary(2, 2)


def _parity_hop_counts(spec: ScenarioSpec) -> tuple[int, ...]:
    if spec.family in ("singlehop", "tree"):
        return ()
    base = _spec.base_parameters(spec)
    if not isinstance(base, MultiHopParameters):
        # A single-hop preset in a hop-agnostic family (e.g. the
        # single-hop burst_loss scenario) has no chain length to sweep.
        return ()
    # Two hop counts in the dense regime: the scenario's own chain
    # length plus a short contrast chain.  Exact dense==template==
    # batched parity is only guaranteed below the sparse crossover
    # (solver="auto" flips the reference itself to splu there), so the
    # scenario's hop count is clamped: the largest chain is 2N+2
    # states (HS recovery state included).
    dense_limit = (SPARSE_STATE_THRESHOLD - 2) // 2 - 1
    hops = min(int(base.hops), dense_limit)
    contrast = 5 if hops != 5 else 8
    return tuple(sorted({hops, contrast}))


def build_plan(scenario: str | ScenarioSpec, fidelity: str = "smoke") -> ValidationPlan:
    """Derive the validation plan for one scenario at one fidelity."""
    spec = scenario if isinstance(scenario, ScenarioSpec) else _spec.scenario(scenario)
    spec.fidelity(fidelity)  # fail early on unknown fidelities
    if spec.family == "singlehop":
        families: tuple[str, ...] = ("singlehop",)
        protocols = spec.protocols
    elif spec.family == "tree":
        families = ("tree",)
        multihop = Protocol.multihop_family()
        protocols = tuple(p for p in spec.protocols if p in multihop)
    elif spec.family == "burst_loss":
        # The parameter preset picks the product chain; both variants
        # also validate their i.i.d. anchor slice (the degenerate
        # channel must reproduce it bit for bit).
        if isinstance(_spec.base_parameters(spec), MultiHopParameters):
            families = ("multihop", "gilbert_multihop")
            multihop = Protocol.multihop_family()
            protocols = tuple(p for p in spec.protocols if p in multihop)
        else:
            families = ("singlehop", "gilbert_singlehop")
            protocols = spec.protocols
    elif spec.family == "link_flap":
        # No analytic flap model exists; parity covers the clean
        # baseline chain the faulted simulations perturb.
        families = ("multihop",)
        multihop = Protocol.multihop_family()
        protocols = tuple(p for p in spec.protocols if p in multihop)
    elif spec.family == "transient":
        # Parity covers the stationary chain the transient analysis
        # starts from (and relaxes back to); the curves themselves get
        # dedicated invariants and curve-level sim checks.
        families = ("multihop",)
        multihop = Protocol.multihop_family()
        protocols = tuple(p for p in spec.protocols if p in multihop)
    else:
        families = ("multihop",)
        if spec.family == "heterogeneous":
            families += ("heterogeneous",)
        multihop = Protocol.multihop_family()
        protocols = tuple(p for p in spec.protocols if p in multihop)
    return ValidationPlan(
        spec=spec,
        fidelity=fidelity,
        protocols=protocols,
        sim_panels=_sim_panels(spec),
        parity_families=families,
        hop_counts=_parity_hop_counts(spec),
    )


# ----------------------------------------------------------------------
# Check builders
# ----------------------------------------------------------------------


def _artifact_checks(result: ExperimentResult) -> list[CheckResult]:
    finite_points = []
    for panel in result.panels:
        values = [y for series in panel.series for y in series.y]
        values += [
            err
            for series in panel.series
            if series.y_err is not None
            for err in series.y_err
        ]
        finite = sum(1 for v in values if math.isfinite(v))
        finite_points.append(
            PointCheck(
                label=panel.name,
                expected=float(len(values)),
                observed=float(finite),
                tolerance=0.0,
                passed=finite == len(values) and values != [],
            )
        )
    checks = [
        CheckResult(
            name="artifact: finite series values",
            kind="artifact",
            passed=all(point.passed for point in finite_points),
            points=tuple(finite_points),
        )
    ]
    try:
        round_trip = ExperimentResult.from_json(result.to_json()) == result
        detail = "" if round_trip else "decoded artifact differs from the result"
    except (ValueError, KeyError) as error:
        round_trip = False
        detail = f"artifact failed to decode: {error}"
    checks.append(
        CheckResult(
            name="artifact: json round-trip lossless",
            kind="artifact",
            passed=round_trip,
            detail=detail,
        )
    )
    return checks


def _invariant_checks(plan: ValidationPlan) -> CheckResult:
    """Base-point sanity invariants on the scenario's own family."""
    spec = plan.spec
    base = _spec.base_parameters(spec)
    points: list[PointCheck] = []
    if spec.family == "singlehop":
        solutions = solve_singlehop_batch([(p, base) for p in plan.protocols])
    elif spec.family == "tree":
        topology = _INVARIANT_TOPOLOGY
        tree_base = base.replace(hops=topology.num_edges)
        solutions = solve_tree_batch(
            [(p, tree_base, topology) for p in plan.protocols]
        )
    elif spec.family == "burst_loss":
        # Invariants on the maximally bursty product chain — the
        # degenerate anchor is already covered by the parity slice.
        gilbert = GilbertElliottParameters.matched_average(base.loss_rate, 1.0)
        tasks = [(p, base, gilbert) for p in plan.protocols]
        if isinstance(base, MultiHopParameters):
            solutions = solve_gilbert_multihop_batch(tasks)
        else:
            solutions = solve_gilbert_singlehop_batch(tasks)
    else:
        solutions = solve_multihop_batch([(p, base) for p in plan.protocols])
    for protocol, solution in zip(plan.protocols, solutions):
        total = sum(solution.stationary.values())
        points.append(
            PointCheck(
                label=f"{protocol.value} sum(pi)",
                expected=1.0,
                observed=total,
                tolerance=1e-9,
                passed=abs(total - 1.0) <= 1e-9,
            )
        )
        smallest = min(solution.stationary.values())
        points.append(
            PointCheck(
                label=f"{protocol.value} min(pi) >= 0",
                expected=max(smallest, 0.0),
                observed=smallest,
                tolerance=0.0,
                passed=smallest >= 0.0,
            )
        )
        ratio = solution.inconsistency_ratio
        points.append(
            PointCheck(
                label=f"{protocol.value} I in [0,1]",
                expected=min(max(ratio, 0.0), 1.0),
                observed=ratio,
                tolerance=0.0,
                passed=0.0 <= ratio <= 1.0,
            )
        )
        lifetime = getattr(solution, "expected_receiver_lifetime", None)
        if lifetime is not None:
            points.append(
                PointCheck(
                    label=f"{protocol.value} L > 0",
                    expected=abs(lifetime),
                    observed=lifetime,
                    tolerance=0.0,
                    passed=lifetime > 0.0,
                )
            )
    if spec.family == "transient":
        points.extend(_transient_invariant_points(plan, base))
    return CheckResult(
        name="invariants @ base parameters",
        kind="invariant",
        passed=all(point.passed for point in points),
        points=tuple(points),
    )


def _transient_invariant_points(
    plan: ValidationPlan, base
) -> list[PointCheck]:
    """Curve-level invariants of a transient scenario.

    Every curve value is a probability, and every scenario's last grid
    point lies past the fault (or cold-start) window, so the final
    value must have relaxed back to the nominal chain's stationary
    consistency level.
    """
    spec = plan.spec
    profile = spec.fidelity(plan.fidelity)
    times = tuple(spec.axis("time").resolve(profile))
    points: list[PointCheck] = []
    for protocol in plan.protocols:
        curve = solve_transient_curve(
            (protocol, base, None, spec.transient.initial, spec.transient.faults, times)
        )
        low = min(curve.consistency)
        high = max(curve.consistency)
        points.append(
            PointCheck(
                label=f"{protocol.value} curve in [0,1]",
                expected=min(max(low, 0.0), 1.0),
                observed=low if low < 0.0 else high,
                tolerance=1e-9,
                passed=low >= -1e-9 and high <= 1.0 + 1e-9,
            )
        )
        model = transient_model(protocol, base)
        stationary = float(
            model.initial_vector("stationary")[model.consistent_index]
        )
        final = curve.consistency[-1]
        points.append(
            PointCheck(
                label=f"{protocol.value} final ~ stationary",
                expected=stationary,
                observed=final,
                tolerance=0.05,
                passed=abs(final - stationary) <= 0.05,
            )
        )
    return points


def _sim_model_checks(
    plan: ValidationPlan, result: ExperimentResult
) -> list[CheckResult]:
    """Pair each simulated series with its analytic twin, point by point."""
    checks: list[CheckResult] = []
    spec = plan.spec
    if spec.family == "link_flap":
        # Flap scenarios are simulation-only by design: there is no
        # analytic twin to differ from.
        return checks
    if spec.family == "transient":
        return _curve_checks(plan, result)
    for panel_spec in spec.panels:
        sim_plans = [p for p in panel_spec.plans if p.kind == "sim"]
        if not sim_plans:
            continue
        panel = result.panel(panel_spec.name)
        for sim_plan in sim_plans:
            criterion = SIM_EQUIVALENCE_CRITERIA[sim_plan.metric]
            points: list[PointCheck] = []
            for protocol in _plan_protocols(spec, sim_plan, plan.protocols):
                try:
                    model = panel.series_by_label(protocol.value)
                    sim = panel.series_by_label(
                        f"{protocol.value}{sim_plan.label_suffix}"
                    )
                except KeyError:
                    continue  # narrowed out by a protocol selection
                if model.x != sim.x:
                    # Positional pairing would silently compare the
                    # wrong operating points (and truncate the rest).
                    points.append(
                        PointCheck(
                            label=f"{protocol.value}: sim x-grid differs from model",
                            expected=float(len(model.x)),
                            observed=float(len(sim.x)),
                            tolerance=0.0,
                            passed=False,
                        )
                    )
                    continue
                errs = sim.y_err or (0.0,) * len(sim.y)
                for x, m, s, hw in zip(model.x, model.y, sim.y, errs):
                    points.append(
                        equivalence_point(
                            f"{protocol.value} @ x={x:g}", m, s, hw, criterion
                        )
                    )
            checks.append(
                CheckResult(
                    name=f"sim==model: {panel_spec.name} [{sim_plan.metric}]",
                    kind="sim_model",
                    passed=all(point.passed for point in points) and bool(points),
                    detail=(
                        f"|sim-model| <= max({criterion.ci_multiplier:g}*CI, "
                        f"{criterion.rel_tol:.0%}, {criterion.abs_floor:g})"
                    ),
                    points=tuple(points),
                )
            )
    return checks


def _curve_checks(
    plan: ValidationPlan, result: ExperimentResult
) -> list[CheckResult]:
    """Curve-level sim-vs-model checks for transient scenarios.

    Unlike the stationary differential checks, a curve may violate its
    per-point band at a bounded fraction of grid points (the
    deterministic-timer simulation steps through ramps the exponential
    model smooths over); see
    :class:`~repro.validation.equivalence.CurveCriterion`.
    """
    checks: list[CheckResult] = []
    spec = plan.spec
    criterion = CURVE_EQUIVALENCE_CRITERIA["consistency"]
    for panel_spec in spec.panels:
        sim_plans = [p for p in panel_spec.plans if p.kind == "sim"]
        if not sim_plans:
            continue
        panel = result.panel(panel_spec.name)
        for sim_plan in sim_plans:
            points: list[PointCheck] = []
            curves_pass = True
            for protocol in _plan_protocols(spec, sim_plan, plan.protocols):
                try:
                    model = panel.series_by_label(protocol.value)
                    sim = panel.series_by_label(
                        f"{protocol.value}{sim_plan.label_suffix}"
                    )
                except KeyError:
                    continue  # narrowed out by a protocol selection
                if model.x != sim.x:
                    points.append(
                        PointCheck(
                            label=f"{protocol.value}: sim time grid differs from model",
                            expected=float(len(model.x)),
                            observed=float(len(sim.x)),
                            tolerance=0.0,
                            passed=False,
                        )
                    )
                    curves_pass = False
                    continue
                errs = sim.y_err or (0.0,) * len(sim.y)
                curve_points, curve_passed = equivalence_curve(
                    protocol.value, model.x, model.y, sim.y, errs, criterion
                )
                points.extend(curve_points)
                curves_pass = curves_pass and curve_passed
            checks.append(
                CheckResult(
                    name=f"sim==model curve: {panel_spec.name} [consistency]",
                    kind="sim_model",
                    passed=curves_pass and bool(points),
                    detail=(
                        f"per point |sim-model| <= "
                        f"max({criterion.point.ci_multiplier:g}*CI, "
                        f"{criterion.point.rel_tol:.0%}, "
                        f"{criterion.point.abs_floor:g}); curve passes with "
                        f"<= {criterion.max_violation_fraction:.0%} of grid "
                        "points violating"
                    ),
                    points=tuple(points),
                )
            )
    return checks


def _plan_protocols(
    spec: ScenarioSpec, series_plan: SeriesPlan, selection: tuple[Protocol, ...]
) -> tuple[Protocol, ...]:
    pool = series_plan.protocols or spec.protocols
    return tuple(p for p in pool if p in selection)


@functools.lru_cache(maxsize=128)
def _cached_parity_slice(
    family: str,
    base,
    protocols: tuple[Protocol, ...],
    hop_counts: tuple[int, ...],
    fidelity: str,
) -> tuple[CheckResult, ...]:
    """One memoized slice of the parity matrix.

    Most scenarios share a base preset (nine single-hop scenarios all
    validate the unmodified Kazaa defaults), so ``validate all`` would
    otherwise re-solve an identical parity grid per scenario.  Keying
    by the frozen parameter dataclass dedupes the work; the returned
    ``CheckResult`` tuples are immutable, so sharing them across
    reports is safe.
    """
    if family == "singlehop":
        return tuple(singlehop_parity_checks(base, protocols, fidelity=fidelity))
    if family == "multihop":
        return tuple(
            multihop_parity_checks(base, hop_counts, protocols, fidelity=fidelity)
        ) + tuple(
            chain_backend_parity_checks(
                base, hop_counts, protocols, fidelity=fidelity
            )
        )
    if family == "tree":
        return tuple(tree_parity_checks(base, protocols, fidelity=fidelity)) + tuple(
            tree_scale_parity_checks(base, protocols, fidelity=fidelity)
        )
    if family == "gilbert_singlehop":
        return tuple(
            gilbert_singlehop_parity_checks(base, protocols, fidelity=fidelity)
        )
    if family == "gilbert_multihop":
        return tuple(
            gilbert_multihop_parity_checks(
                base, hop_counts, protocols, fidelity=fidelity
            )
        )
    return (heterogeneous_parity_check(base, protocols),)


def _parity_checks(plan: ValidationPlan) -> list[CheckResult]:
    base = _spec.base_parameters(plan.spec)
    checks: list[CheckResult] = []
    for family in plan.parity_families:
        checks.extend(
            _cached_parity_slice(
                family, base, plan.protocols, plan.hop_counts, plan.fidelity
            )
        )
    return checks


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


def execute_plan(
    plan: ValidationPlan,
    jobs: int | None = None,
    seed: int | None = None,
) -> ValidationReport:
    """Run every check of ``plan`` and package the report.

    ``jobs`` fans the scenario run (simulations included) across worker
    processes; ``seed`` overrides the simulation seed of validation
    scenarios, exactly as :func:`repro.experiments.run_scenario` does.
    """
    spec = plan.spec
    checks: list[CheckResult] = []
    try:
        result = run_scenario(spec, plan.fidelity, jobs=jobs, seed=seed)
    except Exception as error:  # noqa: BLE001 - a crash is itself a finding
        checks.append(
            CheckResult(
                name="artifact: scenario runs",
                kind="artifact",
                passed=False,
                detail=f"{type(error).__name__}: {error}",
            )
        )
        result = None
    if result is not None:
        checks.extend(_artifact_checks(result))
        checks.extend(_sim_model_checks(plan, result))
    # The deterministic check families get the same crash-is-a-finding
    # treatment: one broken scenario must fail its own report, not
    # abort a whole `validate all` sweep.
    for name, build in (
        ("invariants @ base parameters", lambda: [_invariant_checks(plan)]),
        ("parity matrix", lambda: _parity_checks(plan)),
    ):
        try:
            checks.extend(build())
        except Exception as error:  # noqa: BLE001
            checks.append(
                CheckResult(
                    name=f"{name}: runs",
                    kind="invariant" if "invariant" in name else "parity",
                    passed=False,
                    detail=f"{type(error).__name__}: {error}",
                )
            )
    return ValidationReport(
        scenario_id=spec.scenario_id,
        title=spec.title,
        fidelity=plan.fidelity,
        checks=tuple(checks),
        protocols=tuple(p.value for p in plan.protocols),
        backends=BACKENDS,
        hop_counts=plan.hop_counts,
    )


def validate_scenario(
    scenario: str | ScenarioSpec,
    fidelity: str = "smoke",
    *,
    jobs: int | None = None,
    seed: int | None = None,
) -> ValidationReport:
    """Build and execute the validation plan for one scenario."""
    return execute_plan(build_plan(scenario, fidelity), jobs=jobs, seed=seed)


def validate_all(
    fidelity: str = "smoke",
    *,
    jobs: int | None = None,
    seed: int | None = None,
) -> list[ValidationReport]:
    """Validate every registered scenario, in registry order."""
    return [
        validate_scenario(scenario_id, fidelity, jobs=jobs, seed=seed)
        for scenario_id in scenario_ids()
    ]
