"""Scenario-driven validation: sim↔model cross-checks, backend parity,
property fuzzing.

The paper's central evidence is *agreement*: CTMC predictions vs
discrete-event simulations with 95% confidence intervals (§III-A.3),
and — in this codebase — four solver backends that must reproduce one
another.  This package turns every registered
:class:`~repro.experiments.spec.ScenarioSpec` into an executable
validation plan:

* :mod:`repro.validation.plan` — derive and execute
  :class:`ValidationPlan` objects (artifact, invariant, parity and
  sim-vs-model checks per scenario);
* :mod:`repro.validation.equivalence` — Student-t equivalence margins
  for the differential simulation checks;
* :mod:`repro.validation.parity` — the dense/template/batched/sparse
  backend parity matrix (exact where the repo guarantees bit parity,
  tolerance-bounded for splu);
* :mod:`repro.validation.report` — the versioned
  :class:`ValidationReport` artifact (JSON + text table);
* :mod:`repro.validation.strategies` — Hypothesis strategies for the
  property-fuzzing test suite (requires the ``hypothesis`` dev extra;
  not imported here so the package stays dependency-light).

Entry points: ``repro-signaling validate [scenario|all]`` on the CLI,
:func:`repro.api.validate_scenario` as a library call:

>>> from repro.validation import validate_scenario
>>> report = validate_scenario("fig4", fidelity="smoke")
>>> report.passed
True
>>> sorted({check.kind for check in report.checks})
['artifact', 'invariant', 'parity']
>>> report.coverage().backends
('dense', 'template', 'batched', 'sparse', 'structured', 'lumped', 'iterative')

Reports render as text tables or versioned JSON artifacts
(``schema_version`` 1) that round-trip losslessly:

>>> from repro.validation import ValidationReport
>>> ValidationReport.from_json(report.to_json()) == report
True

See ``docs/validation.md`` for the check families, the report schema
and how to interpret per-point evidence.
"""

from repro.validation.equivalence import (
    SIM_EQUIVALENCE_CRITERIA,
    EquivalenceCriterion,
    equivalence_point,
)
from repro.validation.parity import (
    BACKENDS,
    gilbert_multihop_parity_checks,
    gilbert_parity_channels,
    gilbert_singlehop_parity_checks,
    heterogeneous_parity_check,
    multihop_parity_checks,
    parity_parameter_points,
    singlehop_parity_checks,
    tree_parity_checks,
)
from repro.validation.plan import (
    ValidationPlan,
    build_plan,
    execute_plan,
    validate_all,
    validate_scenario,
)
from repro.validation.report import (
    VALIDATION_SCHEMA_VERSION,
    CheckResult,
    Coverage,
    PointCheck,
    ValidationReport,
)

__all__ = [
    "BACKENDS",
    "CheckResult",
    "Coverage",
    "EquivalenceCriterion",
    "PointCheck",
    "SIM_EQUIVALENCE_CRITERIA",
    "VALIDATION_SCHEMA_VERSION",
    "ValidationPlan",
    "ValidationReport",
    "build_plan",
    "equivalence_point",
    "execute_plan",
    "gilbert_multihop_parity_checks",
    "gilbert_parity_channels",
    "gilbert_singlehop_parity_checks",
    "heterogeneous_parity_check",
    "multihop_parity_checks",
    "parity_parameter_points",
    "singlehop_parity_checks",
    "tree_parity_checks",
    "validate_all",
    "validate_scenario",
]
