"""Hypothesis strategies for property-based fuzzing through ``repro.api``.

Importing this module requires `hypothesis <https://hypothesis.works>`_
(a dev-only dependency; the rest of :mod:`repro.validation` stays
importable without it).  The strategies generate *valid* parameter
overrides — dictionaries that :func:`repro.experiments.spec.apply_overrides`
accepts against the paper's presets — so property tests explore the
model's legal input space rather than its validation errors, plus raw
protocol/series generators for artifact round-trip fuzzing.

The ranges are deliberately wider than the paper's operating points
(loss up to 50%, timers from tens of milliseconds to minutes) but stay
inside the regime where the chains remain well-conditioned, so every
generated point must solve cleanly; a solver failure under these
strategies is a bug, not an out-of-range input.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.protocols import Protocol
from repro.experiments.runner import ExperimentResult, Panel, Series

__all__ = [
    "multihop_overrides",
    "protocols",
    "series",
    "singlehop_overrides",
]


def _rate(low: float, high: float) -> st.SearchStrategy[float]:
    return st.floats(
        min_value=low, max_value=high, allow_nan=False, allow_infinity=False
    )


def protocols() -> st.SearchStrategy[Protocol]:
    """Any of the five protocol variants."""
    return st.sampled_from(list(Protocol))


def multihop_protocols() -> st.SearchStrategy[Protocol]:
    """The protocols modeled in the multi-hop analysis."""
    return st.sampled_from(list(Protocol.multihop_family()))


def singlehop_overrides() -> st.SearchStrategy[dict[str, float]]:
    """Valid field overrides for the single-hop (Kazaa) preset."""
    return st.fixed_dictionaries(
        {},
        optional={
            "loss_rate": _rate(0.0, 0.5),
            "delay": _rate(1e-3, 0.5),
            "update_rate": _rate(1e-4, 1.0),
            "removal_rate": _rate(1e-5, 0.05),
            "refresh_interval": _rate(0.5, 60.0),
            "timeout_interval": _rate(1.0, 300.0),
            "retransmission_interval": _rate(0.02, 2.0),
            "external_false_signal_rate": _rate(0.0, 1e-2),
        },
    )


def multihop_overrides(max_hops: int = 10) -> st.SearchStrategy[dict[str, float]]:
    """Valid field overrides for the multi-hop (reservation) preset.

    ``max_hops`` bounds the chain size so each fuzzed point solves in
    milliseconds (states grow linearly with hops).
    """
    return st.fixed_dictionaries(
        {},
        optional={
            "hops": st.integers(min_value=1, max_value=max_hops),
            "loss_rate": _rate(0.0, 0.5),
            "delay": _rate(1e-3, 0.5),
            "update_rate": _rate(1e-3, 1.0),
            "refresh_interval": _rate(0.5, 60.0),
            "timeout_interval": _rate(1.0, 300.0),
            "retransmission_interval": _rate(0.02, 2.0),
        },
    )


def _finite_floats() -> st.SearchStrategy[float]:
    return st.floats(allow_nan=False, allow_infinity=False, width=64)


def series(max_points: int = 6) -> st.SearchStrategy[Series]:
    """Arbitrary finite-valued series (for artifact round-trip fuzzing)."""

    def build(label: str, xs: list[float], ys: list[float], with_err: bool):
        n = min(len(xs), len(ys))
        y_err = tuple(abs(y) for y in ys[:n]) if with_err else None
        return Series(label, tuple(xs[:n]), tuple(ys[:n]), y_err)

    return st.builds(
        build,
        label=st.text(min_size=1, max_size=12),
        xs=st.lists(_finite_floats(), min_size=1, max_size=max_points),
        ys=st.lists(_finite_floats(), min_size=1, max_size=max_points),
        with_err=st.booleans(),
    )


def experiment_results(max_series: int = 3) -> st.SearchStrategy[ExperimentResult]:
    """Arbitrary one-panel results whose JSON artifact must round-trip."""

    def build(name: str, all_series: list[Series]) -> ExperimentResult:
        panel = Panel(
            name=name or "p",
            x_label="x",
            y_label="y",
            series=tuple(all_series),
            shared_x=False,
        )
        return ExperimentResult("fuzz", "fuzzed result", (panel,))

    return st.builds(
        build,
        name=st.text(max_size=12),
        all_series=st.lists(series(), min_size=1, max_size=max_series),
    )
