"""Backend parity matrix: one chain, every solver path, asserted agreement.

The repo ships four ways to solve the same CTMC point:

``dense``
    the per-point reference models (:class:`SingleHopModel`,
    :class:`MultiHopModel`, :class:`HeterogeneousMultiHopModel`) on the
    per-chain dense LAPACK path — the ground truth;
``template``
    the compiled chain templates (:mod:`repro.core.templates`), which
    batch points sharing a chain structure into stacked LAPACK solves;
``batched``
    the raw batched kernels
    (:func:`~repro.core.markov.batched_stationary_dense`,
    :func:`~repro.core.markov.batched_absorption_times_dense`) applied
    to the reference chain's own generator matrices;
``sparse``
    the per-chain ``scipy.sparse`` splu path (what ``solver="auto"``
    switches to above the crossover state count);
``lumped``
    the exact orbit-lumping of isomorphic sibling subtrees
    (:mod:`repro.core.multihop.lumping`) — mathematically exact, but
    aggregation reorders float additions, so it is held to tolerance
    against the direct enumeration (and to bit parity against its own
    compiled template);
``iterative``
    the ILU-preconditioned GMRES/BiCGSTAB path for raw tree spaces
    beyond the direct cap — tolerance class by construction.

The parity policy matches the repo's fast-path guarantees: the dense,
template and batched paths must agree **exactly** (``==``, bit parity —
they run the same ``dgesv`` on the same matrices), while the sparse,
lumped and iterative paths must agree within a tight tolerance (a
different factorization cannot promise the same last bits).  The matrix
spans protocols × hop counts × parameter points (the point list grows
with fidelity).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.core import templates as _templates
from repro.core.markov import (
    SPARSE_STATE_THRESHOLD,
    ContinuousTimeMarkovChain,
    batched_absorption_times_dense,
    batched_stationary_dense,
)
from repro.core.multihop import lumping as _lumping
from repro.core.multihop.tree_states import MAX_ENUMERATED_TREE_STATES
from repro.core.multihop.heterogeneous import (
    HeterogeneousHop,
    HeterogeneousMultiHopModel,
    hops_from_parameters,
)
from repro.core.gilbert.model import GilbertMultiHopModel, GilbertSingleHopModel
from repro.core.multihop.model import MultiHopModel
from repro.core.multihop.topology import Topology
from repro.core.multihop.tree_model import TreeModel
from repro.core.parameters import MultiHopParameters, SignalingParameters
from repro.core.protocols import Protocol
from repro.core.singlehop.model import SingleHopModel
from repro.core.singlehop.states import SingleHopState as S
from repro.faults.gilbert import GilbertElliottParameters
from repro.validation.report import CheckResult, PointCheck

__all__ = [
    "BACKENDS",
    "PARITY_CLASSES",
    "SPARSE_REL_TOL",
    "SPARSE_ABS_TOL",
    "STRUCTURED_CROSSOVER_HOPS",
    "chain_backend_parity_checks",
    "gilbert_multihop_parity_checks",
    "gilbert_parity_channels",
    "gilbert_singlehop_parity_checks",
    "heterogeneous_parity_check",
    "multihop_parity_checks",
    "parity_parameter_points",
    "singlehop_parity_checks",
    "tree_parity_checks",
    "tree_parity_topologies",
    "tree_scale_parity_checks",
]

#: The solver paths the matrix covers, reference first.
BACKENDS = (
    "dense",
    "template",
    "batched",
    "sparse",
    "structured",
    "lumped",
    "iterative",
)

#: Parity class of every public solver backend entry point
#: (``core/templates.py``, ``core/markov.py``): ``"exact"`` paths must
#: reproduce the dense reference bit for bit (``==``), ``"tolerance"``
#: paths within the sparse bound below.  reprolint rule RL004
#: cross-references this dict against the entry points actually
#: defined, so a new backend cannot ship without declaring — and being
#: held to — its parity class here.
PARITY_CLASSES: dict[str, str] = {
    "solve_singlehop_tasks": "exact",
    "solve_multihop_tasks": "exact",
    "solve_heterogeneous_tasks": "exact",
    "solve_tree_tasks": "exact",
    "solve_gilbert_singlehop_tasks": "exact",
    "solve_gilbert_multihop_tasks": "exact",
    "batched_stationary_dense": "exact",
    "batched_absorption_times_dense": "exact",
    # Uniformization truncates a Poisson series, so transient curves
    # match the dense expm oracle to tolerance, never bit-exactly.
    "solve_transient_point": "tolerance",
    "solve_transient_curve": "tolerance",
    # Orbit lumping is mathematically exact (proved in rational
    # arithmetic by tests/core/test_tree_lumping.py) but aggregates
    # float additions in a different order than the direct enumeration;
    # the Krylov backend bounds a residual instead of factorizing.
    # Both therefore declare tolerance, never bit parity.
    "solve_tree_lumped_tasks": "tolerance",
    "solve_tree_iterative_tasks": "tolerance",
    # The block-Thomas chain kernel eliminates level by level, an
    # entirely different operation order than any LU factorization;
    # exact in exact arithmetic, tolerance in floats.
    "batched_stationary_chain": "tolerance",
    "solve_multihop_structured_tasks": "tolerance",
    "solve_heterogeneous_structured_tasks": "tolerance",
}

#: Agreement bound for the sparse (splu) backend against the dense
#: reference: ``|a - b| <= SPARSE_ABS_TOL + SPARSE_REL_TOL * |a|``.
SPARSE_REL_TOL = 1e-8
SPARSE_ABS_TOL = 1e-12


def parity_parameter_points(base, fidelity: str) -> list[tuple[str, object]]:
    """Labelled parameter points for one fidelity.

    ``smoke`` checks the base preset only; ``fast`` adds lossy-channel
    variants; ``full`` additionally stresses the timer couplings.  All
    variants stay in the regime where ``solver="auto"`` is dense, so
    the exact-parity assertions compare like with like.
    """
    points: list[tuple[str, object]] = [("base", base)]
    if fidelity == "smoke":
        return points
    points += [
        ("loss=0.05", base.replace(loss_rate=0.05)),
        ("loss=0.2", base.replace(loss_rate=0.2)),
    ]
    if fidelity == "fast":
        return points
    points += [
        ("lossless", base.replace(loss_rate=0.0)),
        ("R=1", base.with_coupled_timers(1.0)),
        ("R=30", base.with_coupled_timers(30.0)),
        ("delay=0.3", base.replace(delay=0.3, retransmission_interval=1.2)),
    ]
    return points


def _state_label(state) -> str:
    """Compact state name for point labels (enum values over reprs)."""
    return str(getattr(state, "value", state))


def _exact_point(label: str, expected: float, observed: float) -> PointCheck:
    return PointCheck(
        label=label,
        expected=expected,
        observed=observed,
        tolerance=0.0,
        passed=expected == observed,
    )


def _close_point(label: str, expected: float, observed: float) -> PointCheck:
    tolerance = SPARSE_ABS_TOL + SPARSE_REL_TOL * abs(expected)
    return PointCheck(
        label=label,
        expected=expected,
        observed=observed,
        tolerance=tolerance,
        passed=math.isclose(
            expected, observed, rel_tol=SPARSE_REL_TOL, abs_tol=SPARSE_ABS_TOL
        ),
    )


def _check(name: str, points: list[PointCheck], detail: str = "") -> CheckResult:
    return CheckResult(
        name=name,
        kind="parity",
        passed=all(point.passed for point in points),
        detail=detail,
        points=tuple(points),
    )


def _sparse_stationary_points(
    chain: ContinuousTimeMarkovChain, reference: dict, label: str
) -> list[PointCheck]:
    """Re-solve ``chain`` through splu and compare the distribution."""
    sparse_chain = ContinuousTimeMarkovChain(
        chain.states, chain.rates, solver="sparse"
    )
    sparse_pi = sparse_chain.stationary_distribution()
    return [
        _close_point(
            f"{label} pi[{_state_label(state)}]", reference[state], sparse_pi[state]
        )
        for state in chain.states
    ]


def _batched_stationary_points(
    chain: ContinuousTimeMarkovChain, reference: dict, label: str
) -> list[PointCheck]:
    """Push the chain's own generator through the batched kernel."""
    q = chain.generator_matrix()
    pi, bad = batched_stationary_dense(q[None])
    if bad[0]:
        return [
            PointCheck(
                label=f"{label} batched solve rejected",
                expected=1.0,
                observed=0.0,
                tolerance=0.0,
                passed=False,
            )
        ]
    return [
        _exact_point(
            f"{label} pi[{_state_label(state)}]", reference[state], float(pi[0, i])
        )
        for i, state in enumerate(chain.states)
    ]


def singlehop_parity_checks(
    params: SignalingParameters,
    protocols: Sequence[Protocol] = tuple(Protocol),
    fidelity: str = "smoke",
) -> list[CheckResult]:
    """The single-hop slice of the parity matrix."""
    checks: list[CheckResult] = []
    for protocol in protocols:
        template_points: list[PointCheck] = []
        batched_points: list[PointCheck] = []
        sparse_points: list[PointCheck] = []
        for label, point_params in parity_parameter_points(params, fidelity):
            model = SingleHopModel(protocol, point_params)
            reference = model.solve()
            template = _templates.solve_singlehop_tasks(
                [(protocol, point_params)]
            )[0]
            for metric in (
                "inconsistency_ratio",
                "expected_receiver_lifetime",
                "message_rate",
                "normalized_message_rate",
            ):
                template_points.append(
                    _exact_point(
                        f"{label} {metric}",
                        getattr(reference, metric),
                        getattr(template, metric),
                    )
                )
            recurrent = model.recurrent_chain()
            batched_points.extend(
                _batched_stationary_points(recurrent, reference.stationary, label)
            )
            batched_points.append(
                _batched_lifetime_point(model, reference, label)
            )
            sparse_points.extend(
                _sparse_stationary_points(recurrent, reference.stationary, label)
            )
        checks.append(
            _check(
                f"singlehop {protocol.value}: dense==template",
                template_points,
                detail="compiled-template metrics, exact",
            )
        )
        checks.append(
            _check(
                f"singlehop {protocol.value}: dense==batched",
                batched_points,
                detail="stacked-LAPACK kernels, exact",
            )
        )
        checks.append(
            _check(
                f"singlehop {protocol.value}: dense~sparse",
                sparse_points,
                detail=f"splu within rel {SPARSE_REL_TOL:g}",
            )
        )
    return checks


def _batched_lifetime_point(
    model: SingleHopModel, reference, label: str
) -> PointCheck:
    """Batched absorption kernel vs the reference receiver lifetime."""
    transient_chain = model.transient_chain()
    states = transient_chain.states
    q = transient_chain.generator_matrix()
    transient = [i for i, state in enumerate(states) if state is not S.ABSORBED]
    q_tt = q[np.ix_(transient, transient)]
    times, bad = batched_absorption_times_dense(q_tt[None])
    if bad[0]:
        return PointCheck(
            label=f"{label} batched absorption rejected",
            expected=1.0,
            observed=0.0,
            tolerance=0.0,
            passed=False,
        )
    start = transient.index(list(states).index(S.S10_FAST))
    return _exact_point(
        f"{label} expected_receiver_lifetime",
        reference.expected_receiver_lifetime,
        float(times[0, start]),
    )


def multihop_parity_checks(
    params: MultiHopParameters,
    hop_counts: Sequence[int],
    protocols: Sequence[Protocol] = Protocol.multihop_family(),
    fidelity: str = "smoke",
) -> list[CheckResult]:
    """The homogeneous multi-hop slice of the parity matrix."""
    checks: list[CheckResult] = []
    for protocol in protocols:
        template_points: list[PointCheck] = []
        batched_points: list[PointCheck] = []
        sparse_points: list[PointCheck] = []
        for hops in hop_counts:
            hop_base = params.replace(hops=int(hops))
            for label, point_params in parity_parameter_points(hop_base, fidelity):
                label = f"N={hops} {label}"
                model = MultiHopModel(protocol, point_params)
                reference = model.solve()
                template = _templates.solve_multihop_tasks(
                    [(protocol, point_params)]
                )[0]
                for metric in ("inconsistency_ratio", "message_rate"):
                    template_points.append(
                        _exact_point(
                            f"{label} {metric}",
                            getattr(reference, metric),
                            getattr(template, metric),
                        )
                    )
                chain = model.chain()
                batched_points.extend(
                    _batched_stationary_points(chain, reference.stationary, label)
                )
                sparse_points.extend(
                    _sparse_stationary_points(chain, reference.stationary, label)
                )
        hop_list = ",".join(str(h) for h in hop_counts)
        checks.append(
            _check(
                f"multihop {protocol.value}: dense==template",
                template_points,
                detail=f"hops {hop_list}, exact",
            )
        )
        checks.append(
            _check(
                f"multihop {protocol.value}: dense==batched",
                batched_points,
                detail=f"hops {hop_list}, exact",
            )
        )
        checks.append(
            _check(
                f"multihop {protocol.value}: dense~sparse",
                sparse_points,
                detail=f"hops {hop_list}, splu within rel {SPARSE_REL_TOL:g}",
            )
        )
    return checks


#: Unary chain lengths for the tree==chain reduction slice.
TREE_CHAIN_HOPS = (3, 8)

#: Metrics compared exactly between tree solver paths.
_TREE_METRICS = (
    "inconsistency_ratio",
    "message_rate",
    "mean_leaf_inconsistency",
    "fanout_weighted_inconsistency",
)


def tree_parity_topologies(fidelity: str = "smoke") -> list[tuple[str, Topology]]:
    """Labelled non-chain tree shapes for one fidelity.

    ``smoke`` covers one of each structural kind (pure fan-out,
    balanced, skewed); ``fast``/``full`` widen and deepen them while
    staying in the dense regime so exact parity compares like with
    like.
    """
    shapes = [
        ("star3", Topology.star(3)),
        ("binary2", Topology.kary(2, 2)),
        ("skewed3", Topology.skewed(3)),
    ]
    if fidelity == "smoke":
        return shapes
    shapes.append(("broom2x3", Topology.broom(2, 3)))
    if fidelity == "fast":
        return shapes
    shapes.append(("star4", Topology.star(4)))
    shapes.append(("skewed4", Topology.skewed(4)))
    return shapes


def tree_parity_checks(
    params: MultiHopParameters,
    protocols: Sequence[Protocol] = Protocol.multihop_family(),
    fidelity: str = "smoke",
) -> list[CheckResult]:
    """The tree (multicast) slice of the parity matrix.

    Four assertions per protocol:

    * **unary==chain** — the tree model on ``Topology.chain(N)`` must
      reproduce :class:`MultiHopModel` *bit for bit*: stationary
      distribution state by state (the canonical tree state order maps
      1:1 onto the chain order), inconsistency ratio, message rate and
      the per-node (= per-hop) inconsistency profile;
    * **dense==template** — the compiled tree templates agree exactly
      with the per-point dense reference on every shape and metric;
    * **dense==batched** — the stacked-LAPACK kernel applied to the
      reference tree generator reproduces the stationary distribution
      exactly;
    * **dense~sparse** — the splu path agrees within the repo's sparse
      tolerance.
    """
    checks: list[CheckResult] = []
    for protocol in protocols:
        unary_points: list[PointCheck] = []
        for hops in TREE_CHAIN_HOPS:
            chain_params = params.replace(hops=int(hops))
            topology = Topology.chain(int(hops))
            for label, point_params in parity_parameter_points(chain_params, fidelity):
                label = f"N={hops} {label}"
                chain_reference = MultiHopModel(protocol, point_params).solve()
                tree = TreeModel(protocol, point_params, topology).solve()
                # Guard the positional mapping: a state-count mismatch
                # is exactly the divergence this check exists to catch,
                # and zip() would otherwise truncate it silently.
                unary_points.append(
                    _exact_point(
                        f"{label} state count",
                        float(len(chain_reference.stationary)),
                        float(len(tree.stationary)),
                    )
                )
                for (chain_state, expected), observed in zip(
                    chain_reference.stationary.items(), tree.stationary.values()
                ):
                    unary_points.append(
                        _exact_point(
                            f"{label} pi[{chain_state}]", expected, observed
                        )
                    )
                unary_points.append(
                    _exact_point(
                        f"{label} inconsistency_ratio",
                        chain_reference.inconsistency_ratio,
                        tree.inconsistency_ratio,
                    )
                )
                unary_points.append(
                    _exact_point(
                        f"{label} message_rate",
                        chain_reference.message_rate,
                        tree.message_rate,
                    )
                )
                for hop in range(1, int(hops) + 1):
                    unary_points.append(
                        _exact_point(
                            f"{label} hop_inconsistency({hop})",
                            chain_reference.hop_inconsistency(hop),
                            tree.node_inconsistency(hop),
                        )
                    )
        checks.append(
            _check(
                f"tree {protocol.value}: unary==chain",
                unary_points,
                detail=f"fan-out-1 trees vs Fig. 15/16 chains, N={TREE_CHAIN_HOPS}, exact",
            )
        )

        template_points: list[PointCheck] = []
        batched_points: list[PointCheck] = []
        sparse_points: list[PointCheck] = []
        for shape, topology in tree_parity_topologies(fidelity):
            shape_params = params.replace(hops=topology.num_edges)
            for label, point_params in parity_parameter_points(shape_params, fidelity):
                label = f"{shape} {label}"
                model = TreeModel(protocol, point_params, topology)
                reference = model.solve()
                template = _templates.solve_tree_tasks(
                    [(protocol, point_params, topology)]
                )[0]
                for metric in _TREE_METRICS:
                    template_points.append(
                        _exact_point(
                            f"{label} {metric}",
                            getattr(reference, metric),
                            getattr(template, metric),
                        )
                    )
                chain = model.chain()
                batched_points.extend(
                    _batched_stationary_points(chain, reference.stationary, label)
                )
                sparse_points.extend(
                    _sparse_stationary_points(chain, reference.stationary, label)
                )
        shape_list = ",".join(shape for shape, _ in tree_parity_topologies(fidelity))
        checks.append(
            _check(
                f"tree {protocol.value}: dense==template",
                template_points,
                detail=f"shapes {shape_list}, exact",
            )
        )
        checks.append(
            _check(
                f"tree {protocol.value}: dense==batched",
                batched_points,
                detail=f"shapes {shape_list}, exact",
            )
        )
        checks.append(
            _check(
                f"tree {protocol.value}: dense~sparse",
                sparse_points,
                detail=f"shapes {shape_list}, splu within rel {SPARSE_REL_TOL:g}",
            )
        )
    return checks


def tree_scale_parity_checks(
    params: MultiHopParameters,
    protocols: Sequence[Protocol] = Protocol.multihop_family(),
    fidelity: str = "smoke",
) -> list[CheckResult]:
    """The tree-scale slice: lumped and iterative backends vs the truth.

    Per protocol:

    * **lumped~dense (below cap)** — the orbit-lumped solve reproduces
      the direct enumeration's metrics within the sparse tolerance on
      shapes small enough to solve both ways (the lumping itself is
      *exact*; only float summation order differs, see the rational
      proof in ``tests/core/test_tree_lumping.py``);
    * **lumped model==template** — the compiled lumped template agrees
      with :class:`~repro.core.multihop.lumping.LumpedTreeModel` bit
      for bit (same floats, same accumulation order), including on
      above-cap shapes like ``star8`` (6561 raw states, 45 orbits);
    * **iterative~dense (below cap)** — the ILU/GMRES backend agrees
      with the dense reference within tolerance.

    ``fast`` adds the cross-backend check above the old 4096-state
    wall: ``star8`` solved via lumping and via raw-space iteration must
    agree within the sparse tolerance (no exact path exists up there to
    referee — the two scale backends referee each other).  ``full``
    repeats it on the depth-3 binary tree (15129 raw states → 741
    orbits), the shape the wall was named after.
    """
    checks: list[CheckResult] = []
    small_shapes = [
        ("star3", Topology.star(3)),
        ("binary2", Topology.kary(2, 2)),
    ]
    if fidelity != "smoke":
        small_shapes.append(("broom2x3", Topology.broom(2, 3)))
    for protocol in protocols:
        lumped_points: list[PointCheck] = []
        template_points: list[PointCheck] = []
        iterative_points: list[PointCheck] = []
        for shape, topology in small_shapes:
            point_params = params.replace(hops=topology.num_edges)
            reference = TreeModel(protocol, point_params, topology).solve()
            lumped = _lumping.LumpedTreeModel(
                protocol, point_params, topology
            ).solve()
            iterative = TreeModel(
                protocol, point_params, topology, solver="iterative"
            ).solve()
            for metric in _TREE_METRICS:
                lumped_points.append(
                    _close_point(
                        f"{shape} {metric}",
                        getattr(reference, metric),
                        getattr(lumped, metric),
                    )
                )
                iterative_points.append(
                    _close_point(
                        f"{shape} {metric}",
                        getattr(reference, metric),
                        getattr(iterative, metric),
                    )
                )
        template_shapes = small_shapes + [("star8", Topology.star(8))]
        for shape, topology in template_shapes:
            point_params = params.replace(hops=topology.num_edges)
            lumped = _lumping.LumpedTreeModel(
                protocol, point_params, topology
            ).solve()
            template = _templates.solve_tree_lumped_tasks(
                [(protocol, point_params, topology)]
            )[0]
            for metric in _TREE_METRICS:
                template_points.append(
                    _exact_point(
                        f"{shape} {metric}",
                        getattr(lumped, metric),
                        getattr(template, metric),
                    )
                )
        shape_list = ",".join(shape for shape, _ in small_shapes)
        checks.append(
            _check(
                f"tree-scale {protocol.value}: lumped~dense",
                lumped_points,
                detail=f"shapes {shape_list}, within rel {SPARSE_REL_TOL:g}",
            )
        )
        checks.append(
            _check(
                f"tree-scale {protocol.value}: lumped==template",
                template_points,
                detail="lumped model vs compiled lumped template, exact",
            )
        )
        checks.append(
            _check(
                f"tree-scale {protocol.value}: iterative~dense",
                iterative_points,
                detail=f"shapes {shape_list}, within rel {SPARSE_REL_TOL:g}",
            )
        )
    if fidelity != "smoke":
        cross_shapes = [("star8", Topology.star(8))]
        if fidelity == "full":
            cross_shapes.append(("binary3", Topology.kary(2, 3)))
        cross_points: list[PointCheck] = []
        for shape, topology in cross_shapes:
            point_params = params.replace(hops=topology.num_edges)
            lumped = _lumping.LumpedTreeModel(
                Protocol.SS, point_params, topology
            ).solve()
            iterative = TreeModel(
                Protocol.SS,
                point_params,
                topology,
                max_states=MAX_ENUMERATED_TREE_STATES,
                solver="iterative",
            ).solve()
            for metric in _TREE_METRICS:
                cross_points.append(
                    _close_point(
                        f"{shape} {metric}",
                        getattr(lumped, metric),
                        getattr(iterative, metric),
                    )
                )
        shape_list = ",".join(shape for shape, _ in cross_shapes)
        checks.append(
            _check(
                "tree-scale ss: lumped~iterative above the direct cap",
                cross_points,
                detail=(
                    f"shapes {shape_list} beyond MAX_TREE_STATES, the two "
                    f"scale backends within rel {SPARSE_REL_TOL:g}"
                ),
            )
        )
    return checks


def gilbert_parity_channels(
    base, fidelity: str = "smoke"
) -> list[tuple[str, GilbertElliottParameters]]:
    """Labelled Gilbert-Elliott channels for one fidelity.

    All channels hold the base preset's average loss; the degenerate
    channel (burstiness 0) anchors the i.i.d. reduction, the bursty
    ones exercise the real product chains.
    """
    average = base.loss_rate
    channels = [
        ("degenerate", GilbertElliottParameters.matched_average(average, 0.0)),
        ("bursty", GilbertElliottParameters.matched_average(average, 1.0)),
    ]
    if fidelity == "smoke":
        return channels
    channels.append(
        ("half-burst", GilbertElliottParameters.matched_average(average, 0.5))
    )
    if fidelity == "fast":
        return channels
    channels.append(
        (
            "slow-burst",
            GilbertElliottParameters.matched_average(
                average, 1.0, mean_bad_duration=10.0
            ),
        )
    )
    return channels


_GILBERT_SINGLEHOP_METRICS = (
    "inconsistency_ratio",
    "expected_receiver_lifetime",
    "message_rate",
    "normalized_message_rate",
)


def gilbert_singlehop_parity_checks(
    params: SignalingParameters,
    protocols: Sequence[Protocol] = tuple(Protocol),
    fidelity: str = "smoke",
) -> list[CheckResult]:
    """The single-hop Gilbert-Elliott slice of the parity matrix.

    Three assertions per protocol:

    * **dense==template** — the compiled product-chain templates agree
      exactly with the per-point :class:`GilbertSingleHopModel`;
    * **degenerate==iid** — the burstiness-0 channel reproduces the
      i.i.d. :class:`SingleHopModel` *bit for bit* (the models promise
      verbatim metric floats, not merely close ones);
    * **dense~sparse** — the bursty product chain re-solved through
      splu agrees within the repo's sparse tolerance.
    """
    checks: list[CheckResult] = []
    for protocol in protocols:
        template_points: list[PointCheck] = []
        degenerate_points: list[PointCheck] = []
        sparse_points: list[PointCheck] = []
        for label, gilbert in gilbert_parity_channels(params, fidelity):
            model = GilbertSingleHopModel(protocol, params, gilbert)
            reference = model.solve()
            template = _templates.solve_gilbert_singlehop_tasks(
                [(protocol, params, gilbert)]
            )[0]
            for metric in _GILBERT_SINGLEHOP_METRICS:
                template_points.append(
                    _exact_point(
                        f"{label} {metric}",
                        getattr(reference, metric),
                        getattr(template, metric),
                    )
                )
            if gilbert.is_degenerate:
                iid = SingleHopModel(
                    protocol, params.replace(loss_rate=gilbert.loss_good)
                ).solve()
                for metric in _GILBERT_SINGLEHOP_METRICS:
                    degenerate_points.append(
                        _exact_point(
                            f"{label} {metric}",
                            getattr(iid, metric),
                            getattr(reference, metric),
                        )
                    )
                for key, expected in iid.message_breakdown.items():
                    degenerate_points.append(
                        _exact_point(
                            f"{label} breakdown[{key}]",
                            expected,
                            reference.message_breakdown.get(key, float("nan")),
                        )
                    )
            else:
                sparse_points.extend(
                    _sparse_stationary_points(
                        model.chain(), reference.stationary, label
                    )
                )
        checks.append(
            _check(
                f"gilbert singlehop {protocol.value}: dense==template",
                template_points,
                detail="compiled product-chain templates, exact",
            )
        )
        checks.append(
            _check(
                f"gilbert singlehop {protocol.value}: degenerate==iid",
                degenerate_points,
                detail="burstiness-0 channel vs the i.i.d. model, exact",
            )
        )
        checks.append(
            _check(
                f"gilbert singlehop {protocol.value}: dense~sparse",
                sparse_points,
                detail=f"splu within rel {SPARSE_REL_TOL:g}",
            )
        )
    return checks


def gilbert_multihop_parity_checks(
    params: MultiHopParameters,
    hop_counts: Sequence[int],
    protocols: Sequence[Protocol] = Protocol.multihop_family(),
    fidelity: str = "smoke",
) -> list[CheckResult]:
    """The multi-hop Gilbert-Elliott slice of the parity matrix.

    Mirrors :func:`gilbert_singlehop_parity_checks` on the path-wide
    product chain: dense==template exactly, the degenerate channel
    reproduces :class:`MultiHopModel` bit for bit, and the bursty
    chain's splu solve stays within the sparse tolerance.
    """
    checks: list[CheckResult] = []
    for protocol in protocols:
        template_points: list[PointCheck] = []
        degenerate_points: list[PointCheck] = []
        sparse_points: list[PointCheck] = []
        for hops in hop_counts:
            hop_params = params.replace(hops=int(hops))
            for label, gilbert in gilbert_parity_channels(hop_params, fidelity):
                label = f"N={hops} {label}"
                model = GilbertMultiHopModel(protocol, hop_params, gilbert)
                reference = model.solve()
                template = _templates.solve_gilbert_multihop_tasks(
                    [(protocol, hop_params, gilbert)]
                )[0]
                for metric in ("inconsistency_ratio", "message_rate"):
                    template_points.append(
                        _exact_point(
                            f"{label} {metric}",
                            getattr(reference, metric),
                            getattr(template, metric),
                        )
                    )
                if gilbert.is_degenerate:
                    iid = MultiHopModel(
                        protocol, hop_params.replace(loss_rate=gilbert.loss_good)
                    ).solve()
                    for metric in ("inconsistency_ratio", "message_rate"):
                        degenerate_points.append(
                            _exact_point(
                                f"{label} {metric}",
                                getattr(iid, metric),
                                getattr(reference, metric),
                            )
                        )
                    # Hop profiles are *recomputed* from the product-form
                    # stationary distribution (channel weights re-summed),
                    # so they are close, not verbatim copies.
                    for hop in range(1, int(hops) + 1):
                        degenerate_points.append(
                            _close_point(
                                f"{label} hop_inconsistency({hop})",
                                iid.hop_inconsistency(hop),
                                reference.hop_inconsistency(hop),
                            )
                        )
                else:
                    sparse_points.extend(
                        _sparse_stationary_points(
                            model.chain(), reference.stationary, label
                        )
                    )
        hop_list = ",".join(str(h) for h in hop_counts)
        checks.append(
            _check(
                f"gilbert multihop {protocol.value}: dense==template",
                template_points,
                detail=f"hops {hop_list}, exact",
            )
        )
        checks.append(
            _check(
                f"gilbert multihop {protocol.value}: degenerate==iid",
                degenerate_points,
                detail=f"hops {hop_list}, burstiness-0 vs the i.i.d. model, exact",
            )
        )
        checks.append(
            _check(
                f"gilbert multihop {protocol.value}: dense~sparse",
                sparse_points,
                detail=f"hops {hop_list}, splu within rel {SPARSE_REL_TOL:g}",
            )
        )
    return checks


def _congested_profile(
    params: MultiHopParameters,
) -> tuple[HeterogeneousHop, ...]:
    """A deterministic non-uniform hop vector: every 4th link is lossy."""
    uniform = hops_from_parameters(params)
    return tuple(
        HeterogeneousHop(
            loss_rate=min(0.5, hop.loss_rate * 5) if i % 4 == 3 else hop.loss_rate,
            delay=hop.delay,
        )
        for i, hop in enumerate(uniform)
    )


def heterogeneous_parity_check(
    params: MultiHopParameters,
    protocols: Sequence[Protocol] = Protocol.multihop_family(),
) -> CheckResult:
    """Heterogeneous template path vs the per-point reference model.

    Covers both the uniform hop vector (which must reproduce the
    homogeneous numbers) and a congested non-uniform profile, exactly.
    """
    points: list[PointCheck] = []
    profiles = (
        ("uniform", hops_from_parameters(params)),
        ("congested", _congested_profile(params)),
    )
    for protocol in protocols:
        for label, hops in profiles:
            reference = HeterogeneousMultiHopModel(protocol, params, hops).solve()
            template = _templates.solve_heterogeneous_tasks(
                [(protocol, params, hops)]
            )[0]
            for metric in ("inconsistency_ratio", "message_rate"):
                points.append(
                    _exact_point(
                        f"{protocol.value} {label} {metric}",
                        getattr(reference, metric),
                        getattr(template, metric),
                    )
                )
    return _check(
        "heterogeneous: dense==template",
        points,
        detail=f"N={params.hops}, uniform + congested profiles, exact",
    )


#: The smallest hop count whose chain reaches
#: :data:`~repro.core.markov.SPARSE_STATE_THRESHOLD` states (2N+1 for
#: the SS family) — where ``"auto"`` stops using splu and routes chains
#: to the structured O(hops) kernel instead.
STRUCTURED_CROSSOVER_HOPS = (SPARSE_STATE_THRESHOLD + 1) // 2


def _metric_points(label, reference, observed, point_factory):
    return [
        point_factory(
            f"{label} {metric}",
            getattr(reference, metric),
            getattr(observed, metric),
        )
        for metric in ("inconsistency_ratio", "message_rate")
    ]


def chain_backend_parity_checks(
    params: MultiHopParameters,
    hop_counts: Sequence[int],
    protocols: Sequence[Protocol] = Protocol.multihop_family(),
    fidelity: str = "smoke",
) -> list[CheckResult]:
    """The structured chain-kernel slice of the parity matrix.

    Three relations per protocol, mirroring the tree-backend slice:

    * ``structured~dense`` — the O(hops) kernel against the per-point
      dense reference at the sweep's own hop counts (tolerance: the
      kernel reorders float operations);
    * ``structured~sparse`` — above the splu crossover
      (:data:`STRUCTURED_CROSSOVER_HOPS`), where no exact referee
      exists, the kernel against the historical splu template path;
    * the heterogeneous congested profile through both relations, so
      the per-hop rate vectors (not just the homogeneous scalars) are
      covered.

    The exact ``dense==template`` relation is *not* re-asserted here —
    :func:`multihop_parity_checks` already owns it, and the structured
    backend never replaces an exact path (see
    :func:`~repro.core.templates.select_chain_backend`).
    """
    checks: list[CheckResult] = []
    for protocol in protocols:
        dense_points: list[PointCheck] = []
        for hops in hop_counts:
            hop_base = params.replace(hops=int(hops))
            for label, point_params in parity_parameter_points(hop_base, fidelity):
                label = f"N={hops} {label}"
                reference = MultiHopModel(protocol, point_params).solve()
                structured = _templates.solve_multihop_structured_tasks(
                    [(protocol, point_params)]
                )[0]
                dense_points.extend(
                    _metric_points(label, reference, structured, _close_point)
                )
                dense_points.extend(
                    _close_point(
                        f"{label} pi[{_state_label(state)}]",
                        reference.stationary[state],
                        structured.stationary[state],
                    )
                    for state in reference.stationary
                )
        hop_list = ",".join(str(h) for h in hop_counts)
        checks.append(
            _check(
                f"chain {protocol.value}: structured~dense",
                dense_points,
                detail=f"hops {hop_list}, block-Thomas within rel {SPARSE_REL_TOL:g}",
            )
        )

        crossover = params.replace(hops=STRUCTURED_CROSSOVER_HOPS)
        sparse_points: list[PointCheck] = []
        template = _templates.solve_multihop_tasks([(protocol, crossover)])[0]
        structured = _templates.solve_multihop_structured_tasks(
            [(protocol, crossover)]
        )[0]
        label = f"N={STRUCTURED_CROSSOVER_HOPS}"
        sparse_points.extend(
            _metric_points(label, template, structured, _close_point)
        )
        congested = _congested_profile(crossover)
        template = _templates.solve_heterogeneous_tasks(
            [(protocol, crossover, congested)]
        )[0]
        structured = _templates.solve_heterogeneous_structured_tasks(
            [(protocol, crossover, congested)]
        )[0]
        sparse_points.extend(
            _metric_points(f"{label} congested", template, structured, _close_point)
        )
        checks.append(
            _check(
                f"chain {protocol.value}: structured~sparse",
                sparse_points,
                detail=(
                    f"N={STRUCTURED_CROSSOVER_HOPS} above the splu crossover, "
                    f"uniform + congested, within rel {SPARSE_REL_TOL:g}"
                ),
            )
        )
    return checks
