"""Validation report artifacts: per-point records, coverage, rendering.

A :class:`ValidationReport` is the durable output of one validation
run: a scenario id, the fidelity it ran at, a list of
:class:`CheckResult` records (each carrying per-point
:class:`PointCheck` evidence) and aggregate :class:`Coverage` numbers.
Like :class:`~repro.experiments.runner.ExperimentResult`, the report is
plain frozen data plus renderers — an aligned text table
(:meth:`ValidationReport.to_text`) and a versioned JSON artifact
(:meth:`ValidationReport.to_json` / :meth:`ValidationReport.from_json`)
so CI jobs and dashboards can diff validation outcomes across commits.
"""

from __future__ import annotations

import dataclasses
import json

from repro._version import __version__

__all__ = [
    "Coverage",
    "CheckResult",
    "PointCheck",
    "VALIDATION_SCHEMA_VERSION",
    "ValidationReport",
]

#: Version of the JSON artifact layout produced by
#: :meth:`ValidationReport.to_json`.  Bump on incompatible changes;
#: :meth:`ValidationReport.from_json` refuses other versions.
VALIDATION_SCHEMA_VERSION = 1

#: The check kinds a report may carry.
CHECK_KINDS = ("sim_model", "parity", "artifact", "invariant")


@dataclasses.dataclass(frozen=True)
class PointCheck:
    """One compared point: expected vs observed within a tolerance.

    ``tolerance`` is the allowed ``|observed - expected|``; exact
    (bit-parity) comparisons record ``tolerance=0.0``.
    """

    label: str
    expected: float
    observed: float
    tolerance: float
    passed: bool

    @property
    def error(self) -> float:
        """The absolute deviation ``|observed - expected|``."""
        return abs(self.observed - self.expected)


@dataclasses.dataclass(frozen=True)
class CheckResult:
    """One named validation check and its per-point evidence."""

    name: str
    kind: str
    passed: bool
    detail: str = ""
    points: tuple[PointCheck, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in CHECK_KINDS:
            raise ValueError(
                f"unknown check kind {self.kind!r}; expected one of {CHECK_KINDS}"
            )

    def failures(self) -> tuple[PointCheck, ...]:
        """The failing points of this check."""
        return tuple(point for point in self.points if not point.passed)


@dataclasses.dataclass(frozen=True)
class Coverage:
    """What one validation run exercised, in countable terms."""

    checks: int
    checks_passed: int
    points: int
    points_passed: int
    protocols: tuple[str, ...] = ()
    backends: tuple[str, ...] = ()
    hop_counts: tuple[int, ...] = ()

    @property
    def checks_failed(self) -> int:
        return self.checks - self.checks_passed

    @property
    def points_failed(self) -> int:
        return self.points - self.points_passed


@dataclasses.dataclass(frozen=True)
class ValidationReport:
    """The full outcome of validating one scenario at one fidelity."""

    scenario_id: str
    title: str
    fidelity: str
    checks: tuple[CheckResult, ...]
    protocols: tuple[str, ...] = ()
    backends: tuple[str, ...] = ()
    hop_counts: tuple[int, ...] = ()
    package_version: str = __version__

    @property
    def passed(self) -> bool:
        """Whether every check passed."""
        return all(check.passed for check in self.checks)

    def coverage(self) -> Coverage:
        """Aggregate pass/fail and coverage counters."""
        points = [point for check in self.checks for point in check.points]
        return Coverage(
            checks=len(self.checks),
            checks_passed=sum(1 for check in self.checks if check.passed),
            points=len(points),
            points_passed=sum(1 for point in points if point.passed),
            protocols=self.protocols,
            backends=self.backends,
            hop_counts=self.hop_counts,
        )

    def check(self, name: str) -> CheckResult:
        """Find a check by name."""
        for candidate in self.checks:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no check named {name!r} in {self.scenario_id}")

    def to_text(self, max_points: int = 4) -> str:
        """Render the report as an aligned text table.

        Passing checks print one summary line; failing checks also list
        up to ``max_points`` failing points with their deviations.
        """
        coverage = self.coverage()
        verdict = "PASS" if self.passed else "FAIL"
        lines = [
            f"== validation {self.scenario_id} [{self.fidelity}]: {verdict} ==",
            f"   {self.title}",
            f"   checks {coverage.checks_passed}/{coverage.checks} passed, "
            f"points {coverage.points_passed}/{coverage.points} passed",
        ]
        if self.protocols:
            lines.append(f"   protocols: {', '.join(self.protocols)}")
        if self.backends:
            lines.append(f"   backends: {', '.join(self.backends)}")
        if self.hop_counts:
            lines.append(
                "   hop counts: " + ", ".join(str(h) for h in self.hop_counts)
            )
        lines.append("")
        width = max((len(check.name) for check in self.checks), default=0)
        for check in self.checks:
            status = "ok  " if check.passed else "FAIL"
            summary = f"{status} {check.name:<{width}}  [{check.kind}]"
            if check.points:
                summary += f"  ({len(check.points)} points)"
            if check.detail:
                summary += f"  {check.detail}"
            lines.append(summary)
            if not check.passed:
                for point in check.failures()[:max_points]:
                    lines.append(
                        f"       {point.label}: expected {point.expected:.6g}, "
                        f"observed {point.observed:.6g} "
                        f"(|err| {point.error:.3g} > tol {point.tolerance:.3g})"
                    )
                hidden = len(check.failures()) - max_points
                if hidden > 0:
                    lines.append(f"       ... and {hidden} more failing points")
        return "\n".join(lines)

    def to_json(self, indent: int | None = 2) -> str:
        """The report as a versioned JSON artifact."""
        coverage = self.coverage()
        document = {
            "schema_version": VALIDATION_SCHEMA_VERSION,
            "scenario_id": self.scenario_id,
            "title": self.title,
            "fidelity": self.fidelity,
            "passed": self.passed,
            "package_version": self.package_version,
            "coverage": {
                "checks": coverage.checks,
                "checks_passed": coverage.checks_passed,
                "points": coverage.points,
                "points_passed": coverage.points_passed,
                "protocols": list(coverage.protocols),
                "backends": list(coverage.backends),
                "hop_counts": list(coverage.hop_counts),
            },
            "checks": [
                {
                    "name": check.name,
                    "kind": check.kind,
                    "passed": check.passed,
                    "detail": check.detail,
                    "points": [
                        {
                            "label": point.label,
                            "expected": point.expected,
                            "observed": point.observed,
                            "tolerance": point.tolerance,
                            "passed": point.passed,
                        }
                        for point in check.points
                    ],
                }
                for check in self.checks
            ],
        }
        return json.dumps(document, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ValidationReport":
        """Rebuild a report from a :meth:`to_json` artifact.

        Raises :class:`ValueError` on a missing or unsupported
        ``schema_version``.
        """
        document = json.loads(text)
        version = document.get("schema_version")
        if version != VALIDATION_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported validation schema_version {version!r}; "
                f"this build reads version {VALIDATION_SCHEMA_VERSION}"
            )
        coverage = document.get("coverage", {})
        return cls(
            scenario_id=document["scenario_id"],
            title=document["title"],
            fidelity=document["fidelity"],
            checks=tuple(
                CheckResult(
                    name=check["name"],
                    kind=check["kind"],
                    passed=check["passed"],
                    detail=check.get("detail", ""),
                    points=tuple(
                        PointCheck(
                            label=point["label"],
                            expected=point["expected"],
                            observed=point["observed"],
                            tolerance=point["tolerance"],
                            passed=point["passed"],
                        )
                        for point in check.get("points", ())
                    ),
                )
                for check in document["checks"]
            ),
            protocols=tuple(coverage.get("protocols", ())),
            backends=tuple(coverage.get("backends", ())),
            hop_counts=tuple(coverage.get("hop_counts", ())),
            package_version=document.get("package_version", ""),
        )
