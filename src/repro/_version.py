"""The package version, importable from every layer.

Kept in its own bottom-layer module so provenance stamping
(``experiments/executor.py``, ``validation/report.py``) does not have
to import the package root — ``repro/__init__.py`` pulls in the whole
facade, and importing it from a lower layer is exactly the upward
edge the layer contract (reprolint RL001) forbids.  The root
re-exports this value, and packaging reads it via
``version = { attr = "repro.__version__" }``.
"""

__version__ = "1.3.0"
