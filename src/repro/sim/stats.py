"""Replication statistics: sample means and Student-t confidence intervals.

The paper reports simulation results "with 95% confidence interval"
(Fig. 11).  :class:`ReplicationSet` collects one scalar observation per
independent replication and produces the classic t-interval.
"""

from __future__ import annotations

import dataclasses
import math

from scipy import stats as _scipy_stats

__all__ = ["ConfidenceInterval", "ReplicationSet", "student_t_interval"]


@dataclasses.dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric confidence interval around a sample mean."""

    mean: float
    half_width: float
    confidence: float
    n: int

    @property
    def low(self) -> float:
        """Lower endpoint."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper endpoint."""
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return f"{self.mean:.6g} ± {self.half_width:.2g} ({self.confidence:.0%}, n={self.n})"


def student_t_interval(
    samples: list[float] | tuple[float, ...],
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """Student-t confidence interval for the mean of i.i.d. samples."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    n = len(samples)
    if n == 0:
        raise ValueError("cannot build an interval from zero samples")
    mean = sum(samples) / n
    if n == 1:
        return ConfidenceInterval(mean=mean, half_width=float("inf"), confidence=confidence, n=1)
    variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    std_err = math.sqrt(variance / n)
    t_crit = float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return ConfidenceInterval(mean=mean, half_width=t_crit * std_err, confidence=confidence, n=n)


class ReplicationSet:
    """Accumulates named scalar metrics across independent replications."""

    def __init__(self) -> None:
        self._samples: dict[str, list[float]] = {}

    def add(self, metric: str, value: float) -> None:
        """Record one replication's value of ``metric``."""
        if not math.isfinite(value):
            raise ValueError(f"non-finite sample for {metric!r}: {value!r}")
        self._samples.setdefault(metric, []).append(float(value))

    def metrics(self) -> list[str]:
        """Names of all recorded metrics."""
        return sorted(self._samples)

    def _recorded(self, metric: str) -> list[float]:
        try:
            return self._samples[metric]
        except KeyError:
            known = ", ".join(sorted(self._samples)) or "<none recorded>"
            raise KeyError(
                f"unknown metric {metric!r}; known metrics: {known}"
            ) from None

    def samples(self, metric: str) -> list[float]:
        """All samples recorded for ``metric``.

        Raises :class:`KeyError` naming the known metrics when
        ``metric`` was never recorded.
        """
        return list(self._recorded(metric))

    def count(self, metric: str) -> int:
        """Number of replications recorded for ``metric``."""
        return len(self._samples.get(metric, ()))

    def mean(self, metric: str) -> float:
        """Sample mean of ``metric`` (KeyError lists known metrics)."""
        values = self._recorded(metric)
        return sum(values) / len(values)

    def interval(self, metric: str, confidence: float = 0.95) -> ConfidenceInterval:
        """Student-t interval for ``metric`` (KeyError lists known metrics)."""
        return student_t_interval(self._recorded(metric), confidence)
