"""Time-weighted measurement utilities.

The paper's central metric — the inconsistency ratio — is a *fraction of
time*, so measurement must be time-weighted, not sample-weighted.
:class:`TimeWeightedValue` integrates a piecewise-constant signal;
:class:`StateFractionMonitor` specializes it to "fraction of time a
boolean predicate held"; :class:`Counter` tallies discrete occurrences
(signaling messages) for rate metrics; :class:`TimeSeriesMonitor`
samples an instantaneous indicator on a fixed virtual-time grid (the
sim side of the transient recovery curves).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.sim.engine import Environment

__all__ = ["Counter", "StateFractionMonitor", "TimeSeriesMonitor", "TimeWeightedValue"]


class TimeWeightedValue:
    """Integrates a piecewise-constant real-valued signal over time."""

    def __init__(self, env: Environment, initial: float = 0.0) -> None:
        self.env = env
        self._value = float(initial)
        self._last_change = env.now
        self._integral = 0.0
        self._start = env.now

    @property
    def value(self) -> float:
        """Current value of the signal."""
        return self._value

    def set(self, value: float) -> None:
        """Change the signal's value as of the current simulated time."""
        now = self.env.now
        self._integral += self._value * (now - self._last_change)
        self._value = float(value)
        self._last_change = now

    def integral(self) -> float:
        """Integral of the signal from monitor creation until now."""
        return self._integral + self._value * (self.env.now - self._last_change)

    def time_average(self) -> float:
        """Time average of the signal; 0 when no time has elapsed."""
        elapsed = self.env.now - self._start
        if elapsed <= 0:
            return 0.0
        return self.integral() / elapsed

    def reset(self) -> None:
        """Restart integration from the current time, keeping the value."""
        self._integral = 0.0
        self._last_change = self.env.now
        self._start = self.env.now


class StateFractionMonitor:
    """Fraction of time a boolean condition held."""

    def __init__(self, env: Environment, initial: bool = False) -> None:
        self._signal = TimeWeightedValue(env, 1.0 if initial else 0.0)

    @property
    def active(self) -> bool:
        """Whether the condition currently holds."""
        return self._signal.value > 0.5

    def set(self, active: bool) -> None:
        """Record the condition becoming true/false now."""
        self._signal.set(1.0 if active else 0.0)

    def active_time(self) -> float:
        """Total time the condition has held."""
        return self._signal.integral()

    def fraction(self) -> float:
        """Fraction of elapsed time the condition held."""
        return self._signal.time_average()

    def reset(self) -> None:
        """Restart measurement from the current time."""
        self._signal.reset()


class TimeSeriesMonitor:
    """Samples an instantaneous indicator at fixed virtual times.

    Unlike the integrating monitors above, this one *records* —
    ``probe()`` is evaluated exactly at each grid time, so warmup
    resets elsewhere never touch it.  Replications of the same grid
    average pointwise into a mean curve with CI bands
    (:func:`repro.sim.stats.student_t_interval`).

    The sampling process is registered at construction; grid times
    must be sorted non-decreasing and not lie in the past.  A sample
    scheduled at the same instant as another event fires after events
    registered earlier (FIFO tie-break), so harnesses create this
    monitor *after* fault processes: a sample at a crash instant sees
    the post-crash state, matching the analytic convention.
    """

    def __init__(
        self,
        env: Environment,
        times: Sequence[float],
        probe: Callable[[], float],
    ) -> None:
        self.env = env
        self.times = tuple(float(t) for t in times)
        if any(b < a for a, b in zip(self.times, self.times[1:])):
            raise ValueError("sample times must be sorted non-decreasing")
        if self.times and self.times[0] < env.now:
            raise ValueError(
                f"first sample time {self.times[0]} is before now ({env.now})"
            )
        self._probe = probe
        self._samples: list[float] = []
        if self.times:
            env.process(self._sampler(), name="time-series-monitor")

    def _sampler(self):
        for t in self.times:
            delay = t - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self._samples.append(float(self._probe()))

    def samples(self) -> tuple[float, ...]:
        """The values recorded so far, one per elapsed grid time."""
        return tuple(self._samples)


class Counter:
    """A named tally of discrete events (e.g. messages of one kind)."""

    def __init__(self, name: str = "counter") -> None:
        self.name = name
        self.count = 0

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` occurrences."""
        if amount < 0:
            raise ValueError(f"cannot increment by a negative amount: {amount}")
        self.count += amount

    def rate(self, elapsed: float) -> float:
        """Occurrences per unit time over ``elapsed``; 0 if no time passed."""
        if elapsed <= 0:
            return 0.0
        return self.count / elapsed
