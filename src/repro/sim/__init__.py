"""Discrete-event simulation substrate.

The paper validates its analytic model with discrete-event simulations
(Figs. 11-12).  The usual Python DES library (simpy) is not available in
this offline environment, so this package implements the substrate from
scratch: a generator-based process model (:mod:`repro.sim.engine`),
reproducible random streams (:mod:`repro.sim.randomness`), a lossy
delaying channel (:mod:`repro.sim.channel`), time-weighted measurement
(:mod:`repro.sim.monitor`) and replication statistics with confidence
intervals (:mod:`repro.sim.stats`).

The process model mirrors simpy's: a *process* is a Python generator
that yields :class:`~repro.sim.engine.Event` objects (most commonly
``env.timeout(delay)``) and is resumed when the event fires.  Processes
can be interrupted, can wait on each other, and share simulated time
through an :class:`~repro.sim.engine.Environment`.
"""

from repro.sim.channel import Channel, ChannelConfig, DeliveredMessage
from repro.sim.engine import (
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.monitor import (
    Counter,
    StateFractionMonitor,
    TimeSeriesMonitor,
    TimeWeightedValue,
)
from repro.sim.randomness import RandomStreams, Timer
from repro.sim.stats import ConfidenceInterval, ReplicationSet, student_t_interval

__all__ = [
    "Channel",
    "ChannelConfig",
    "ConfidenceInterval",
    "Counter",
    "DeliveredMessage",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "RandomStreams",
    "ReplicationSet",
    "SimulationError",
    "StateFractionMonitor",
    "TimeSeriesMonitor",
    "Timeout",
    "TimeWeightedValue",
    "Timer",
    "student_t_interval",
]
