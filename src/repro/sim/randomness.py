"""Reproducible random streams and the paper's two timer disciplines.

The analytic model approximates every timer (refresh ``R``, state-timeout
``T``, retransmission ``K``) and the channel delay as exponentially
distributed; the validation simulations (paper §III-A.3) instead use
deterministic timers.  :class:`Timer` captures both disciplines behind one
interface so protocol code is written once.

Each simulated component draws from its own named substream
(:class:`RandomStreams`), so adding a component or reordering draws in
one component never perturbs another — the standard variance-reduction
discipline for replicated experiments.
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = ["RandomStreams", "Timer", "TimerDiscipline"]


class TimerDiscipline(str, enum.Enum):
    """How a timer interval is drawn.

    ``DETERMINISTIC`` and ``EXPONENTIAL`` are the paper's two regimes
    (protocol practice vs. the model's solvability assumption).
    ``JITTERED`` is deployed practice for refresh timers — RSVP
    randomizes each refresh uniformly over [0.5, 1.5] of the nominal
    period to avoid synchronization of periodic messages — and lets the
    test suite show the model's conclusions are insensitive to it.
    """

    DETERMINISTIC = "deterministic"
    EXPONENTIAL = "exponential"
    JITTERED = "jittered"


class RandomStreams:
    """A family of independent, reproducible random substreams.

    Substreams are derived from a root seed and a stable string key using
    numpy's ``SeedSequence.spawn`` semantics, so ``stream("channel")`` is
    identical across runs with the same root seed regardless of how many
    other streams exist or in what order they are created.
    """

    def __init__(self, seed: int) -> None:
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self._seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """Root seed of this stream family."""
        return self._seed

    def stream(self, key: str) -> np.random.Generator:
        """Return the generator for ``key``, creating it on first use."""
        if key not in self._cache:
            material = [self._seed] + [ord(ch) for ch in key]
            self._cache[key] = np.random.default_rng(np.random.SeedSequence(material))
        return self._cache[key]

    def spawn(self, replication: int) -> "RandomStreams":
        """Derive an independent family for one replication of an experiment."""
        if replication < 0:
            raise ValueError(f"replication index must be non-negative, got {replication}")
        return RandomStreams(self._seed * 1_000_003 + replication + 1)


class Timer:
    """Draws successive intervals for one timer under a given discipline."""

    def __init__(
        self,
        mean: float,
        discipline: TimerDiscipline | str,
        rng: np.random.Generator,
    ) -> None:
        if mean <= 0:
            raise ValueError(f"timer mean must be positive, got {mean}")
        self.mean = float(mean)
        self.discipline = TimerDiscipline(discipline)
        self._rng = rng

    def draw(self) -> float:
        """Return the next interval."""
        if self.discipline is TimerDiscipline.DETERMINISTIC:
            return self.mean
        if self.discipline is TimerDiscipline.JITTERED:
            return float(self._rng.uniform(0.5 * self.mean, 1.5 * self.mean))
        return float(self._rng.exponential(self.mean))
