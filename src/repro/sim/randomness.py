"""Reproducible random streams and the paper's two timer disciplines.

The analytic model approximates every timer (refresh ``R``, state-timeout
``T``, retransmission ``K``) and the channel delay as exponentially
distributed; the validation simulations (paper §III-A.3) instead use
deterministic timers.  :class:`Timer` captures both disciplines behind one
interface so protocol code is written once.

Each simulated component draws from its own named substream
(:class:`RandomStreams`), so adding a component or reordering draws in
one component never perturbs another — the standard variance-reduction
discipline for replicated experiments.
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = ["RandomStreams", "Timer", "TimerDiscipline"]


class TimerDiscipline(str, enum.Enum):
    """How a timer interval is drawn.

    ``DETERMINISTIC`` and ``EXPONENTIAL`` are the paper's two regimes
    (protocol practice vs. the model's solvability assumption).
    ``JITTERED`` is deployed practice for refresh timers — RSVP
    randomizes each refresh uniformly over [0.5, 1.5] of the nominal
    period to avoid synchronization of periodic messages — and lets the
    test suite show the model's conclusions are insensitive to it.
    """

    DETERMINISTIC = "deterministic"
    EXPONENTIAL = "exponential"
    JITTERED = "jittered"


#: Leading ``spawn_key`` word for named substreams vs. replication
#: children.  Named streams append the key's UTF-8 bytes (each < 256),
#: so any domain word >= 256 keeps the two derivation paths disjoint.
_STREAM_DOMAIN = 0x5EED
_REPLICATION_DOMAIN = 0x5EED + 1


class RandomStreams:
    """A family of independent, reproducible random substreams.

    Substreams are derived from a root seed and a stable string key
    through :class:`numpy.random.SeedSequence` ``spawn_key`` paths
    (``SeedSequence.spawn`` semantics), so ``stream("channel")`` is
    identical across runs with the same root seed regardless of how
    many other streams exist or in what order they are created, and two
    distinct keys can never yield the same substream.

    .. note:: **Compatibility.** Earlier releases built the stream
       entropy as ``[seed, *map(ord, key)]`` (which can collide across
       keys — the list for one multi-character key can equal the list
       for another seed/key combination) and derived replication
       children with an ad-hoc affine map ``seed * 1_000_003 + r + 1``.
       Both now route through ``SeedSequence(entropy=seed,
       spawn_key=...)`` with domain-separated spawn keys, so every
       stream and every replication family changed in this version.
       Replicated experiment *estimates* are unaffected beyond their
       reported confidence intervals; only the exact draws moved.
    """

    def __init__(self, seed: int) -> None:
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self._seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """Root seed of this stream family."""
        return self._seed

    def stream(self, key: str) -> np.random.Generator:
        """Return the generator for ``key``, creating it on first use."""
        if key not in self._cache:
            sequence = np.random.SeedSequence(
                entropy=self._seed,
                spawn_key=(_STREAM_DOMAIN, *key.encode("utf-8")),
            )
            self._cache[key] = np.random.default_rng(sequence)
        return self._cache[key]

    def spawn(self, replication: int) -> "RandomStreams":
        """Derive an independent family for one replication of an experiment.

        The child's root seed is drawn from
        ``SeedSequence(entropy=seed, spawn_key=(domain, replication))``,
        so children are independent of each other and of every named
        stream of this family, for any combination of root seeds and
        replication indices.  The child is a plain :class:`RandomStreams`
        whose integer :attr:`seed` fully encodes the derivation (it can
        travel through a config object to a worker process).
        """
        if replication < 0:
            raise ValueError(f"replication index must be non-negative, got {replication}")
        sequence = np.random.SeedSequence(
            entropy=self._seed,
            spawn_key=(_REPLICATION_DOMAIN, int(replication)),
        )
        derived = int.from_bytes(
            sequence.generate_state(4, np.uint32).tobytes(), "little"
        )
        return RandomStreams(derived)


class Timer:
    """Draws successive intervals for one timer under a given discipline."""

    def __init__(
        self,
        mean: float,
        discipline: TimerDiscipline | str,
        rng: np.random.Generator,
    ) -> None:
        if mean <= 0:
            raise ValueError(f"timer mean must be positive, got {mean}")
        self.mean = float(mean)
        self.discipline = TimerDiscipline(discipline)
        self._rng = rng

    def draw(self) -> float:
        """Return the next interval."""
        if self.discipline is TimerDiscipline.DETERMINISTIC:
            return self.mean
        if self.discipline is TimerDiscipline.JITTERED:
            return float(self._rng.uniform(0.5 * self.mean, 1.5 * self.mean))
        return float(self._rng.exponential(self.mean))
