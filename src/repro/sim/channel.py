"""The signaling channel: Bernoulli loss plus delay, no reordering.

The paper's network model (§III): the sender and receiver "communicate
over a network that can delay and lose, but not reorder, messages".
Losses are independent Bernoulli trials with parameter ``p_l``; the
channel delay has mean ``delta`` and is either fixed or exponential.

Non-reordering is enforced explicitly: each message's delivery time is
clamped to be no earlier than the previously accepted message's delivery
time, which makes exponential delays safe to use.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable
from typing import Any

import numpy as np

from repro.sim.engine import Environment
from repro.sim.randomness import TimerDiscipline

__all__ = ["Channel", "ChannelConfig", "DeliveredMessage"]


@dataclasses.dataclass(frozen=True)
class ChannelConfig:
    """Loss/delay parameters of one directed channel."""

    loss_rate: float
    mean_delay: float
    delay_discipline: TimerDiscipline = TimerDiscipline.DETERMINISTIC

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {self.loss_rate}")
        if self.mean_delay <= 0:
            raise ValueError(f"mean_delay must be positive, got {self.mean_delay}")


@dataclasses.dataclass(frozen=True)
class DeliveredMessage:
    """Record of one message handed to a receiver."""

    payload: Any
    sent_at: float
    delivered_at: float


class Channel:
    """A unidirectional lossy channel delivering to a callback.

    ``send`` never blocks the sender (signaling messages are datagrams).
    Statistics (``sent``, ``lost``, ``delivered``) are kept for the
    message-overhead metrics.
    """

    def __init__(
        self,
        env: Environment,
        config: ChannelConfig,
        rng: np.random.Generator,
        deliver: Callable[[DeliveredMessage], None],
        name: str = "channel",
        on_loss: Callable[[Any], None] | None = None,
    ) -> None:
        self.env = env
        self.config = config
        self.name = name
        self._rng = rng
        self._deliver = deliver
        self._on_loss = on_loss
        self._last_delivery_time = -float("inf")
        self.sent = 0
        self.lost = 0
        self.delivered = 0

    def send(self, payload: Any) -> bool:
        """Transmit ``payload``; returns False when the channel drops it.

        When an ``on_loss`` callback is configured, it fires one channel
        delay after the drop — modeling an idealized loss-detection
        signal (used by the Raman-McCanne NACK extension, where "the
        receiver learns of this loss instantaneously" on the arrival
        timescale).
        """
        self.sent += 1
        if self._rng.random() < self.config.loss_rate:
            self.lost += 1
            if self._on_loss is not None:
                lost_payload = payload
                event = self.env.timeout(self._draw_delay())
                event.callbacks.append(lambda _evt: self._on_loss(lost_payload))
            return False
        delay = self._draw_delay()
        deliver_at = max(self.env.now + delay, self._last_delivery_time)
        self._last_delivery_time = deliver_at
        sent_at = self.env.now
        event = self.env.timeout(deliver_at - self.env.now)
        event.callbacks.append(
            lambda _evt: self._on_arrival(payload, sent_at)
        )
        return True

    def _draw_delay(self) -> float:
        if self.config.delay_discipline is TimerDiscipline.DETERMINISTIC:
            return self.config.mean_delay
        return float(self._rng.exponential(self.config.mean_delay))

    def _on_arrival(self, payload: Any, sent_at: float) -> None:
        self.delivered += 1
        self._deliver(
            DeliveredMessage(payload=payload, sent_at=sent_at, delivered_at=self.env.now)
        )
