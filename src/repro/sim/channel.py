"""The signaling channel: Bernoulli loss plus delay, no reordering.

The paper's network model (§III): the sender and receiver "communicate
over a network that can delay and lose, but not reorder, messages".
Losses are independent Bernoulli trials with parameter ``p_l``; the
channel delay has mean ``delta`` and is either fixed or exponential.

Non-reordering is enforced explicitly: each message's delivery time is
clamped to be no earlier than the previously accepted message's delivery
time, which makes exponential delays safe to use.

Two fault extensions (see :mod:`repro.faults`):

* a :class:`GilbertElliottProcess` can replace the constant loss rate
  with a two-state bursty modulator, evolved lazily on the channel's
  virtual clock from its own dedicated random stream;
* a ``down`` flag models a link outage — messages sent while down are
  lost *deterministically*, consuming no randomness and firing no loss
  callback, so flap schedules never perturb the loss stream.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable
from typing import Any

import numpy as np

from repro.sim.engine import Environment
from repro.sim.randomness import TimerDiscipline

__all__ = ["Channel", "ChannelConfig", "DeliveredMessage", "GilbertElliottProcess"]


@dataclasses.dataclass(frozen=True)
class ChannelConfig:
    """Loss/delay parameters of one directed channel.

    ``loss_rate == 1.0`` (certain loss) and ``mean_delay == 0.0``
    (instantaneous delivery) are admitted edge cases: the former is the
    Gilbert-Elliott bad-state extreme, the latter an idealized local
    link.
    """

    loss_rate: float
    mean_delay: float
    delay_discipline: TimerDiscipline = TimerDiscipline.DETERMINISTIC

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0, 1], got {self.loss_rate}")
        if self.mean_delay < 0:
            raise ValueError(f"mean_delay must be non-negative, got {self.mean_delay}")


class GilbertElliottProcess:
    """A stateful two-state (good/bad) loss modulator on virtual time.

    The channel state is a CTMC flipping at rates ``good_to_bad`` /
    ``bad_to_good`` (a rate of 0 pins the state forever).  Evolution is
    *lazy*: holding times are drawn from ``rng`` (a dedicated named
    stream — never the channel's loss stream) only as queries advance
    the clock, so a degenerate process (``loss_good == loss_bad``)
    leaves every other stream untouched and the channel reproduces the
    i.i.d. Bernoulli loss sequence bit for bit.

    One process may be shared by several channels (the product-chain
    models assume a single path-wide channel state), as long as all
    queries come from the same virtual clock.
    """

    def __init__(
        self,
        loss_good: float,
        loss_bad: float,
        good_to_bad: float,
        bad_to_good: float,
        rng: np.random.Generator,
    ) -> None:
        for name, value in (("loss_good", loss_good), ("loss_bad", loss_bad)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name, value in (
            ("good_to_bad", good_to_bad),
            ("bad_to_good", bad_to_good),
        ):
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")
        self._loss_good = loss_good
        self._loss_bad = loss_bad
        self._good_to_bad = good_to_bad
        self._bad_to_good = bad_to_good
        self._rng = rng
        self._bad = False
        self._next_flip = self._holding_time()

    def _holding_time(self) -> float:
        rate = self._bad_to_good if self._bad else self._good_to_bad
        if rate <= 0.0:
            return float("inf")
        return float(self._rng.exponential(1.0 / rate))

    def _advance(self, now: float) -> None:
        while self._next_flip <= now:
            flip_at = self._next_flip
            self._bad = not self._bad
            self._next_flip = flip_at + self._holding_time()

    def is_bad(self, now: float) -> bool:
        """Whether the channel is in the bad state at virtual time ``now``."""
        self._advance(now)
        return self._bad

    def loss_rate_at(self, now: float) -> float:
        """The loss probability in effect at virtual time ``now``."""
        self._advance(now)
        return self._loss_bad if self._bad else self._loss_good


@dataclasses.dataclass(frozen=True)
class DeliveredMessage:
    """Record of one message handed to a receiver."""

    payload: Any
    sent_at: float
    delivered_at: float


class Channel:
    """A unidirectional lossy channel delivering to a callback.

    ``send`` never blocks the sender (signaling messages are datagrams).
    Statistics (``sent``, ``lost``, ``delivered``) are kept for the
    message-overhead metrics.
    """

    def __init__(
        self,
        env: Environment,
        config: ChannelConfig,
        rng: np.random.Generator,
        deliver: Callable[[DeliveredMessage], None],
        name: str = "channel",
        on_loss: Callable[[Any], None] | None = None,
        loss_process: GilbertElliottProcess | None = None,
    ) -> None:
        self.env = env
        self.config = config
        self.name = name
        self._rng = rng
        self._deliver = deliver
        self._on_loss = on_loss
        self._loss_process = loss_process
        self._last_delivery_time = -float("inf")
        self.down = False
        self.sent = 0
        self.lost = 0
        self.delivered = 0

    def send(self, payload: Any) -> bool:
        """Transmit ``payload``; returns False when the channel drops it.

        While the channel is ``down`` (a scheduled link outage) every
        message is lost deterministically — no random draw is consumed
        and ``on_loss`` does not fire, so fault schedules cannot shift
        the loss stream of the surviving traffic.

        When an ``on_loss`` callback is configured, it fires one channel
        delay after a (random) drop — modeling an idealized
        loss-detection signal (used by the Raman-McCanne NACK extension,
        where "the receiver learns of this loss instantaneously" on the
        arrival timescale).
        """
        self.sent += 1
        if self.down:
            self.lost += 1
            return False
        loss_rate = (
            self._loss_process.loss_rate_at(self.env.now)
            if self._loss_process is not None
            else self.config.loss_rate
        )
        if self._rng.random() < loss_rate:
            self.lost += 1
            if self._on_loss is not None:
                lost_payload = payload
                event = self.env.timeout(self._draw_delay())
                event.callbacks.append(lambda _evt: self._on_loss(lost_payload))
            return False
        delay = self._draw_delay()
        deliver_at = max(self.env.now + delay, self._last_delivery_time)
        self._last_delivery_time = deliver_at
        sent_at = self.env.now
        event = self.env.timeout(deliver_at - self.env.now)
        event.callbacks.append(
            lambda _evt: self._on_arrival(payload, sent_at)
        )
        return True

    def _draw_delay(self) -> float:
        if self.config.delay_discipline is TimerDiscipline.DETERMINISTIC:
            return self.config.mean_delay
        return float(self._rng.exponential(self.config.mean_delay))

    def _on_arrival(self, payload: Any, sent_at: float) -> None:
        self.delivered += 1
        self._deliver(
            DeliveredMessage(payload=payload, sent_at=sent_at, delivered_at=self.env.now)
        )
