"""Array primitives for the vectorized (engine-free) simulation path.

The discrete-event engine charges a heap operation, a generator resume
and a callback chain per event; for the refresh-dominated soft-state
protocols almost all of those events are structurally predictable.  The
helpers here compute the same quantities as whole numpy arrays while
preserving the scalar engine's floating-point semantics bit for bit:

* virtual times accumulate by *fold-left* addition (the engine advances
  its clock one ``now + delay`` at a time), so grids are built with
  ``np.cumsum`` — a sequential fold — never with ``start + k * step``;
* channel delivery re-derives the fire time exactly the way
  :class:`~repro.sim.channel.Channel` does (``now + (deliver_at - now)``);
* time-weighted integrals fold contributions in boundary order exactly
  like :class:`~repro.sim.monitor.TimeWeightedValue`, so repeated
  boundaries and zero-width segments are exact no-ops;
* random draws come from caller-provided generators in block form,
  which consumes the underlying bit stream identically to repeated
  scalar draws.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "UniformPool",
    "delivery_times",
    "fold_active_time",
    "fold_cumsum",
    "refresh_grid",
]


class UniformPool:
    """Sequential uniform[0, 1) draws served from block requests.

    ``Generator.random(size=n)`` consumes the bit stream exactly like
    ``n`` successive ``Generator.random()`` calls, so taking draws from
    this pool reproduces a scalar simulation's per-message loss draws
    bit for bit, in order.  The pool over-draws in chunks; the unused
    tail only advances generator state that nothing else reads.
    """

    def __init__(self, rng: np.random.Generator, chunk: int = 4096) -> None:
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        self._rng = rng
        self._chunk = int(chunk)
        self._buffer = np.empty(0)
        self._cursor = 0

    def take(self, count: int) -> np.ndarray:
        """The next ``count`` uniforms of the stream, in draw order."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        available = len(self._buffer) - self._cursor
        if count > available:
            grow = max(self._chunk, count - available)
            self._buffer = np.concatenate(
                [self._buffer[self._cursor :], self._rng.random(grow)]
            )
            self._cursor = 0
        taken = self._buffer[self._cursor : self._cursor + count]
        self._cursor += count
        return taken


def fold_cumsum(start: float, increments: np.ndarray) -> np.ndarray:
    """Times reached by successively adding ``increments`` to ``start``.

    Element ``k`` equals ``start + inc_0 + ... + inc_{k-1}`` evaluated
    left to right — the virtual times an engine clock visits when a
    process sleeps through ``increments`` one timeout at a time.
    Element 0 is ``start`` itself.
    """
    row = np.empty(len(increments) + 1)
    row[0] = start
    row[1:] = increments
    return np.cumsum(row)


def refresh_grid(starts: np.ndarray, interval: float, count: int) -> np.ndarray:
    """Fold-left periodic grids: row ``i`` is ``starts[i] + k*interval``.

    Column 0 holds ``starts``; column ``k`` holds the time reached by
    adding ``interval`` to the previous column (sequential fold per
    row), matching a timer loop that re-arms itself ``count`` times.
    """
    grid = np.empty((len(starts), count + 1))
    grid[:, 0] = starts
    grid[:, 1:] = interval
    return np.cumsum(grid, axis=1)


def delivery_times(send_times: np.ndarray, delay: float) -> np.ndarray:
    """Delivery times of in-order sends over a constant-delay channel.

    The event engine schedules delivery as ``now + (deliver_at - now)``
    with ``deliver_at = now + delay``; the double rounding is preserved
    here so vectorized receipts land on the exact same floats.
    """
    deliver_at = send_times + delay
    return send_times + (deliver_at - send_times)


def fold_active_time(times: np.ndarray, flags: np.ndarray) -> float:
    """Integral of a 0/1 signal over its boundary sequence.

    ``flags[i]`` is the signal value set at ``times[i]``; each segment
    contributes ``flag * (t_next - t)`` and contributions accumulate in
    boundary order (sequential fold), replicating
    :meth:`~repro.sim.monitor.TimeWeightedValue.set` exactly — including
    the float grouping across repeated and zero-width boundaries.
    """
    if len(times) < 2:
        return 0.0
    contributions = flags[:-1] * np.diff(times)
    return float(np.cumsum(contributions)[-1])
