"""A minimal but complete generator-based discrete-event simulation kernel.

Design
------
The kernel follows the classic event-list architecture:

* an :class:`Environment` owns the simulated clock and a priority queue of
  scheduled events;
* an :class:`Event` is a one-shot occurrence that callbacks (usually
  suspended processes) can wait on;
* a :class:`Process` wraps a Python generator.  The generator yields
  events; when a yielded event fires, the process is resumed with the
  event's value (or the event's exception is thrown into it).

This is deliberately the same process model as simpy's, so protocol code
reads like ordinary simpy code.  Only the features the protocol
implementations need are provided: timeouts, process join, interrupts,
and immediate (zero-delay) events.  Determinism is guaranteed: events
scheduled for the same time fire in scheduling order (FIFO tie-break).
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Generator
from typing import Any

__all__ = [
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (not for model errors)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries an arbitrary caller-supplied object
    describing why the interrupt happened.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait for.

    An event has three phases: *pending* (created, not yet fired),
    *triggered* (scheduled to fire, value/exception decided), and
    *processed* (callbacks have run).  Processes wait on an event by
    yielding it; the kernel registers the process as a callback.
    """

    __slots__ = ("env", "callbacks", "_value", "_exception", "_triggered", "_processed")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] | None = []
        self._value: Any = None
        self._exception: BaseException | None = None
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether the event has fired and its callbacks have run."""
        return self._processed

    @property
    def value(self) -> Any:
        """The value the event fired with (valid once triggered)."""
        if not self._triggered:
            raise SimulationError("event value accessed before trigger")
        return self._value

    @property
    def ok(self) -> bool:
        """True when the event fired successfully (no exception)."""
        return self._triggered and self._exception is None

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule the event to fire successfully after ``delay``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.env._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule the event to fire by raising ``exception`` in waiters."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._exception = exception
        self.env._schedule(self, delay)
        return self

    def _fire(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for callback in callbacks:
                callback(self)


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._value = value
        env._schedule(self, delay)


class Process(Event):
    """A running generator; also an event that fires when the generator ends.

    The generator's ``return`` value becomes the event value, so parent
    processes can ``result = yield child_process``.
    """

    __slots__ = ("generator", "name", "_target", "_interrupts")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str | None = None,
    ) -> None:
        if not isinstance(generator, Generator):
            raise SimulationError("Process requires a generator (did you call the function?)")
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Event | None = None
        self._interrupts: list[Interrupt] = []
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process is an error; interrupting a process
        multiple times before it resumes queues the interrupts.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        interrupt = Interrupt(cause)
        self._interrupts.append(interrupt)
        if self._target is not None:
            # Detach from the event currently waited on, then resume now.
            target, self._target = self._target, None
            if target.callbacks is not None and self._resume in target.callbacks:
                target.callbacks.remove(self._resume)
            wakeup = Event(self.env)
            wakeup.callbacks.append(self._resume)
            wakeup.succeed()

    def _resume(self, event: Event) -> None:
        self._target = None
        self.env._active_process = self
        try:
            while True:
                if self._interrupts:
                    interrupt = self._interrupts.pop(0)
                    target = self.generator.throw(interrupt)
                elif event._exception is not None:
                    target = self.generator.throw(event._exception)
                else:
                    target = self.generator.send(event._value)
                # The generator yielded a new event to wait on.
                if not isinstance(target, Event):
                    raise SimulationError(
                        f"process {self.name!r} yielded {target!r}, expected an Event"
                    )
                if self._interrupts:
                    # More interrupts were queued before this resume:
                    # deliver them now (at the current time) instead of
                    # leaving them to fire after the new wait finishes.
                    # The yielded event stays pending, unsubscribed.
                    continue
                if target.callbacks is None:
                    # Already processed: feed its outcome straight back in.
                    event = target
                    continue
                target.callbacks.append(self._resume)
                self._target = target
                return
        except StopIteration as stop:
            self.succeed(stop.value)
        except BaseException as exc:  # noqa: BLE001 - propagate into waiters
            if isinstance(exc, SimulationError):
                raise
            self.fail(exc)
        finally:
            self.env._active_process = None


class Environment:
    """The simulation environment: clock, event queue, process factory."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._sequence = 0
        self._active_process: Process | None = None

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently executing, if any."""
        return self._active_process

    def _schedule(self, event: Event, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay!r})")
        heapq.heappush(self._queue, (self._now + delay, self._sequence, event))
        self._sequence += 1

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: str | None = None,
    ) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Fire the single next event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _, event = heapq.heappop(self._queue)
        self._now = when
        event._fire()

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        ``until`` may be a time (run until the clock passes it), an event
        (run until it fires; its value is returned), or ``None`` (run
        until no events remain).
        """
        if isinstance(until, Event):
            stop_event = until
            while not stop_event._processed:
                if not self._queue:
                    raise SimulationError("event queue empty before 'until' event fired")
                self.step()
            if stop_event._exception is not None:
                raise stop_event._exception
            return stop_event._value
        if until is None:
            while self._queue:
                self.step()
            return None
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError("cannot run backwards in time")
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None
