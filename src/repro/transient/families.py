"""Family adapters for transient analysis.

Each adapter presents one analytic model family through the same small
surface the piecewise driver needs:

* ``nominal_chain()`` — the family's CTMC with every link up;
* ``consistent_index`` — the state meaning "every receiver holds the
  sender's current value";
* ``initial_vector(initial)`` — a start distribution: ``"empty"``
  (nothing installed, the first trigger just left the sender) or
  ``"stationary"`` (the nominal chain's stationary distribution, i.e.
  a system warmed up before the fault hits);
* ``degraded_chain(down_links)`` — the same state space with the named
  links down (messages across them are lost with probability 1);
* ``crash_projection(node)`` — an instantaneous state-index mapping
  applied when ``node`` loses its installed state.

Degradation semantics per family:

* **single-hop** — the one link down is a rebuild at ``loss_rate=1``
  (the parameter space admits it; the Gilbert-Elliott bad state uses
  the same regime).  A receiver crash projects installed-state states
  onto their state-lost counterparts.
* **chain** — link ``l`` down is the heterogeneous chain with hop
  ``l``'s loss pinned to 1; every profile in
  :mod:`repro.core.multihop.heterogeneous` is well defined there
  (reach hits 0, recovery and fast-path rates vanish, the first
  timeout concentrates at the cut).  Crashes are supported for the
  *last* node only: the chain state space is a prefix abstraction, and
  a crash at an interior node would leave downstream nodes holding
  stale-but-equal state the prefix cannot represent.  The projection
  sends every state with ``consistent_hops >= N`` to ``(N-1, slow)``.
* **tree** — link ``c`` down (the edge into child ``c``) is rate
  surgery on the nominal generator: every transition that grows the
  consistent set by ``c`` is removed.  Expiry rates keep their nominal
  values, so the degraded tree is a *lower bound* on degradation (see
  ``docs/transient.md``).  Tree crashes are not supported.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.markov import ContinuousTimeMarkovChain
from repro.core.multihop.heterogeneous import HeterogeneousMultiHopModel, hops_from_parameters
from repro.core.multihop.model import MultiHopModel
from repro.core.multihop.states import HopState
from repro.core.multihop.topology import Topology
from repro.core.multihop.tree_model import TreeModel
from repro.core.multihop.tree_states import TreeState
from repro.core.parameters import MultiHopParameters, SignalingParameters
from repro.core.protocols import Protocol
from repro.core.singlehop.model import SingleHopModel
from repro.core.singlehop.states import SingleHopState as S

__all__ = [
    "ChainTransientModel",
    "SingleHopTransientModel",
    "TreeTransientModel",
    "transient_model",
]

_INITIALS = ("empty", "stationary")


@dataclasses.dataclass(frozen=True)
class _DegradedHop:
    """A duck-typed hop with the full loss the validated class rejects.

    :class:`~repro.core.multihop.heterogeneous.HeterogeneousHop`
    enforces ``loss_rate < 1`` for stationary solves (a cut chain has
    no stationary distribution over the full space); the transient
    rate builders are total at ``loss_rate = 1``, which is exactly the
    downed-link semantics.
    """

    loss_rate: float
    delay: float


class _TransientModelBase:
    """Shared vector helpers over a family's fixed state order."""

    def _init_caches(self) -> None:
        self._nominal: ContinuousTimeMarkovChain | None = None
        self._degraded: dict[tuple[int, ...], ContinuousTimeMarkovChain] = {}

    def nominal_chain(self) -> ContinuousTimeMarkovChain:
        if self._nominal is None:
            self._nominal = self._build_nominal()
        return self._nominal

    def degraded_chain(self, down_links: tuple[int, ...]) -> ContinuousTimeMarkovChain:
        key = tuple(down_links)
        if key not in self._degraded:
            self._degraded[key] = self._build_degraded(key)
        return self._degraded[key]

    def states(self) -> tuple:
        return self.nominal_chain().states

    @property
    def consistent_index(self) -> int:
        return self.states().index(self.consistent_state)

    def initial_vector(self, initial: str) -> np.ndarray:
        if initial not in _INITIALS:
            raise ValueError(f"initial must be one of {_INITIALS}, got {initial!r}")
        states = self.states()
        vector = np.zeros(len(states))
        if initial == "empty":
            vector[states.index(self.empty_state)] = 1.0
            return vector
        stationary = self.nominal_chain().stationary_distribution()
        for i, state in enumerate(states):
            vector[i] = stationary[state]
        return vector

    def _projection_vector(self, mapping: dict) -> tuple[int, ...]:
        """State-index mapping ``origin -> destination`` as a tuple."""
        states = self.states()
        index = {state: i for i, state in enumerate(states)}
        return tuple(
            index[mapping.get(state, state)] for state in states
        )


class SingleHopTransientModel(_TransientModelBase):
    """Transient adapter over the Fig. 3 single-hop chain."""

    def __init__(self, protocol: Protocol, params: SignalingParameters) -> None:
        self.protocol = Protocol(protocol)
        self.params = params
        self.consistent_state = S.CONSISTENT
        self.empty_state = S.S10_FAST
        self._init_caches()

    def _build_nominal(self) -> ContinuousTimeMarkovChain:
        return SingleHopModel(self.protocol, self.params).recurrent_chain()

    def _build_degraded(self, down_links: tuple[int, ...]) -> ContinuousTimeMarkovChain:
        if tuple(down_links) != (1,):
            raise ValueError(
                f"single-hop has exactly one link (1); got down_links={down_links}"
            )
        degraded = SingleHopModel(
            self.protocol, self.params.replace(loss_rate=1.0)
        ).recurrent_chain()
        if degraded.states != self.states():
            raise AssertionError("degraded single-hop chain changed the state space")
        return degraded

    def crash_projection(self, node: int) -> tuple[int, ...]:
        """Receiver crash: installed state vanishes, the sender's view stays.

        ``CONSISTENT``/``IC`` collapse onto the sender-installed,
        receiver-empty states; sender-removed states lose their last
        installed copy and renew (the recurrent chain merges ``(0,0)``
        into the session start).
        """
        if node != 1:
            raise ValueError(f"single-hop has exactly one receiver (node 1), got {node}")
        mapping = {
            S.CONSISTENT: S.S10_SLOW,
            S.IC_FAST: S.S10_FAST,
            S.IC_SLOW: S.S10_SLOW,
            S.S01_FAST: S.S10_FAST,
            S.S01_SLOW: S.S10_FAST,
        }
        return self._projection_vector(mapping)

    def link_into(self, node: int) -> int:
        return 1


class ChainTransientModel(_TransientModelBase):
    """Transient adapter over the Figs. 15/16 multi-hop chain."""

    def __init__(self, protocol: Protocol, params: MultiHopParameters) -> None:
        self.protocol = Protocol(protocol)
        self.params = params
        self.consistent_state = HopState(params.hops, False)
        self.empty_state = HopState(0, False)
        self._init_caches()

    def _build_nominal(self) -> ContinuousTimeMarkovChain:
        return MultiHopModel(self.protocol, self.params).chain()

    def _build_degraded(self, down_links: tuple[int, ...]) -> ContinuousTimeMarkovChain:
        down = set(down_links)
        if not down or not down.issubset(range(1, self.params.hops + 1)):
            raise ValueError(
                f"down_links must name links in 1..{self.params.hops}, got {down_links}"
            )
        hops = tuple(
            _DegradedHop(1.0, hop.delay) if i + 1 in down else hop
            for i, hop in enumerate(hops_from_parameters(self.params))
        )
        degraded = HeterogeneousMultiHopModel(self.protocol, self.params, hops).chain()
        if degraded.states != self.states():
            raise AssertionError("degraded chain changed the state space")
        return degraded

    def crash_projection(self, node: int) -> tuple[int, ...]:
        """Last-node crash: the deepest installed state is lost.

        Only ``node == N`` is representable: the chain state is a
        consistent *prefix*, so losing state at an interior node would
        need "stale but equal downstream" states the space lacks.
        """
        n = self.params.hops
        if node != n:
            raise ValueError(
                f"chain crashes are supported for the last node only (node {n}); "
                f"got node {node} — interior crashes leave downstream state the "
                "prefix abstraction cannot represent"
            )
        mapping = {
            state: HopState(n - 1, True)
            for state in self.states()
            if isinstance(state, HopState) and state.consistent_hops >= n
        }
        return self._projection_vector(mapping)

    def link_into(self, node: int) -> int:
        return node


class TreeTransientModel(_TransientModelBase):
    """Transient adapter over the multicast tree model."""

    def __init__(
        self, protocol: Protocol, params: MultiHopParameters, topology: Topology
    ) -> None:
        self.protocol = Protocol(protocol)
        self.params = params
        self.topology = topology
        self.consistent_state = TreeState(
            tuple(range(1, topology.num_nodes)), ()
        )
        self.empty_state = TreeState((), ())
        self._init_caches()

    def _build_nominal(self) -> ContinuousTimeMarkovChain:
        return TreeModel(self.protocol, self.params, self.topology).chain()

    def _build_degraded(self, down_links: tuple[int, ...]) -> ContinuousTimeMarkovChain:
        """Rate surgery: consistency cannot grow through a downed edge.

        A tree link is named by its child node.  Every transition whose
        destination adds a downed child to the consistent set is
        removed; all other rates (including expiries) keep their
        nominal values, so the degraded tree under-states decay — a
        documented approximation, unlike the exact chain degradation.
        """
        down = set(down_links)
        children = set(range(1, self.topology.num_nodes))
        if not down or not down.issubset(children):
            raise ValueError(
                f"down_links must name child nodes in 1..{self.topology.num_nodes - 1}, "
                f"got {down_links}"
            )
        nominal = self.nominal_chain()
        rates = {}
        for (origin, destination), rate in nominal.rates.items():
            if isinstance(origin, TreeState) and isinstance(destination, TreeState):
                gained = set(destination.consistent) - set(origin.consistent)
                if gained & down:
                    continue
            rates[(origin, destination)] = rate
        return ContinuousTimeMarkovChain(nominal.states, rates)

    def crash_projection(self, node: int) -> tuple[int, ...]:
        raise ValueError(
            "tree node crashes have no transient model: losing an interior "
            "subtree's state is not expressible as a projection on the "
            "downward-closed tree state space (see docs/transient.md)"
        )

    def link_into(self, node: int) -> int:
        return node


def transient_model(
    protocol: Protocol,
    params: SignalingParameters | MultiHopParameters,
    topology: Topology | None = None,
):
    """The family adapter implied by the parameter type and topology."""
    if topology is not None:
        if not isinstance(params, MultiHopParameters):
            raise TypeError("tree transient models need MultiHopParameters")
        return TreeTransientModel(protocol, params, topology)
    if isinstance(params, MultiHopParameters):
        return ChainTransientModel(protocol, params)
    if isinstance(params, SignalingParameters):
        return SingleHopTransientModel(protocol, params)
    raise TypeError(f"unsupported parameter type {type(params).__name__}")
