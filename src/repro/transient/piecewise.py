"""Piecewise-constant-generator driver for fault recovery curves.

A deterministic :class:`~repro.faults.schedule.FaultSchedule` makes the
system a time-inhomogeneous CTMC of a very tractable kind: the
generator is *piecewise constant*.  Between fault events the system
evolves under one fixed chain — nominal, or a degraded variant with
some links down — and at a crash instant the distribution jumps
through a deterministic state projection.

This module compiles a schedule into :class:`GeneratorSegment` s and
threads the state distribution through them with one
:func:`~repro.core.uniformization.uniformized_transient` call per
segment:

* flap windows mark their link down for the window's duration;
* a crash applies the family's ``crash_projection`` at the crash
  instant and additionally marks the link *into* the crashed node down
  until the restart (a crashed node neither holds nor refreshes
  state);
* segment boundaries are the union of all window edges, clipped to the
  requested horizon.

A grid time falling exactly on a boundary belongs to the segment
*starting* there, so a sample at a crash instant sees the
post-projection distribution — matching the simulator, where the
crash handler runs before any same-instant sampling.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.core.uniformization import uniformized_transient
from repro.faults.schedule import FaultSchedule

__all__ = [
    "GeneratorSegment",
    "fault_segments",
    "piecewise_transient",
]


@dataclasses.dataclass(frozen=True)
class GeneratorSegment:
    """One constant-generator stretch of a fault timeline.

    ``down_links`` are the links unusable throughout ``[start, end)``;
    ``crashed_nodes`` are nodes whose crash instant is exactly
    ``start`` (their projections apply on entry to the segment).
    ``end`` is ``inf`` for the final segment.
    """

    start: float
    end: float
    down_links: tuple[int, ...]
    crashed_nodes: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.start < self.end:
            raise ValueError(f"empty segment [{self.start}, {self.end})")


def fault_segments(
    schedule: FaultSchedule | None,
    horizon: float,
    link_into,
) -> tuple[GeneratorSegment, ...]:
    """Compile a schedule into constant-generator segments up to ``horizon``.

    ``link_into(node)`` names the link feeding a node, so a crashed
    node's upstream link counts as down for the crash duration.
    Returns at least one segment; the last one is open-ended.
    """
    if horizon < 0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    if schedule is None or schedule.is_empty:
        return (GeneratorSegment(0.0, float("inf"), (), ()),)

    # Down intervals per link: flap windows plus crash outages.
    intervals: list[tuple[float, float, int]] = []
    for flap in schedule.flaps:
        for start, end in flap.windows(horizon):
            intervals.append((start, end, flap.link))
    crash_instants: list[tuple[float, int]] = []
    for crash in schedule.crashes:
        crash_instants.append((crash.at, crash.node))
        intervals.append((crash.at, crash.restart_at, link_into(crash.node)))

    boundaries = {0.0}
    for start, end, _ in intervals:
        boundaries.add(float(start))
        if end < horizon:
            boundaries.add(float(end))
    for at, _ in crash_instants:
        boundaries.add(float(at))
    ordered = sorted(b for b in boundaries if 0.0 <= b <= horizon)

    segments = []
    for i, start in enumerate(ordered):
        end = ordered[i + 1] if i + 1 < len(ordered) else float("inf")
        down = tuple(sorted({
            link for lo, hi, link in intervals if lo <= start < hi
        }))
        crashed = tuple(sorted({
            node for at, node in crash_instants if at == start
        }))
        segments.append(GeneratorSegment(start, end, down, crashed))
    return tuple(segments)


def piecewise_transient(
    model,
    initial: np.ndarray,
    times: Sequence[float],
    schedule: FaultSchedule | None = None,
) -> np.ndarray:
    """Distributions at ``times`` under the model's fault timeline.

    ``model`` is a family adapter from :mod:`repro.transient.families`;
    ``times`` must be sorted non-decreasing.  Returns one row per grid
    time in the adapter's state order.
    """
    times_array = np.asarray(list(times), dtype=float)
    if times_array.size == 0:
        return np.zeros((0, len(model.states())))
    if np.any(times_array < 0):
        raise ValueError("times must be non-negative")
    if np.any(np.diff(times_array) < 0):
        raise ValueError("times must be sorted non-decreasing")

    horizon = float(times_array[-1])
    segments = fault_segments(schedule, horizon, model.link_into)

    output = np.zeros((times_array.size, len(model.states())))
    vector = np.asarray(initial, dtype=float)
    for segment in segments:
        for node in segment.crashed_nodes:
            projection = model.crash_projection(node)
            projected = np.zeros_like(vector)
            np.add.at(projected, np.asarray(projection), vector)
            vector = projected
        # Grid points inside [start, end); the final segment is open.
        in_segment = (times_array >= segment.start) & (times_array < segment.end)
        chain = (
            model.degraded_chain(segment.down_links)
            if segment.down_links
            else model.nominal_chain()
        )
        relative = times_array[in_segment] - segment.start
        duration = segment.end - segment.start
        if np.isfinite(duration):
            # One kernel call covers the samples and the hand-off state.
            solved = uniformized_transient(
                chain, vector, tuple(relative) + (duration,)
            )
            if relative.size:
                output[in_segment] = solved.probabilities[:-1]
            vector = solved.probabilities[-1]
        elif relative.size:
            solved = uniformized_transient(chain, vector, tuple(relative))
            output[in_segment] = solved.probabilities
    return output
