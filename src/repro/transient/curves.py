"""Consistency curves over time and the SLO metrics defined on them.

The deliverable of the transient layer is a *curve*: the probability
that the system is end-to-end consistent at each point of a time grid,
possibly through a fault timeline.  Two SLO-style scalars are read off
a curve by linear interpolation:

* :func:`time_to_consistency` — the first time the curve reaches a
  target level from a cold start;
* :func:`time_to_recover` — the first time the curve re-reaches a
  level *after* a disruption instant (e.g. the flap's end).

Both return ``inf`` when the level is never reached on the grid, which
is a meaningful answer: stationary consistency is bounded away from 1
by updates and removals, so aggressive targets are simply unreachable.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Sequence

from repro.core.multihop.topology import Topology
from repro.core.parameters import MultiHopParameters, SignalingParameters
from repro.core.protocols import Protocol
from repro.faults.schedule import FaultSchedule
from repro.transient.families import transient_model
from repro.transient.piecewise import piecewise_transient

__all__ = [
    "TransientCurve",
    "compute_transient_curve",
    "compute_transient_point",
    "first_crossing",
    "time_to_consistency",
    "time_to_recover",
]


@dataclasses.dataclass(frozen=True)
class TransientCurve:
    """A consistency-probability curve on an explicit time grid."""

    protocol: Protocol
    times: tuple[float, ...]
    consistency: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.times) != len(self.consistency):
            raise ValueError(
                f"{len(self.times)} grid times vs {len(self.consistency)} values"
            )
        if any(b < a for a, b in zip(self.times, self.times[1:])):
            raise ValueError("curve times must be sorted non-decreasing")


def first_crossing(
    times: Sequence[float],
    values: Sequence[float],
    level: float,
    after: float = 0.0,
) -> float:
    """Earliest ``t >= after`` with ``value(t) >= level``, interpolated.

    The curve is taken piecewise linear between grid points.  Returns
    ``inf`` when the level is never reached at or after ``after``.
    """
    previous = None
    for t, v in zip(times, values):
        if t >= after and v >= level:
            if previous is None:
                return float(t)
            t0, v0 = previous
            if v == v0:
                return float(t)
            crossing = t0 + (level - v0) * (t - t0) / (v - v0)
            return float(max(crossing, after))
        if t >= after:
            previous = (t, v)
    return float("inf")


def time_to_consistency(curve: TransientCurve, target: float = 0.99) -> float:
    """First time the curve reaches ``target`` from its start."""
    if not 0.0 < target < 1.0:
        raise ValueError(f"target must be in (0, 1), got {target}")
    return first_crossing(curve.times, curve.consistency, target)


def time_to_recover(curve: TransientCurve, after: float, level: float) -> float:
    """First time at or past ``after`` the curve re-reaches ``level``.

    ``after`` is the disruption's end (flap up-edge or crash restart);
    the result is an absolute grid time, so the recovery *duration* is
    ``time_to_recover(...) - after``.
    """
    if math.isinf(after) or after < 0:
        raise ValueError(f"after must be finite and non-negative, got {after}")
    return first_crossing(curve.times, curve.consistency, level, after=after)


def compute_transient_curve(
    protocol: Protocol,
    params: SignalingParameters | MultiHopParameters,
    times: Sequence[float],
    initial: str = "empty",
    faults: FaultSchedule | None = None,
    topology: Topology | None = None,
) -> TransientCurve:
    """Consistency probability on ``times`` for one protocol and family.

    ``initial`` seeds the distribution (``"empty"`` or
    ``"stationary"``); ``faults`` routes through the piecewise driver
    when present.  ``topology`` selects the tree family.
    """
    model = transient_model(protocol, params, topology)
    vector = model.initial_vector(initial)
    probabilities = piecewise_transient(model, vector, times, faults)
    index = model.consistent_index
    return TransientCurve(
        protocol=Protocol(protocol),
        times=tuple(float(t) for t in times),
        consistency=tuple(float(row[index]) for row in probabilities),
    )


def compute_transient_point(
    protocol: Protocol,
    params: SignalingParameters | MultiHopParameters,
    time: float,
    initial: str = "empty",
    faults: FaultSchedule | None = None,
    topology: Topology | None = None,
) -> float:
    """Consistency probability at a single time (one-point curve)."""
    curve = compute_transient_curve(
        protocol, params, (float(time),), initial=initial,
        faults=faults, topology=topology,
    )
    return curve.consistency[0]
