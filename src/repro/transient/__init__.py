"""Time-dependent analysis: consistency curves through faults.

The stationary models answer "how inconsistent is the protocol on
average"; this layer answers the paper's underlying question directly —
*how fast does consistency (re-)establish* after a cold start, a link
flap, or a node crash.  It combines three pieces:

* family adapters (:mod:`repro.transient.families`) exposing each
  analytic model (single-hop, chain, tree) as a CTMC plus a
  consistency indicator, degraded variants with downed links, and
  crash projections;
* a piecewise-constant-generator driver
  (:mod:`repro.transient.piecewise`) that turns a deterministic
  :class:`~repro.faults.schedule.FaultSchedule` into generator
  segments and threads the state distribution through them;
* curve assembly and SLO metrics (:mod:`repro.transient.curves`):
  consistency probability over a time grid, time-to-consistency and
  time-to-recover crossings.

All transient propagation runs through the uniformization kernel
(:mod:`repro.core.uniformization`).  The memo-cached batch entry
points live one layer up in :mod:`repro.runtime.transient`.
"""

from repro.transient.curves import (
    TransientCurve,
    compute_transient_curve,
    compute_transient_point,
    first_crossing,
    time_to_consistency,
    time_to_recover,
)
from repro.transient.families import (
    ChainTransientModel,
    SingleHopTransientModel,
    TreeTransientModel,
    transient_model,
)
from repro.transient.piecewise import GeneratorSegment, fault_segments, piecewise_transient

__all__ = [
    "ChainTransientModel",
    "GeneratorSegment",
    "SingleHopTransientModel",
    "TransientCurve",
    "TreeTransientModel",
    "compute_transient_curve",
    "compute_transient_point",
    "fault_segments",
    "first_crossing",
    "piecewise_transient",
    "time_to_consistency",
    "time_to_recover",
    "transient_model",
]
