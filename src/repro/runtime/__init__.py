"""Parallel sweep execution runtime.

Every paper artifact is a parameter sweep, and the sweeps are
embarrassingly parallel: each point is an independent CTMC solve.  This
package turns those loops into data-parallel batches:

* :mod:`repro.runtime.executor` — a process-pool ``parallel_map`` with
  deterministic (input-order) results and a process-wide default job
  count (``--jobs`` on the CLI, ``REPRO_JOBS`` in the environment);
* :mod:`repro.runtime.cache` — a content-keyed memo cache so repeated
  ``(model, parameters)`` solves are computed once across figures;
* :mod:`repro.runtime.solvers` — picklable solve entry points used as
  pool tasks, plus batch helpers that combine the cache, the
  compiled-template fast path (:mod:`repro.core.templates`) and the
  pool.

Batch cache misses solve through compiled chain templates —
structure-cached, batched linear algebra that is bit-identical to the
per-point dense reference path — and parallel runs chunk the same
template path across workers, so serial, parallel and per-point results
all agree.
"""

from repro.runtime.cache import SolveCache, global_cache
from repro.runtime.executor import (
    FailureReport,
    configure,
    configure_tolerance,
    effective_jobs,
    effective_max_retries,
    effective_task_timeout,
    failure_report,
    parallel_map,
    using_jobs,
    using_tolerance,
)
from repro.runtime.solvers import (
    run_experiment_task,
    run_experiments,
    solve_chain_stationary,
    solve_gilbert_multihop_batch,
    solve_gilbert_singlehop_batch,
    solve_heterogeneous_batch,
    solve_multihop_batch,
    solve_protocol_suite,
    solve_singlehop_batch,
    solve_tree_batch,
    templates_enabled,
)
from repro.runtime.transient import solve_transient_curve, solve_transient_point

__all__ = [
    "FailureReport",
    "SolveCache",
    "configure",
    "configure_tolerance",
    "effective_jobs",
    "effective_max_retries",
    "effective_task_timeout",
    "failure_report",
    "global_cache",
    "parallel_map",
    "run_experiment_task",
    "run_experiments",
    "solve_chain_stationary",
    "solve_gilbert_multihop_batch",
    "solve_gilbert_singlehop_batch",
    "solve_heterogeneous_batch",
    "solve_multihop_batch",
    "solve_protocol_suite",
    "solve_singlehop_batch",
    "solve_transient_curve",
    "solve_transient_point",
    "solve_tree_batch",
    "templates_enabled",
    "using_jobs",
    "using_tolerance",
]
