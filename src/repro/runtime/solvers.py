"""Picklable solve tasks and cache-aware batch helpers.

Pool workers need module-level callables (closures don't pickle), so
every model family gets a ``solve_*_point(task)`` function taking one
plain-data task tuple — these run the reference per-point models and
stay the ground truth the fast path is parity-tested against.

The ``solve_*_batch`` helpers are what the sweep code calls: they
dedupe tasks by content key, serve repeats from
:func:`repro.runtime.cache.global_cache`, and push the misses through
the compiled-template fast path (:mod:`repro.core.templates`) — grouped
by chain structure and solved with batched/structure-cached linear
algebra.  With ``jobs > 1`` the misses are split into contiguous chunks
fanned across the process pool, each worker running the same template
path, so parallel results are identical to serial ones.  Setting
``REPRO_TEMPLATES=0`` in the environment falls back to the per-point
reference solvers (an escape hatch for debugging the fast path).
"""

from __future__ import annotations

import logging
import os
from collections.abc import Iterable, Sequence

from repro.core import templates as _templates
from repro.core.gilbert.model import (
    GilbertMultiHopModel,
    GilbertMultiHopSolution,
    GilbertSingleHopModel,
    GilbertSingleHopSolution,
    multihop_solution_from_stationary,
    singlehop_solution_from_stationary,
)
from repro.core.markov import ContinuousTimeMarkovChain, State
from repro.core.multihop import MultiHopModel, MultiHopSolution
from repro.core.multihop.heterogeneous import HeterogeneousHop, HeterogeneousMultiHopModel
from repro.core.multihop.lumping import TREE_BACKENDS, LumpedTreeModel, select_tree_backend
from repro.core.multihop.topology import Topology
from repro.core.multihop.tree_model import TreeModel, TreeSolution
from repro.core.multihop.tree_states import MAX_ENUMERATED_TREE_STATES
from repro.core.parameters import MultiHopParameters, SignalingParameters
from repro.core.protocols import Protocol
from repro.core.singlehop import SingleHopModel, SingleHopSolution
from repro.faults.gilbert import GilbertElliottParameters
from repro.runtime.cache import cache_key, global_cache
from repro.runtime.executor import (
    effective_jobs,
    failure_report,
    parallel_map,
    using_jobs,
)

__all__ = [
    "run_experiment_task",
    "run_experiments",
    "solve_chain_stationary",
    "solve_gilbert_multihop_batch",
    "solve_gilbert_multihop_point",
    "solve_gilbert_multihop_template_chunk",
    "solve_gilbert_singlehop_batch",
    "solve_gilbert_singlehop_point",
    "solve_gilbert_singlehop_template_chunk",
    "solve_heterogeneous_batch",
    "solve_heterogeneous_point",
    "solve_heterogeneous_template_chunk",
    "solve_multihop_batch",
    "solve_multihop_point",
    "solve_multihop_template_chunk",
    "solve_protocol_suite",
    "solve_singlehop_batch",
    "solve_singlehop_point",
    "solve_singlehop_template_chunk",
    "solve_tree_batch",
    "solve_tree_point",
    "solve_tree_template_chunk",
    "templates_enabled",
]

_LOGGER = logging.getLogger(__name__)

_MISSING = object()

_TEMPLATES_ENV = "REPRO_TEMPLATES"

SingleHopTask = tuple[Protocol, SignalingParameters]
#: Chain tasks may carry an explicit backend as a trailing element; bare
#: tuples mean ``"auto"`` (routed by state count — the structured
#: O(hops) kernel at and above the sparse threshold, the exact template
#: path below it).
MultiHopTask = (
    tuple[Protocol, MultiHopParameters] | tuple[Protocol, MultiHopParameters, str]
)
HeterogeneousTask = (
    tuple[Protocol, MultiHopParameters, tuple[HeterogeneousHop, ...]]
    | tuple[Protocol, MultiHopParameters, tuple[HeterogeneousHop, ...], str]
)
#: Tree tasks may carry an explicit backend as a fourth element; bare
#: 3-tuples mean ``"auto"`` (routed by projected state counts).
TreeTask = (
    tuple[Protocol, MultiHopParameters, Topology]
    | tuple[Protocol, MultiHopParameters, Topology, str]
)
GilbertSingleHopTask = tuple[Protocol, SignalingParameters, GilbertElliottParameters]
GilbertMultiHopTask = tuple[Protocol, MultiHopParameters, GilbertElliottParameters]

#: Above this state count a dense rescue (an O(n^2) matrix plus an
#: O(n^3) LAPACK factorization) costs more than it saves; the fallback
#: chain skips straight to the iterative backend.
DENSE_FALLBACK_MAX_STATES = 6000


def solve_chain_stationary(chain: ContinuousTimeMarkovChain) -> dict[State, float]:
    """Stationary distribution with a logged multi-stage fallback.

    The chain's configured solver (usually ``"auto"``, which picks the
    sparse backend for large chains) is tried first.  If it fails — a
    singular sparse factorization, a non-finite solution, scipy missing
    — the chain is rescued through the remaining backends: dense first
    (exact, but only up to :data:`DENSE_FALLBACK_MAX_STATES` states),
    then the ILU/GMRES iterative solver (which survives the fill-in
    explosions that kill both LU paths on big tree generators).  One
    rescue *event* increments ``solver_fallbacks`` in
    :func:`repro.runtime.executor.failure_report` exactly once, however
    many rescue backends end up being tried, and every stage is logged
    — never silent.  A failure of the configured ``"dense"`` backend is
    a genuine modeling error and propagates immediately; if every
    rescue fails, the last error propagates.
    """
    try:
        return chain.stationary_distribution()
    except (ValueError, RuntimeError) as exc:
        if chain.solver == "dense":
            raise
        error = exc
    n = len(chain.states)
    rescues = []
    if n <= DENSE_FALLBACK_MAX_STATES:
        rescues.append("dense")
    if chain.solver != "iterative":
        rescues.append("iterative")
    if not rescues:
        raise error
    failure_report().solver_fallbacks += 1
    for rescue in rescues:
        if rescue == "dense":
            _LOGGER.warning(
                "%s stationary solve failed for a %d-state chain; recomputing densely",
                chain.solver,
                n,
            )
        else:
            _LOGGER.warning(
                "%s stationary solve failed for a %d-state chain; "
                "retrying with the iterative backend",
                chain.solver,
                n,
            )
        try:
            return chain.with_solver(rescue).stationary_distribution()
        except (ValueError, RuntimeError) as exc:
            error = exc
    raise error


def templates_enabled() -> bool:
    """Whether batch misses go through the compiled-template fast path.

    On by default; ``REPRO_TEMPLATES=0`` (or ``off``/``false``/``no``)
    reroutes batches through the per-point reference models.
    """
    return os.environ.get(_TEMPLATES_ENV, "").strip().lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


def _singlehop_key(task: SingleHopTask) -> tuple:
    protocol, params = task
    return cache_key("singlehop", protocol, params)


def _chain_parity_class(backend: str) -> str:
    """The parity class a chain backend's results belong to.

    Baked into the cache key (mirroring the tree dispatch) so a
    tolerance-class structured result can never be served to an
    exact-path caller sharing the same ``(protocol, params)``.
    """
    return "tolerance" if backend == "structured" else "exact"


def _normalized_multihop_task(
    task: MultiHopTask,
) -> tuple[Protocol, MultiHopParameters, str]:
    """``(protocol, params, backend)`` with ``"auto"`` resolved.

    Bare 2-tuples mean ``"auto"``; resolution happens before cache
    keying so an ``"auto"`` task and its resolved explicit twin share
    one cache entry, while distinct backends never collide.
    """
    if len(task) == 2:
        protocol, params = task
        backend = "auto"
    else:
        protocol, params, backend = task
    if backend not in _templates.CHAIN_BACKENDS:
        raise ValueError(
            f"chain backend must be one of {_templates.CHAIN_BACKENDS}, "
            f"got {backend!r}"
        )
    protocol = Protocol(protocol)
    if backend == "auto":
        backend = _templates.select_chain_backend(protocol, params.hops)
    return protocol, params, backend


def _normalized_heterogeneous_task(
    task: HeterogeneousTask,
) -> tuple[Protocol, MultiHopParameters, tuple[HeterogeneousHop, ...], str]:
    """``(protocol, params, hops, backend)`` with ``"auto"`` resolved."""
    if len(task) == 3:
        protocol, params, hops = task
        backend = "auto"
    else:
        protocol, params, hops, backend = task
    if backend not in _templates.CHAIN_BACKENDS:
        raise ValueError(
            f"chain backend must be one of {_templates.CHAIN_BACKENDS}, "
            f"got {backend!r}"
        )
    protocol = Protocol(protocol)
    if backend == "auto":
        backend = _templates.select_chain_backend(protocol, params.hops)
    return protocol, params, tuple(hops), backend


def _multihop_key(task: MultiHopTask) -> tuple:
    protocol, params, backend = _normalized_multihop_task(task)
    return cache_key(
        "multihop", protocol, params, (backend, _chain_parity_class(backend))
    )


def _heterogeneous_key(task: HeterogeneousTask) -> tuple:
    protocol, params, hops, backend = _normalized_heterogeneous_task(task)
    hop_key = tuple((h.loss_rate, h.delay) for h in hops)
    return cache_key(
        "heterogeneous",
        protocol,
        params,
        (hop_key, backend, _chain_parity_class(backend)),
    )


def _normalized_tree_task(
    task: TreeTask,
) -> tuple[Protocol, MultiHopParameters, Topology, str]:
    """``(protocol, params, topology, backend)`` with ``"auto"`` resolved.

    Tree tasks arrive as bare 3-tuples (meaning ``"auto"``) or with an
    explicit backend.  Resolution happens here — before cache keying —
    so an ``"auto"`` task and its resolved explicit twin share one cache
    entry, while distinct backends never collide.
    """
    if len(task) == 3:
        protocol, params, topology = task
        backend = "auto"
    else:
        protocol, params, topology, backend = task
    if backend not in TREE_BACKENDS:
        raise ValueError(
            f"tree backend must be one of {TREE_BACKENDS}, got {backend!r}"
        )
    if backend == "auto":
        backend = select_tree_backend(topology)
    return Protocol(protocol), params, topology, backend


def _tree_parity_class(backend: str) -> str:
    """The parity class a backend's results belong to.

    Baked into the cache key so a tolerance-class result (lumped or
    iterative) can never be served to an exact-path caller that happens
    to share the ``(protocol, params, topology)`` triple.
    """
    return "tolerance" if backend in ("lumped", "iterative") else "exact"


def _tree_key(task: TreeTask) -> tuple:
    protocol, params, topology, backend = _normalized_tree_task(task)
    return cache_key(
        "tree",
        protocol,
        params,
        (topology.parents, backend, _tree_parity_class(backend)),
    )


def _gilbert_singlehop_key(task: GilbertSingleHopTask) -> tuple:
    protocol, params, gilbert = task
    return cache_key("gilbert-singlehop", protocol, params, gilbert)


def _gilbert_multihop_key(task: GilbertMultiHopTask) -> tuple:
    protocol, params, gilbert = task
    return cache_key("gilbert-multihop", protocol, params, gilbert)


def _memoized(key: tuple, compute):
    cache = global_cache()
    value = cache.get(key, _MISSING)
    if value is _MISSING:
        value = compute()
        cache.put(key, value)
    return value


def _compute_singlehop(task: SingleHopTask) -> SingleHopSolution:
    protocol, params = task
    return SingleHopModel(protocol, params).solve()


def _compute_multihop(task: MultiHopTask) -> MultiHopSolution:
    # The reference path ignores the backend: with templates disabled
    # (REPRO_TEMPLATES=0) every chain solves through the per-point
    # reference model, bypassing the structured kernel entirely.
    protocol, params, _ = _normalized_multihop_task(task)
    return MultiHopModel(protocol, params).solve()


def _compute_heterogeneous(task: HeterogeneousTask) -> MultiHopSolution:
    protocol, params, hops, _ = _normalized_heterogeneous_task(task)
    return HeterogeneousMultiHopModel(protocol, params, hops).solve()


def _compute_tree(task: TreeTask) -> TreeSolution:
    protocol, params, topology, backend = _normalized_tree_task(task)
    if backend == "lumped":
        model = LumpedTreeModel(protocol, params, topology)
    elif backend == "iterative":
        model = TreeModel(
            protocol,
            params,
            topology,
            max_states=MAX_ENUMERATED_TREE_STATES,
            solver="iterative",
        )
    else:
        model = TreeModel(protocol, params, topology)
    stationary = solve_chain_stationary(model.chain())
    return model.solution_from_stationary(stationary)


def _compute_gilbert_singlehop(task: GilbertSingleHopTask) -> GilbertSingleHopSolution:
    protocol, params, gilbert = task
    model = GilbertSingleHopModel(protocol, params, gilbert)
    if gilbert.is_degenerate:
        return model.solve()
    stationary = solve_chain_stationary(model.chain())
    return singlehop_solution_from_stationary(protocol, params, gilbert, stationary)


def _compute_gilbert_multihop(task: GilbertMultiHopTask) -> GilbertMultiHopSolution:
    protocol, params, gilbert = task
    model = GilbertMultiHopModel(protocol, params, gilbert)
    if gilbert.is_degenerate:
        return model.solve()
    stationary = solve_chain_stationary(model.chain())
    return multihop_solution_from_stationary(protocol, params, gilbert, stationary)


def solve_singlehop_point(task: SingleHopTask) -> SingleHopSolution:
    """Solve one single-hop ``(protocol, params)`` point (memoized)."""
    return _memoized(_singlehop_key(task), lambda: _compute_singlehop(task))


def solve_multihop_point(task: MultiHopTask) -> MultiHopSolution:
    """Solve one multi-hop ``(protocol, params)`` point (memoized)."""
    return _memoized(_multihop_key(task), lambda: _compute_multihop(task))


def solve_heterogeneous_point(task: HeterogeneousTask) -> MultiHopSolution:
    """Solve one heterogeneous ``(protocol, params, hops)`` point (memoized)."""
    return _memoized(_heterogeneous_key(task), lambda: _compute_heterogeneous(task))


def solve_tree_point(task: TreeTask) -> TreeSolution:
    """Solve one tree ``(protocol, params, topology)`` point (memoized)."""
    return _memoized(_tree_key(task), lambda: _compute_tree(task))


def solve_gilbert_singlehop_point(task: GilbertSingleHopTask) -> GilbertSingleHopSolution:
    """Solve one ``(protocol, params, gilbert)`` product point (memoized)."""
    return _memoized(_gilbert_singlehop_key(task), lambda: _compute_gilbert_singlehop(task))


def solve_gilbert_multihop_point(task: GilbertMultiHopTask) -> GilbertMultiHopSolution:
    """Solve one multi-hop ``(protocol, params, gilbert)`` point (memoized)."""
    return _memoized(_gilbert_multihop_key(task), lambda: _compute_gilbert_multihop(task))


def solve_protocol_suite(
    params: SignalingParameters,
) -> dict[Protocol, SingleHopSolution]:
    """Solve every protocol on one parameter set (memoized per point).

    Drop-in for :func:`repro.core.singlehop.solve_all`, and picklable so
    the sensitivity grid can fan whole parameterizations across workers.
    """
    return {protocol: solve_singlehop_point((protocol, params)) for protocol in Protocol}


# ----------------------------------------------------------------------
# Template chunk workers (module-level so they pickle into the pool)
# ----------------------------------------------------------------------


def solve_singlehop_template_chunk(
    tasks: Sequence[SingleHopTask],
) -> list[SingleHopSolution]:
    """Solve a chunk of single-hop tasks through compiled templates."""
    return _templates.solve_singlehop_tasks(list(tasks))


def _solve_chain_partitioned(normalized, entry_points):
    """Partition normalized chain tasks by backend and scatter back.

    One chunk can mix backends (a hop sweep crossing the structured
    threshold mid-axis) without extra round trips — the same shape as
    the tree dispatch below.
    """
    partitions: dict[str, list[int]] = {}
    for position, task in enumerate(normalized):
        partitions.setdefault(task[-1], []).append(position)
    results = [None] * len(normalized)
    for backend, positions in partitions.items():
        solved = entry_points[backend]([normalized[p][:-1] for p in positions])
        for position, solution in zip(positions, solved):
            results[position] = solution
    return results


def solve_multihop_template_chunk(
    tasks: Sequence[MultiHopTask],
) -> list[MultiHopSolution]:
    """Solve a chunk of homogeneous multi-hop tasks through templates.

    Tasks are partitioned by their resolved backend: the exact template
    path, or the structured O(hops) chain kernel.
    """
    return _solve_chain_partitioned(
        [_normalized_multihop_task(task) for task in tasks],
        {
            "template": _templates.solve_multihop_tasks,
            "structured": _templates.solve_multihop_structured_tasks,
        },
    )


def solve_heterogeneous_template_chunk(
    tasks: Sequence[HeterogeneousTask],
) -> list[MultiHopSolution]:
    """Solve a chunk of heterogeneous multi-hop tasks through templates.

    Backend-partitioned exactly like
    :func:`solve_multihop_template_chunk`.
    """
    return _solve_chain_partitioned(
        [_normalized_heterogeneous_task(task) for task in tasks],
        {
            "template": _templates.solve_heterogeneous_tasks,
            "structured": _templates.solve_heterogeneous_structured_tasks,
        },
    )


def solve_tree_template_chunk(tasks: Sequence[TreeTask]) -> list[TreeSolution]:
    """Solve a chunk of tree tasks through compiled templates.

    Tasks are partitioned by their resolved backend and routed to the
    matching template entry point — direct, lumped or iterative — then
    scattered back to input order, so one chunk can mix backends (a
    sweep crossing the direct cap mid-axis) without extra round trips.
    """
    normalized = [_normalized_tree_task(task) for task in tasks]
    partitions: dict[str, list[int]] = {}
    for position, (_, _, _, backend) in enumerate(normalized):
        partitions.setdefault(backend, []).append(position)
    entry_points = {
        "direct": _templates.solve_tree_tasks,
        "lumped": _templates.solve_tree_lumped_tasks,
        "iterative": _templates.solve_tree_iterative_tasks,
    }
    results: list[TreeSolution] = [None] * len(normalized)
    for backend, positions in partitions.items():
        solved = entry_points[backend](
            [normalized[p][:3] for p in positions]
        )
        for position, solution in zip(positions, solved):
            results[position] = solution
    return results


def solve_gilbert_singlehop_template_chunk(
    tasks: Sequence[GilbertSingleHopTask],
) -> list[GilbertSingleHopSolution]:
    """Solve a chunk of single-hop Gilbert-Elliott tasks through templates."""
    return _templates.solve_gilbert_singlehop_tasks(list(tasks))


def solve_gilbert_multihop_template_chunk(
    tasks: Sequence[GilbertMultiHopTask],
) -> list[GilbertMultiHopSolution]:
    """Solve a chunk of multi-hop Gilbert-Elliott tasks through templates."""
    return _templates.solve_gilbert_multihop_tasks(list(tasks))


def _fan_chunks(chunk_fn, tasks: list, jobs: int | None) -> list:
    """Run ``chunk_fn`` over contiguous task chunks, one per worker.

    Serial execution (one worker) hands the whole list to one template
    batch — maximal batching; parallel execution trades some batching
    for process-level parallelism while keeping deterministic order.
    """
    workers = min(effective_jobs(jobs), len(tasks))
    if workers <= 1:
        return chunk_fn(tasks)
    bounds = [round(i * len(tasks) / workers) for i in range(workers + 1)]
    chunks = [tasks[bounds[i] : bounds[i + 1]] for i in range(workers)]
    chunks = [chunk for chunk in chunks if chunk]
    parts = parallel_map(chunk_fn, chunks, jobs=workers)
    return [solution for part in parts for solution in part]


def _solve_batch(compute_fn, chunk_fn, key_fn, tasks, jobs):
    # compute_fn is the raw (unmemoized) reference solve; chunk_fn the
    # compiled-template batch path.  Memoization happens once here, so
    # batch points are neither double-counted in the cache stats nor
    # double-written to the cache.
    tasks = list(tasks)
    keys = [key_fn(task) for task in tasks]
    cache = global_cache()
    resolved: dict[tuple, object] = {}
    pending: dict[tuple, object] = {}
    for key, task in zip(keys, tasks):
        if key in resolved or key in pending:
            continue
        value = cache.get(key, _MISSING)
        if value is _MISSING:
            pending[key] = task
        else:
            resolved[key] = value
    if pending:
        miss_tasks = list(pending.values())
        if templates_enabled():
            computed = _fan_chunks(chunk_fn, miss_tasks, jobs)
        else:
            computed = parallel_map(compute_fn, miss_tasks, jobs=jobs)
        for key, value in zip(pending, computed):
            cache.put(key, value)
            resolved[key] = value
    return [resolved[key] for key in keys]


def solve_singlehop_batch(
    tasks: Iterable[SingleHopTask], jobs: int | None = None
) -> list[SingleHopSolution]:
    """Solve many single-hop points; results in task order."""
    return _solve_batch(
        _compute_singlehop,
        solve_singlehop_template_chunk,
        _singlehop_key,
        tasks,
        jobs,
    )


def solve_multihop_batch(
    tasks: Iterable[MultiHopTask], jobs: int | None = None
) -> list[MultiHopSolution]:
    """Solve many multi-hop points; results in task order."""
    return _solve_batch(
        _compute_multihop,
        solve_multihop_template_chunk,
        _multihop_key,
        tasks,
        jobs,
    )


def solve_heterogeneous_batch(
    tasks: Iterable[HeterogeneousTask], jobs: int | None = None
) -> list[MultiHopSolution]:
    """Solve many heterogeneous multi-hop points; results in task order."""
    return _solve_batch(
        _compute_heterogeneous,
        solve_heterogeneous_template_chunk,
        _heterogeneous_key,
        tasks,
        jobs,
    )


def solve_tree_batch(
    tasks: Iterable[TreeTask], jobs: int | None = None
) -> list[TreeSolution]:
    """Solve many tree points; results in task order."""
    return _solve_batch(
        _compute_tree,
        solve_tree_template_chunk,
        _tree_key,
        tasks,
        jobs,
    )


def solve_gilbert_singlehop_batch(
    tasks: Iterable[GilbertSingleHopTask], jobs: int | None = None
) -> list[GilbertSingleHopSolution]:
    """Solve many single-hop Gilbert-Elliott points; results in task order."""
    return _solve_batch(
        _compute_gilbert_singlehop,
        solve_gilbert_singlehop_template_chunk,
        _gilbert_singlehop_key,
        tasks,
        jobs,
    )


def solve_gilbert_multihop_batch(
    tasks: Iterable[GilbertMultiHopTask], jobs: int | None = None
) -> list[GilbertMultiHopSolution]:
    """Solve many multi-hop Gilbert-Elliott points; results in task order."""
    return _solve_batch(
        _compute_gilbert_multihop,
        solve_gilbert_multihop_template_chunk,
        _gilbert_multihop_key,
        tasks,
        jobs,
    )


def run_experiment_task(task: tuple[str, bool | str]):
    """Run one whole experiment (pool task for ``repro-signaling all``).

    The task's second element is a fidelity name (``"full"``/``"fast"``/
    ``"smoke"``), or a legacy ``fast`` boolean.  The experiment's
    internal sweeps run serially inside the worker so cross-experiment
    parallelism never nests process pools.
    """
    # The `all` pool task must live below parallel_map to stay
    # picklable, yet runs a whole scenario, which lives above; the
    # lazy import defers that deliberate upward edge to worker call
    # time, so the runtime layer stays import-clean.
    from repro.experiments import run_experiment  # reprolint: disable=RL001 -- deliberate lazy upward edge, see comment

    experiment_id, fidelity = task
    if isinstance(fidelity, bool):
        fidelity = "fast" if fidelity else "full"
    with using_jobs(1):
        return run_experiment(experiment_id, fidelity=fidelity)


def run_experiments(
    experiment_ids: Sequence[str],
    fast: bool = False,
    jobs: int | None = None,
    fidelity: str | None = None,
):
    """Run several experiments, fanned across workers, in input order."""
    if fidelity is None:
        fidelity = "fast" if fast else "full"
    tasks = [(experiment_id, fidelity) for experiment_id in experiment_ids]
    return parallel_map(run_experiment_task, tasks, jobs=jobs)
