"""Content-keyed memo cache for CTMC solves.

Many figures revisit the same ``(model, protocol, parameters)`` point:
Table I and Figs. 4-10 all solve the Kazaa defaults, the sensitivity
grid re-solves each decoding for every claim, and ``repro-signaling
all`` regenerates everything in one process.  Keying solutions by the
*content* of the parameter dataclass (not object identity) makes every
repeat a dictionary hit.

The cache is per-process.  Pool workers each grow their own; batch
helpers in :mod:`repro.runtime.solvers` copy worker results back into
the parent's cache so later figures in the same process still hit.
"""

from __future__ import annotations

import dataclasses
import threading
from collections.abc import Hashable
from typing import Any

__all__ = ["SolveCache", "cache_key", "global_cache"]


def cache_key(kind: str, protocol: Any, params: Any, extra: Hashable = ()) -> tuple:
    """A hashable content key for one solve.

    ``params`` may be a (frozen) dataclass — flattened to its field
    values — or any hashable.  ``extra`` carries model inputs outside
    the parameter object (e.g. a heterogeneous hop vector).
    """
    if dataclasses.is_dataclass(params) and not isinstance(params, type):
        params_key: Hashable = dataclasses.astuple(params)
    else:
        params_key = params
    protocol_key = getattr(protocol, "value", protocol)
    return (kind, protocol_key, params_key, extra)


class SolveCache:
    """A thread-safe bounded memo cache with hit/miss accounting."""

    def __init__(self, maxsize: int | None = 65536) -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError(f"maxsize must be >= 1 or None, got {maxsize}")
        self._maxsize = maxsize
        self._data: dict[tuple, Any] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._data

    def get(self, key: tuple, default: Any = None) -> Any:
        """Look up ``key``, counting the hit or miss."""
        with self._lock:
            if key in self._data:
                self._hits += 1
                return self._data[key]
            self._misses += 1
            return default

    def put(self, key: tuple, value: Any) -> None:
        """Store ``value``; evicts oldest entries beyond ``maxsize``."""
        with self._lock:
            self._data[key] = value
            if self._maxsize is not None:
                while len(self._data) > self._maxsize:
                    self._data.pop(next(iter(self._data)))

    def stats(self) -> dict[str, int]:
        """``{"hits": ..., "misses": ..., "size": ...}``."""
        with self._lock:
            return {"hits": self._hits, "misses": self._misses, "size": len(self._data)}

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._data.clear()
            self._hits = 0
            self._misses = 0


_GLOBAL = SolveCache()


def global_cache() -> SolveCache:
    """The process-wide solve cache used by the batch helpers."""
    return _GLOBAL
