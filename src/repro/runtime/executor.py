"""Process-pool sweep executor with deterministic result ordering.

``parallel_map(fn, items)`` is the single primitive everything else
builds on.  It preserves input order regardless of worker scheduling,
degrades to a plain serial loop when one worker is requested (or when
the platform cannot spawn a pool, e.g. in a sandbox), and resolves the
worker count from, in priority order:

1. the explicit ``jobs=`` argument,
2. the process-wide default set by :func:`configure` / :func:`using_jobs`
   (the CLI's ``--jobs`` flag lands here),
3. the ``REPRO_JOBS`` environment variable,
4. serial (one worker).

Worker processes run sweeps serially (the default is not inherited into
children), so nested parallelism cannot fork-bomb the machine.

The executor is failure tolerant (see ``docs/robustness.md``):

* a task that raises is retried up to ``max_retries`` times with capped
  exponential backoff, on both the serial and the pooled path;
* a pool that stops making progress for ``task_timeout`` seconds is
  torn down (hung workers are terminated) and the unfinished tasks are
  retried on a fresh pool;
* a crashed worker (``BrokenProcessPool``) likewise triggers a pool
  rebuild; after ``_MAX_POOL_REBUILDS`` rebuilds the call degrades to
  the serial path for the remaining items instead of giving up.

Every failure path re-dispatches by *input index*, so the returned list
is bit-identical to a serial, undisturbed run whenever the task
function itself is deterministic.  All events are counted in the
process-wide :class:`FailureReport` (``failure_report()``), which the
CLI prints under ``--verbose``.  The timeout and retry budget resolve
like the job count: explicit argument, then
:func:`configure_tolerance` / :func:`using_tolerance` (the CLI's
``--task-timeout`` / ``--max-retries`` flags), then the
``REPRO_TASK_TIMEOUT`` / ``REPRO_MAX_RETRIES`` environment variables.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import time
from collections.abc import Callable, Iterable, Iterator
from concurrent.futures import FIRST_COMPLETED, CancelledError, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import TypeVar

__all__ = [
    "FailureReport",
    "configure",
    "configure_tolerance",
    "effective_jobs",
    "effective_max_retries",
    "effective_task_timeout",
    "failure_report",
    "parallel_map",
    "using_jobs",
    "using_tolerance",
]

_T = TypeVar("_T")
_R = TypeVar("_R")

_ENV_JOBS = "REPRO_JOBS"
_ENV_TASK_TIMEOUT = "REPRO_TASK_TIMEOUT"
_ENV_MAX_RETRIES = "REPRO_MAX_RETRIES"

_default_jobs: int | None = None
_default_task_timeout: float | None = None
_default_max_retries: int | None = None

#: Retry budget when nothing is configured: one initial attempt plus two
#: retries absorbs transient failures without masking persistent ones.
_DEFAULT_MAX_RETRIES = 2

#: Backoff before retry ``n`` is ``min(_BACKOFF_CAP, _BACKOFF_BASE * 2**(n-1))``
#: seconds — deterministic (no jitter), and monkeypatchable to 0 in tests.
_BACKOFF_BASE = 0.05
_BACKOFF_CAP = 2.0

#: After this many pool teardowns within one ``parallel_map`` call the
#: platform is presumed hostile to pools and the call finishes serially.
_MAX_POOL_REBUILDS = 3

_UNSET = object()


@dataclasses.dataclass
class FailureReport:
    """Process-wide counters of fault-tolerance events.

    ``timeouts``
        pool teardowns because no task completed within the timeout
        window;
    ``retries``
        task re-executions after an exception (serial and pooled);
    ``worker_crashes``
        pool teardowns because a worker process died
        (``BrokenProcessPool``);
    ``degradations``
        ``parallel_map`` calls that finished (or ran entirely) on the
        serial path because a pool could not be (re)built;
    ``solver_fallbacks``
        sparse stationary solves that were recomputed densely (see
        :func:`repro.runtime.solvers.solve_chain_stationary`).
    """

    timeouts: int = 0
    retries: int = 0
    worker_crashes: int = 0
    degradations: int = 0
    solver_fallbacks: int = 0

    @property
    def total(self) -> int:
        """Total number of recorded fault events."""
        return (
            self.timeouts
            + self.retries
            + self.worker_crashes
            + self.degradations
            + self.solver_fallbacks
        )

    def reset(self) -> None:
        """Zero every counter (tests and per-run accounting)."""
        self.timeouts = 0
        self.retries = 0
        self.worker_crashes = 0
        self.degradations = 0
        self.solver_fallbacks = 0

    def summary(self) -> str:
        """One-line rendering for ``--verbose`` output."""
        return (
            f"timeouts={self.timeouts} retries={self.retries} "
            f"worker_crashes={self.worker_crashes} "
            f"degradations={self.degradations} "
            f"solver_fallbacks={self.solver_fallbacks}"
        )


_REPORT = FailureReport()


def failure_report() -> FailureReport:
    """The process-wide fault-event counters (mutable; see ``reset``)."""
    return _REPORT


def _validate_jobs(jobs: int) -> int:
    jobs = int(jobs)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _validate_task_timeout(task_timeout: float) -> float | None:
    task_timeout = float(task_timeout)
    if task_timeout != task_timeout or task_timeout < 0:
        raise ValueError(f"task_timeout must be >= 0 seconds, got {task_timeout}")
    # 0 (and inf) mean "no timeout", so 0 can disable an env setting.
    if task_timeout == 0 or task_timeout == float("inf"):
        return None
    return task_timeout


def _validate_max_retries(max_retries: int) -> int:
    max_retries = int(max_retries)
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    return max_retries


def available_cpus() -> int:
    """CPUs usable by this process (affinity-aware when supported)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def process_pool_usable() -> bool:
    """Whether this platform can actually run a worker pool.

    Sandboxes can forbid process spawning, in which case
    :func:`parallel_map` silently degrades to serial; callers that
    assert on parallel speedups should gate on this.
    """
    try:
        with ProcessPoolExecutor(max_workers=1) as pool:
            return list(pool.map(int, [0])) == [0]
    except Exception:  # noqa: BLE001 - any spawn failure means "no pool"
        return False


def configure(jobs: int | None) -> None:
    """Set the process-wide default worker count (``None`` resets it)."""
    global _default_jobs
    _default_jobs = None if jobs is None else _validate_jobs(jobs)


def configure_tolerance(
    task_timeout: float | None = _UNSET,  # type: ignore[assignment]
    max_retries: int | None = _UNSET,  # type: ignore[assignment]
) -> None:
    """Set the process-wide fault-tolerance defaults.

    Arguments left at the sentinel default are not touched; passing
    ``None`` explicitly resets that knob to its environment/built-in
    default.  ``task_timeout=0`` disables the timeout outright (even
    when the environment sets one).
    """
    global _default_task_timeout, _default_max_retries
    if task_timeout is not _UNSET:
        _default_task_timeout = (
            None if task_timeout is None else float(task_timeout)
        )
        if _default_task_timeout is not None:
            _validate_task_timeout(_default_task_timeout)
    if max_retries is not _UNSET:
        _default_max_retries = (
            None if max_retries is None else _validate_max_retries(max_retries)
        )


def effective_jobs(jobs: int | None = None) -> int:
    """Resolve a ``jobs`` argument against the configured defaults."""
    if jobs is not None:
        return _validate_jobs(jobs)
    if _default_jobs is not None:
        return _default_jobs
    env = os.environ.get(_ENV_JOBS, "").strip()
    if env:
        try:
            return _validate_jobs(int(env))
        except ValueError:
            raise ValueError(f"invalid {_ENV_JOBS}={env!r} (need a positive integer)") from None
    return 1


def effective_task_timeout(task_timeout: float | None = None) -> float | None:
    """Resolve the per-task progress timeout (``None`` = no timeout)."""
    if task_timeout is not None:
        return _validate_task_timeout(task_timeout)
    if _default_task_timeout is not None:
        return _validate_task_timeout(_default_task_timeout)
    env = os.environ.get(_ENV_TASK_TIMEOUT, "").strip()
    if env:
        try:
            return _validate_task_timeout(float(env))
        except ValueError:
            raise ValueError(
                f"invalid {_ENV_TASK_TIMEOUT}={env!r} (need seconds >= 0)"
            ) from None
    return None


def effective_max_retries(max_retries: int | None = None) -> int:
    """Resolve the per-task retry budget (retries after the first try)."""
    if max_retries is not None:
        return _validate_max_retries(max_retries)
    if _default_max_retries is not None:
        return _default_max_retries
    env = os.environ.get(_ENV_MAX_RETRIES, "").strip()
    if env:
        try:
            return _validate_max_retries(int(env))
        except ValueError:
            raise ValueError(
                f"invalid {_ENV_MAX_RETRIES}={env!r} (need an integer >= 0)"
            ) from None
    return _DEFAULT_MAX_RETRIES


@contextlib.contextmanager
def using_jobs(jobs: int | None) -> Iterator[None]:
    """Temporarily set the default worker count (restores on exit)."""
    global _default_jobs
    previous = _default_jobs
    configure(jobs)
    try:
        yield
    finally:
        _default_jobs = previous


@contextlib.contextmanager
def using_tolerance(
    task_timeout: float | None = _UNSET,  # type: ignore[assignment]
    max_retries: int | None = _UNSET,  # type: ignore[assignment]
) -> Iterator[None]:
    """Temporarily set the fault-tolerance defaults (restores on exit)."""
    global _default_task_timeout, _default_max_retries
    previous = (_default_task_timeout, _default_max_retries)
    configure_tolerance(task_timeout, max_retries)
    try:
        yield
    finally:
        _default_task_timeout, _default_max_retries = previous


def _backoff_sleep(attempts: int) -> None:
    delay = min(_BACKOFF_CAP, _BACKOFF_BASE * 2 ** (attempts - 1))
    if delay > 0:
        time.sleep(delay)


def _call_with_retry(
    fn: Callable[[_T], _R],
    item: _T,
    max_retries: int,
    attempts: int = 0,
) -> _R:
    """Run ``fn(item)``, retrying raised exceptions up to the budget."""
    while True:
        try:
            return fn(item)
        except Exception:
            attempts += 1
            if attempts > max_retries:
                raise
            _REPORT.retries += 1
            _backoff_sleep(attempts)


class _HardenedRun:
    """One pooled ``parallel_map`` call: submit, watch, retry, rebuild.

    Results are keyed by input index, so whatever sequence of retries,
    pool rebuilds and serial degradation happens, the output order (and
    for deterministic task functions, the output values) match the
    serial path exactly.
    """

    def __init__(
        self,
        fn: Callable[[_T], _R],
        items: list[_T],
        workers: int,
        task_timeout: float | None,
        max_retries: int,
    ) -> None:
        self._fn = fn
        self._items = items
        self._workers = workers
        self._task_timeout = task_timeout
        self._max_retries = max_retries
        self._results: dict[int, _R] = {}
        self._attempts = [0] * len(items)
        self._pool: ProcessPoolExecutor | None = None
        self._spawned = False
        self._rebuilds = 0

    def run(self) -> list[_R]:
        unfinished = sorted(range(len(self._items)))
        try:
            while unfinished:
                if self._pool is None and not self._acquire_pool():
                    self._finish_serial(unfinished)
                    break
                unfinished = self._drain(unfinished)
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
        finally:
            self._discard_pool()
        return [self._results[index] for index in range(len(self._items))]

    def _acquire_pool(self) -> bool:
        if self._spawned:
            self._rebuilds += 1
            if self._rebuilds > _MAX_POOL_REBUILDS:
                _REPORT.degradations += 1
                return False
        try:
            self._pool = ProcessPoolExecutor(max_workers=self._workers)
        except (OSError, PermissionError, ValueError):
            # Pool creation can fail on restricted platforms; the sweep
            # is still correct serially.
            _REPORT.degradations += 1
            return False
        self._spawned = True
        return True

    def _discard_pool(self) -> None:
        """Abandon the current pool, terminating any hung workers."""
        pool = self._pool
        self._pool = None
        if pool is None:
            return
        processes = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            if process.is_alive():
                process.terminate()

    def _bump_attempts(self, index: int, exc: BaseException) -> None:
        """Charge one attempt to ``index``; re-raise once over budget."""
        self._attempts[index] += 1
        if self._attempts[index] > self._max_retries:
            self._discard_pool()
            raise exc

    def _drain(self, unfinished: list[int]) -> list[int]:
        """Run one pool generation; return the indices still unfinished."""
        remaining = set(unfinished)
        futures: dict[object, int] = {}
        try:
            for index in unfinished:
                futures[self._pool.submit(self._fn, self._items[index])] = index
        except (BrokenProcessPool, RuntimeError) as exc:
            self._note_crash(min(remaining), exc)
            return sorted(remaining)
        while futures:
            done, _ = wait(
                set(futures), timeout=self._task_timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                self._note_hang(futures)
                return sorted(remaining)
            for future in done:
                index = futures.pop(future)
                try:
                    self._results[index] = future.result()
                    remaining.discard(index)
                except (BrokenProcessPool, CancelledError) as exc:
                    self._note_crash(index, exc)
                    return sorted(remaining)
                except Exception as exc:
                    self._bump_attempts(index, exc)
                    _REPORT.retries += 1
                    _backoff_sleep(self._attempts[index])
                    try:
                        futures[self._pool.submit(self._fn, self._items[index])] = index
                    except (BrokenProcessPool, RuntimeError) as submit_exc:
                        self._note_crash(index, submit_exc)
                        return sorted(remaining)
        return sorted(remaining)

    def _note_crash(self, index: int, exc: BaseException) -> None:
        """A worker (or the whole pool) died while ``index`` was in flight."""
        _REPORT.worker_crashes += 1
        self._bump_attempts(index, exc)
        self._discard_pool()

    def _note_hang(self, futures: dict[object, int]) -> None:
        """No task finished within the timeout window: the pool is stuck.

        Only *running* tasks are charged an attempt — queued tasks are
        innocent bystanders and keep their retry budget.
        """
        _REPORT.timeouts += 1
        hung = sorted(index for future, index in futures.items() if future.running())
        if not hung:
            hung = sorted(futures.values())
        for index in hung:
            self._bump_attempts(
                index,
                TimeoutError(
                    f"task {index} made no progress within "
                    f"{self._task_timeout}s (attempt {self._attempts[index] + 1})"
                ),
            )
        self._discard_pool()

    def _finish_serial(self, unfinished: list[int]) -> None:
        """Graceful degradation: run the leftover tasks in-process."""
        for index in unfinished:
            self._results[index] = _call_with_retry(
                self._fn, self._items[index], self._max_retries, self._attempts[index]
            )


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    jobs: int | None = None,
    chunksize: int | None = None,
    task_timeout: float | None = None,
    max_retries: int | None = None,
) -> list[_R]:
    """Apply ``fn`` to every item, in order, optionally across processes.

    Results are returned in input order regardless of worker scheduling
    and of any retries, pool rebuilds or serial degradation along the
    way, so a parallel sweep renders byte-identically to a serial one.
    ``fn`` and the items must be picklable when ``jobs > 1``; use the
    module-level task functions in :mod:`repro.runtime.solvers`.

    ``chunksize`` is accepted for backward compatibility but ignored:
    tasks are dispatched per item so that timeouts, retries and pool
    rebuilds can be charged to individual inputs.
    """
    del chunksize
    materialized = list(items)
    workers = min(effective_jobs(jobs), len(materialized))
    timeout = effective_task_timeout(task_timeout)
    retries = effective_max_retries(max_retries)
    if workers <= 1:
        return [_call_with_retry(fn, item, retries) for item in materialized]
    return _HardenedRun(fn, materialized, workers, timeout, retries).run()
