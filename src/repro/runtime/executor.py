"""Process-pool sweep executor with deterministic result ordering.

``parallel_map(fn, items)`` is the single primitive everything else
builds on.  It preserves input order (``ProcessPoolExecutor.map``
semantics), degrades to a plain serial loop when one worker is
requested (or when the platform cannot spawn a pool, e.g. in a
sandbox), and resolves the worker count from, in priority order:

1. the explicit ``jobs=`` argument,
2. the process-wide default set by :func:`configure` / :func:`using_jobs`
   (the CLI's ``--jobs`` flag lands here),
3. the ``REPRO_JOBS`` environment variable,
4. serial (one worker).

Worker processes run sweeps serially (the default is not inherited into
children), so nested parallelism cannot fork-bomb the machine.
"""

from __future__ import annotations

import contextlib
import math
import os
from collections.abc import Callable, Iterable, Iterator
from concurrent.futures import ProcessPoolExecutor
from typing import TypeVar

__all__ = ["configure", "effective_jobs", "parallel_map", "using_jobs"]

_T = TypeVar("_T")
_R = TypeVar("_R")

_ENV_JOBS = "REPRO_JOBS"
_default_jobs: int | None = None


def _validate_jobs(jobs: int) -> int:
    jobs = int(jobs)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def available_cpus() -> int:
    """CPUs usable by this process (affinity-aware when supported)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def process_pool_usable() -> bool:
    """Whether this platform can actually run a worker pool.

    Sandboxes can forbid process spawning, in which case
    :func:`parallel_map` silently degrades to serial; callers that
    assert on parallel speedups should gate on this.
    """
    try:
        with ProcessPoolExecutor(max_workers=1) as pool:
            return list(pool.map(int, [0])) == [0]
    except Exception:  # noqa: BLE001 - any spawn failure means "no pool"
        return False


def configure(jobs: int | None) -> None:
    """Set the process-wide default worker count (``None`` resets it)."""
    global _default_jobs
    _default_jobs = None if jobs is None else _validate_jobs(jobs)


def effective_jobs(jobs: int | None = None) -> int:
    """Resolve a ``jobs`` argument against the configured defaults."""
    if jobs is not None:
        return _validate_jobs(jobs)
    if _default_jobs is not None:
        return _default_jobs
    env = os.environ.get(_ENV_JOBS, "").strip()
    if env:
        try:
            return _validate_jobs(int(env))
        except ValueError:
            raise ValueError(f"invalid {_ENV_JOBS}={env!r} (need a positive integer)") from None
    return 1


@contextlib.contextmanager
def using_jobs(jobs: int | None) -> Iterator[None]:
    """Temporarily set the default worker count (restores on exit)."""
    global _default_jobs
    previous = _default_jobs
    configure(jobs)
    try:
        yield
    finally:
        _default_jobs = previous


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    jobs: int | None = None,
    chunksize: int | None = None,
) -> list[_R]:
    """Apply ``fn`` to every item, in order, optionally across processes.

    Results are returned in input order regardless of worker scheduling,
    so a parallel sweep renders byte-identically to a serial one.  ``fn``
    and the items must be picklable when ``jobs > 1``; use the
    module-level task functions in :mod:`repro.runtime.solvers`.
    """
    materialized = list(items)
    workers = min(effective_jobs(jobs), len(materialized))
    if workers <= 1:
        return [fn(item) for item in materialized]
    if chunksize is None:
        # ~4 chunks per worker balances scheduling against pickling.
        chunksize = max(1, math.ceil(len(materialized) / (workers * 4)))
    try:
        pool = ProcessPoolExecutor(max_workers=workers)
    except (OSError, PermissionError, ValueError):
        # Pool creation can fail on restricted platforms; the sweep is
        # still correct serially.
        return [fn(item) for item in materialized]
    with pool:
        return list(pool.map(fn, materialized, chunksize=chunksize))
