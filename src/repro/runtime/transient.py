"""Memo-cached transient entry points.

The transient layer's compute functions
(:mod:`repro.transient.curves`) are pure; these wrappers give the
executor and validation plan the same content-keyed memoization the
stationary solvers get from :mod:`repro.runtime.cache`: a recovery
curve evaluated by the sweep, the invariant checks and the CLI is
propagated once per ``(protocol, parameters, timeline, grid)``.

Tasks are plain data tuples (picklable, hashable)::

    (protocol, params, topology | None, initial, faults | None, times)

where ``initial`` is ``"empty"`` or ``"stationary"``, ``faults`` is a
frozen :class:`~repro.faults.schedule.FaultSchedule` and ``times`` is
a sorted tuple of grid times.  Both entry points are registered in
:data:`repro.validation.parity.PARITY_CLASSES` as ``tolerance``:
uniformization truncates a Poisson series, so results agree with the
dense ``expm`` oracle to tolerance, not bit-exactly (see
``docs/transient.md``).
"""

from __future__ import annotations

from repro.core.multihop.topology import Topology
from repro.core.parameters import MultiHopParameters, SignalingParameters
from repro.core.protocols import Protocol
from repro.faults.schedule import FaultSchedule
from repro.runtime.cache import cache_key, global_cache
from repro.transient.curves import (
    TransientCurve,
    compute_transient_curve,
    compute_transient_point,
)

__all__ = [
    "solve_transient_curve",
    "solve_transient_point",
]

_MISSING = object()

TransientTask = tuple[
    Protocol,
    SignalingParameters | MultiHopParameters,
    Topology | None,
    str,
    FaultSchedule | None,
    tuple[float, ...],
]


def _task_key(kind: str, task: TransientTask):
    protocol, params, topology, initial, faults, times = task
    return cache_key(
        kind,
        protocol,
        params,
        extra=(topology, initial, faults, tuple(times)),
    )


def _memoized(key, compute):
    cache = global_cache()
    value = cache.get(key, _MISSING)
    if value is _MISSING:
        value = compute()
        cache.put(key, value)
    return value


def solve_transient_curve(task: TransientTask) -> TransientCurve:
    """Consistency curve for one task tuple, memo-cached."""
    protocol, params, topology, initial, faults, times = task
    return _memoized(
        _task_key("transient_curve", task),
        lambda: compute_transient_curve(
            protocol,
            params,
            tuple(times),
            initial=initial,
            faults=faults,
            topology=topology,
        ),
    )


def solve_transient_point(task: TransientTask) -> float:
    """Consistency probability at one time, memo-cached.

    The task's ``times`` must hold exactly one grid time.
    """
    protocol, params, topology, initial, faults, times = task
    if len(times) != 1:
        raise ValueError(f"point task needs exactly one time, got {len(times)}")
    return _memoized(
        _task_key("transient_point", task),
        lambda: compute_transient_point(
            protocol,
            params,
            float(times[0]),
            initial=initial,
            faults=faults,
            topology=topology,
        ),
    )
