"""Figure 9 — message overhead vs inconsistency tradeoff (vary R).

Sweeping the refresh timer traces each protocol's achievable
(inconsistency, message-overhead) frontier.  HS uses no refresh timer,
so it is a single point.  Paper claim: SS+RTR's consistency is almost
insensitive to the refresh rate, while the other soft-state protocols
trade consistency against overhead along their curves.
"""

from __future__ import annotations

from repro.core.protocols import Protocol
from repro.experiments.spec import (
    Axis,
    FidelityProfile,
    PanelSpec,
    ScenarioSpec,
    SeriesPlan,
    register_scenario,
)

EXPERIMENT_ID = "fig9"
TITLE = "Fig. 9: tradeoff between inconsistency ratio and message rate (varying R)"

SPEC = register_scenario(
    ScenarioSpec(
        scenario_id=EXPERIMENT_ID,
        title=TITLE,
        artifact="Fig. 9",
        family="singlehop",
        preset="kazaa",
        protocols=tuple(Protocol),
        axes=(Axis("refresh_interval", "geometric", low=0.1, high=100.0, points=22),),
        panels=(
            PanelSpec(
                name="tradeoff",
                x_label="inconsistency ratio I",
                y_label="message overhead M",
                plans=(
                    SeriesPlan(
                        "parametric",
                        axis="refresh_interval",
                        binder="coupled_timers",
                        x_metric="inconsistency_ratio",
                        y_metric="normalized_message_rate",
                        protocols=Protocol.soft_state_family(),
                    ),
                    SeriesPlan(
                        "point",
                        x_metric="inconsistency_ratio",
                        y_metric="normalized_message_rate",
                        protocols=(Protocol.HS,),
                    ),
                ),
                log_x=True,
                log_y=True,
                shared_x=False,
            ),
        ),
        fidelities=(
            FidelityProfile("full"),
            FidelityProfile("fast", axis_points={"refresh_interval": 9}),
            FidelityProfile("smoke", axis_points={"refresh_interval": 4}),
        ),
        notes=("HS does not vary with R and appears as a single point.",),
    )
)
