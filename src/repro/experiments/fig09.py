"""Figure 9 — message overhead vs inconsistency tradeoff (vary R).

Sweeping the refresh timer traces each protocol's achievable
(inconsistency, message-overhead) frontier.  HS uses no refresh timer,
so it is a single point.  Paper claim: SS+RTR's consistency is almost
insensitive to the refresh rate, while the other soft-state protocols
trade consistency against overhead along their curves.
"""

from __future__ import annotations

from repro.core.parameters import kazaa_defaults
from repro.core.protocols import Protocol
from repro.core.singlehop import SingleHopModel
from repro.experiments.common import parametric_singlehop_series
from repro.experiments.runner import (
    ExperimentResult,
    Panel,
    Series,
    geometric_sweep,
    register,
)

EXPERIMENT_ID = "fig9"
TITLE = "Fig. 9: tradeoff between inconsistency ratio and message rate (varying R)"


@register(EXPERIMENT_ID)
def run(fast: bool = False) -> ExperimentResult:
    """Trace the I-vs-M frontier by sweeping R (T = 3R)."""
    base = kazaa_defaults()
    sweep = geometric_sweep(0.1, 100.0, 9 if fast else 22)
    soft = parametric_singlehop_series(
        sweep,
        lambda r: base.with_coupled_timers(r),
        x_metric=lambda sol: sol.inconsistency_ratio,
        y_metric=lambda sol: sol.normalized_message_rate,
        protocols=Protocol.soft_state_family(),
    )
    hs_solution = SingleHopModel(Protocol.HS, base).solve()
    hs_point = Series(
        Protocol.HS.value,
        (hs_solution.inconsistency_ratio,),
        (hs_solution.normalized_message_rate,),
    )
    panel = Panel(
        name="tradeoff",
        x_label="inconsistency ratio I",
        y_label="message overhead M",
        series=tuple(soft) + (hs_point,),
        log_x=True,
        log_y=True,
        shared_x=False,
    )
    notes = ("HS does not vary with R and appears as a single point.",)
    return ExperimentResult(EXPERIMENT_ID, TITLE, (panel,), notes)
