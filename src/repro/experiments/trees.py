"""Tree-topology scenarios — multicast fan-out, beyond the paper.

The paper's multi-hop analysis covers one linear chain of relays; a
gossip/multicast dissemination setting (PAPERS.md, Femminella et al.)
distributes the same soft state down a *tree*: the sender at the root,
receivers at the leaves, every edge an independent lossy hop.  Two
scenarios probe the new workload class:

* ``tree_fanout`` — widen the tree at fixed depth: a ``k``-leaf star
  against a broom (two-hop access path into a ``k``-way replication
  point), sweeping ``k``.  Fan-out multiplies frontier edges, so the
  any-leaf inconsistency grows with ``k`` while the *mean* leaf barely
  moves — exactly the aggregation question chains cannot ask.
* ``tree_depth`` — deepen the tree at fixed fan-out: the maximally
  skewed (caterpillar) binary tree and a broom (spine into one final
  2-way split) sweep depth 1..4, while the complete binary tree runs
  on its own short axis in the same panels (``shared_x=False``) —
  historically capped at depth 2 by
  :data:`~repro.core.multihop.tree_states.MAX_TREE_STATES`, and kept
  there so the scenario's numbers stay on the exact direct path.
* ``tree_deep`` — past the 4096-state wall: complete binary trees to
  depth 3 (15129 raw states → 741 orbits) and ternary trees to depth 2
  (24389 → 364) solve *exactly* through the sibling-subtree lumping of
  :mod:`repro.core.multihop.lumping`, while deep caterpillars — whose
  orbits barely compress — cross into the ILU/GMRES iterative backend
  at depth 8.
* ``tree_wide`` — fan-outs to 64: a ``k``-leaf star's ``3^k`` raw
  states collapse to ``C(k+2, 2)`` orbits, so widths that would be
  astronomically unsolvable directly (``3^64`` states) are a few
  thousand lumped states.

All run SS, SS+RT and HS through the compiled tree-template batch
path with per-topology backend auto-routing
(:func:`~repro.core.multihop.lumping.select_tree_backend`); fan-out-1
/ depth-1 points are unary trees and therefore bit-identical to the
chain model (see :func:`repro.validation.parity.tree_parity_checks`).
"""

from __future__ import annotations

from repro.core.multihop.topology import Topology
from repro.core.protocols import Protocol
from repro.experiments.spec import (
    Axis,
    FidelityProfile,
    PanelSpec,
    ScenarioSpec,
    SeriesPlan,
    register_binder,
    register_metric,
    register_scenario,
)

__all__ = ["DEEP_SPEC", "DEPTH_SPEC", "FANOUT_SPEC", "WIDE_SPEC"]

#: Swept fan-outs.  A ``k``-leaf star has ``3^k`` states, so the full
#: sweep tops out at 729-state chains (sparse-template territory).
FANOUT_VALUES = (1, 2, 3, 4, 5, 6)
FAST_FANOUT_VALUES = (1, 2, 4)
SMOKE_FANOUT_VALUES = (1, 2)

#: Swept depths for the cheap deep shapes (skewed / broom).
DEPTH_VALUES = (1, 2, 3, 4)
FAST_DEPTH_VALUES = (1, 2, 3)
SMOKE_DEPTH_VALUES = (1, 2)

#: Swept depths for the complete binary tree in ``tree_depth``, whose
#: raw state count is doubly exponential in depth (121 states at depth
#: 2, 15129 at depth 3).  Depth 3 is solvable now — exactly, through
#: the orbit lumping — but routes off the direct bit-parity path, so
#: ``tree_depth`` stays at depth 2 and ``tree_deep`` owns the deeper
#: axis.
BINARY_DEPTH_VALUES = (1, 2)

#: ``tree_deep`` axes: binary to depth 3 (741 orbits), ternary to
#: depth 2 (364 orbits) — both exact via lumping — and caterpillars to
#: depth 8 (8747 raw states, trivial orbits, iterative backend).
DEEP_BINARY_DEPTH_VALUES = (1, 2, 3)
DEEP_TERNARY_DEPTH_VALUES = (1, 2)
DEEP_SKEWED_DEPTH_VALUES = (5, 6, 7, 8)
FAST_DEEP_SKEWED_DEPTH_VALUES = (5, 6, 7)
SMOKE_DEEP_SKEWED_DEPTH_VALUES = (5, 6)

#: ``tree_wide`` fan-outs: ``star(64)`` has ``3^64`` raw states and
#: 2211 orbits.
WIDE_FANOUT_VALUES = (8, 16, 32, 48, 64)
FAST_WIDE_FANOUT_VALUES = (8, 32)
SMOKE_WIDE_FANOUT_VALUES = (8,)


def _tree_point(base, topology: Topology):
    """Bind a topology to the base preset (``hops`` tracks edge count)."""
    return base.replace(hops=topology.num_edges), topology


@register_binder("tree_star")
def _bind_star(base, fanout: float):
    """Fan-out ``k`` as a ``k``-leaf star (depth 1)."""
    return _tree_point(base, Topology.star(int(fanout)))


@register_binder("tree_broom")
def _bind_broom(base, fanout: float):
    """Fan-out ``k`` behind a two-hop access path (broom)."""
    return _tree_point(base, Topology.broom(2, int(fanout)))


@register_binder("tree_binary")
def _bind_binary(base, depth: float):
    """Depth ``d`` as the complete binary tree."""
    return _tree_point(base, Topology.kary(2, int(depth)))


@register_binder("tree_skewed")
def _bind_skewed(base, depth: float):
    """Depth ``d`` as the maximally skewed (caterpillar) binary tree."""
    return _tree_point(base, Topology.skewed(int(depth)))


@register_binder("tree_ternary")
def _bind_ternary(base, depth: float):
    """Depth ``d`` as the complete ternary tree."""
    return _tree_point(base, Topology.kary(3, int(depth)))


@register_binder("tree_spine")
def _bind_spine(base, depth: float):
    """Depth ``d`` as a broom: a spine into one final 2-way split.

    Depth 1 degenerates to the 2-leaf star so every swept point has
    maximum leaf depth exactly ``d``.
    """
    d = int(depth)
    topology = Topology.star(2) if d == 1 else Topology.broom(d - 1, 2)
    return _tree_point(base, topology)


register_metric(
    "mean_leaf_inconsistency", lambda solution: solution.mean_leaf_inconsistency
)
register_metric(
    "fanout_weighted_inconsistency",
    lambda solution: solution.fanout_weighted_inconsistency,
)


def _fidelities(fast_values, smoke_values, axis: str) -> tuple[FidelityProfile, ...]:
    return (
        FidelityProfile("full"),
        FidelityProfile(
            "fast", axis_values={axis: tuple(float(v) for v in fast_values)}
        ),
        FidelityProfile(
            "smoke", axis_values={axis: tuple(float(v) for v in smoke_values)}
        ),
    )


FANOUT_SPEC = register_scenario(
    ScenarioSpec(
        scenario_id="tree_fanout",
        title="Tree fan-out: star vs broom multicast distribution (beyond the paper)",
        artifact="beyond the paper",
        family="tree",
        preset="reservation",
        protocols=Protocol.multihop_family(),
        axes=(
            Axis(
                "fanout",
                "explicit",
                values=tuple(float(v) for v in FANOUT_VALUES),
            ),
        ),
        panels=(
            PanelSpec(
                name="a: any-leaf inconsistency",
                x_label="fan-out k",
                y_label="inconsistency ratio I (any leaf)",
                plans=(
                    SeriesPlan(
                        "sweep",
                        axis="fanout",
                        binder="tree_star",
                        metric="inconsistency_ratio",
                        label_suffix=" star",
                    ),
                    SeriesPlan(
                        "sweep",
                        axis="fanout",
                        binder="tree_broom",
                        metric="inconsistency_ratio",
                        label_suffix=" broom",
                    ),
                ),
                log_y=True,
            ),
            PanelSpec(
                name="b: mean leaf inconsistency",
                x_label="fan-out k",
                y_label="mean per-leaf inconsistency",
                plans=(
                    SeriesPlan(
                        "sweep",
                        axis="fanout",
                        binder="tree_star",
                        metric="mean_leaf_inconsistency",
                        label_suffix=" star",
                    ),
                    SeriesPlan(
                        "sweep",
                        axis="fanout",
                        binder="tree_broom",
                        metric="mean_leaf_inconsistency",
                        label_suffix=" broom",
                    ),
                ),
                log_y=True,
            ),
            PanelSpec(
                name="c: signaling message rate",
                x_label="fan-out k",
                y_label="per-link transmissions per second",
                plans=(
                    SeriesPlan(
                        "sweep",
                        axis="fanout",
                        binder="tree_star",
                        metric="message_rate",
                        label_suffix=" star",
                    ),
                    SeriesPlan(
                        "sweep",
                        axis="fanout",
                        binder="tree_broom",
                        metric="message_rate",
                        label_suffix=" broom",
                    ),
                ),
            ),
        ),
        fidelities=_fidelities(FAST_FANOUT_VALUES, SMOKE_FANOUT_VALUES, "fanout"),
        notes=(
            "star: k receivers directly under the sender; "
            "broom: a 2-hop access path into a k-way replication point",
            "fan-out 1 points are unary trees, bit-identical to the chain model",
        ),
    )
)


def _depth_panel(name: str, y_label: str, metric: str, log_y: bool) -> PanelSpec:
    """One depth panel: skewed and spine on the deep axis, the complete
    binary tree on its own short axis (``shared_x=False``)."""
    return PanelSpec(
        name=name,
        x_label="tree depth d",
        y_label=y_label,
        plans=(
            SeriesPlan(
                "sweep",
                axis="depth",
                binder="tree_skewed",
                metric=metric,
                label_suffix=" skewed",
            ),
            SeriesPlan(
                "sweep",
                axis="depth",
                binder="tree_spine",
                metric=metric,
                label_suffix=" spine",
            ),
            SeriesPlan(
                "sweep",
                axis="binary_depth",
                binder="tree_binary",
                metric=metric,
                label_suffix=" binary",
            ),
        ),
        log_y=log_y,
        shared_x=False,
    )


DEPTH_SPEC = register_scenario(
    ScenarioSpec(
        scenario_id="tree_depth",
        title="Tree depth: balanced vs skewed binary distribution (beyond the paper)",
        artifact="beyond the paper",
        family="tree",
        preset="reservation",
        protocols=Protocol.multihop_family(),
        axes=(
            Axis(
                "depth",
                "explicit",
                values=tuple(float(v) for v in DEPTH_VALUES),
            ),
            Axis(
                "binary_depth",
                "explicit",
                values=tuple(float(v) for v in BINARY_DEPTH_VALUES),
            ),
        ),
        panels=(
            _depth_panel(
                "a: any-leaf inconsistency",
                "inconsistency ratio I (any leaf)",
                "inconsistency_ratio",
                log_y=True,
            ),
            _depth_panel(
                "b: fan-out-weighted inconsistency",
                "fan-out-weighted leaf inconsistency",
                "fanout_weighted_inconsistency",
                log_y=True,
            ),
            _depth_panel(
                "c: signaling message rate",
                "per-link transmissions per second",
                "message_rate",
                log_y=False,
            ),
        ),
        fidelities=(
            FidelityProfile("full"),
            FidelityProfile(
                "fast",
                axis_values={
                    "depth": tuple(float(v) for v in FAST_DEPTH_VALUES)
                },
            ),
            FidelityProfile(
                "smoke",
                axis_values={
                    "depth": tuple(float(v) for v in SMOKE_DEPTH_VALUES)
                },
            ),
        ),
        notes=(
            "skewed: a d-link backbone with one side leaf per internal node; "
            "spine: a (d-1)-link path into one 2-way split; binary: the "
            "complete 2-ary tree (own axis — its state space is exponential "
            "in depth; depth >= 3 leaves the direct bit-parity path and is "
            "swept by tree_deep via the exact lumped backend)",
            "skewed depth 1 is the single-hop chain (unary points are "
            "bit-identical to the chain model); spine depth 1 is the "
            "2-leaf star",
        ),
    )
)


def _deep_panel(name: str, y_label: str, metric: str, log_y: bool) -> PanelSpec:
    """One deep panel: balanced binary / ternary trees on their own
    short lumped axes, the deep caterpillar on the iterative-reaching
    axis (``shared_x=False``)."""
    return PanelSpec(
        name=name,
        x_label="tree depth d",
        y_label=y_label,
        plans=(
            SeriesPlan(
                "sweep",
                axis="binary_depth",
                binder="tree_binary",
                metric=metric,
                label_suffix=" binary",
            ),
            SeriesPlan(
                "sweep",
                axis="ternary_depth",
                binder="tree_ternary",
                metric=metric,
                label_suffix=" ternary",
            ),
            SeriesPlan(
                "sweep",
                axis="skewed_depth",
                binder="tree_skewed",
                metric=metric,
                label_suffix=" skewed",
            ),
        ),
        log_y=log_y,
        shared_x=False,
    )


DEEP_SPEC = register_scenario(
    ScenarioSpec(
        scenario_id="tree_deep",
        title="Deep trees past the state-space wall: lumped and iterative backends (beyond the paper)",
        artifact="beyond the paper",
        family="tree",
        preset="reservation",
        protocols=Protocol.multihop_family(),
        axes=(
            Axis(
                "binary_depth",
                "explicit",
                values=tuple(float(v) for v in DEEP_BINARY_DEPTH_VALUES),
            ),
            Axis(
                "ternary_depth",
                "explicit",
                values=tuple(float(v) for v in DEEP_TERNARY_DEPTH_VALUES),
            ),
            Axis(
                "skewed_depth",
                "explicit",
                values=tuple(float(v) for v in DEEP_SKEWED_DEPTH_VALUES),
            ),
        ),
        panels=(
            _deep_panel(
                "a: any-leaf inconsistency",
                "inconsistency ratio I (any leaf)",
                "inconsistency_ratio",
                log_y=True,
            ),
            _deep_panel(
                "b: mean leaf inconsistency",
                "mean per-leaf inconsistency",
                "mean_leaf_inconsistency",
                log_y=True,
            ),
            _deep_panel(
                "c: signaling message rate",
                "per-link transmissions per second",
                "message_rate",
                log_y=False,
            ),
        ),
        fidelities=(
            FidelityProfile("full"),
            FidelityProfile(
                "fast",
                axis_values={
                    "skewed_depth": tuple(
                        float(v) for v in FAST_DEEP_SKEWED_DEPTH_VALUES
                    )
                },
            ),
            FidelityProfile(
                "smoke",
                axis_values={
                    "binary_depth": (1.0, 2.0),
                    "ternary_depth": (1.0,),
                    "skewed_depth": tuple(
                        float(v) for v in SMOKE_DEEP_SKEWED_DEPTH_VALUES
                    ),
                },
            ),
        ),
        notes=(
            "binary depth 3 (15129 raw states) and ternary depth 2 (24389) "
            "solve exactly through sibling-subtree lumping (741 / 364 "
            "orbits); skewed depth 8 (8747 raw states, near-trivial orbits) "
            "routes to the ILU-preconditioned iterative backend",
            "smoke trims every axis below the lumped/iterative crossovers; "
            "fast keeps the lumped points and stops the caterpillar at "
            "depth 7 (direct backend)",
        ),
    )
)


def _wide_panel(name: str, y_label: str, metric: str, log_y: bool) -> PanelSpec:
    """One wide panel: star and broom sweeping large fan-outs."""
    return PanelSpec(
        name=name,
        x_label="fan-out k",
        y_label=y_label,
        plans=(
            SeriesPlan(
                "sweep",
                axis="fanout",
                binder="tree_star",
                metric=metric,
                label_suffix=" star",
            ),
            SeriesPlan(
                "sweep",
                axis="fanout",
                binder="tree_broom",
                metric=metric,
                label_suffix=" broom",
            ),
        ),
        log_y=log_y,
    )


WIDE_SPEC = register_scenario(
    ScenarioSpec(
        scenario_id="tree_wide",
        title="Wide multicast fan-out via exact lumping: stars and brooms to k=64 (beyond the paper)",
        artifact="beyond the paper",
        family="tree",
        preset="reservation",
        protocols=Protocol.multihop_family(),
        axes=(
            Axis(
                "fanout",
                "explicit",
                values=tuple(float(v) for v in WIDE_FANOUT_VALUES),
            ),
        ),
        panels=(
            _wide_panel(
                "a: any-leaf inconsistency",
                "inconsistency ratio I (any leaf)",
                "inconsistency_ratio",
                log_y=True,
            ),
            _wide_panel(
                "b: mean leaf inconsistency",
                "mean per-leaf inconsistency",
                "mean_leaf_inconsistency",
                log_y=True,
            ),
            _wide_panel(
                "c: signaling message rate",
                "per-link transmissions per second",
                "message_rate",
                log_y=False,
            ),
        ),
        fidelities=_fidelities(
            FAST_WIDE_FANOUT_VALUES, SMOKE_WIDE_FANOUT_VALUES, "fanout"
        ),
        notes=(
            "a k-leaf star's 3^k raw states collapse to C(k+2, 2) orbits "
            "under leaf exchangeability, so star(64) — 3^64 raw states — is "
            "a 2211-orbit exact solve",
            "every point here routes to the lumped backend; none are "
            "reachable by direct enumeration beyond k=7",
        ),
    )
)
