"""Tree-topology scenarios — multicast fan-out, beyond the paper.

The paper's multi-hop analysis covers one linear chain of relays; a
gossip/multicast dissemination setting (PAPERS.md, Femminella et al.)
distributes the same soft state down a *tree*: the sender at the root,
receivers at the leaves, every edge an independent lossy hop.  Two
scenarios probe the new workload class:

* ``tree_fanout`` — widen the tree at fixed depth: a ``k``-leaf star
  against a broom (two-hop access path into a ``k``-way replication
  point), sweeping ``k``.  Fan-out multiplies frontier edges, so the
  any-leaf inconsistency grows with ``k`` while the *mean* leaf barely
  moves — exactly the aggregation question chains cannot ask.
* ``tree_depth`` — deepen the tree at fixed fan-out: the maximally
  skewed (caterpillar) binary tree and a broom (spine into one final
  2-way split) sweep depth 1..4, while the complete binary tree —
  whose state space is exponential in depth and whose generator's LU
  fill-in walls off depth >= 3 (see
  :data:`~repro.core.multihop.tree_states.MAX_TREE_STATES`) — runs on
  its own short axis in the same panels (``shared_x=False``).

Both run SS, SS+RT and HS through the compiled tree-template batch
path; fan-out-1 / depth-1 points are unary trees and therefore
bit-identical to the chain model (see
:func:`repro.validation.parity.tree_parity_checks`).
"""

from __future__ import annotations

from repro.core.multihop.topology import Topology
from repro.core.protocols import Protocol
from repro.experiments.spec import (
    Axis,
    FidelityProfile,
    PanelSpec,
    ScenarioSpec,
    SeriesPlan,
    register_binder,
    register_metric,
    register_scenario,
)

__all__ = ["DEPTH_SPEC", "FANOUT_SPEC"]

#: Swept fan-outs.  A ``k``-leaf star has ``3^k`` states, so the full
#: sweep tops out at 729-state chains (sparse-template territory).
FANOUT_VALUES = (1, 2, 3, 4, 5, 6)
FAST_FANOUT_VALUES = (1, 2, 4)
SMOKE_FANOUT_VALUES = (1, 2)

#: Swept depths for the cheap deep shapes (skewed / broom).
DEPTH_VALUES = (1, 2, 3, 4)
FAST_DEPTH_VALUES = (1, 2, 3)
SMOKE_DEPTH_VALUES = (1, 2)

#: Swept depths for the complete binary tree, whose state count is
#: doubly exponential in depth (121 states at depth 2, 15129 at depth
#: 3 — beyond the solvable cap).
BINARY_DEPTH_VALUES = (1, 2)


def _tree_point(base, topology: Topology):
    """Bind a topology to the base preset (``hops`` tracks edge count)."""
    return base.replace(hops=topology.num_edges), topology


@register_binder("tree_star")
def _bind_star(base, fanout: float):
    """Fan-out ``k`` as a ``k``-leaf star (depth 1)."""
    return _tree_point(base, Topology.star(int(fanout)))


@register_binder("tree_broom")
def _bind_broom(base, fanout: float):
    """Fan-out ``k`` behind a two-hop access path (broom)."""
    return _tree_point(base, Topology.broom(2, int(fanout)))


@register_binder("tree_binary")
def _bind_binary(base, depth: float):
    """Depth ``d`` as the complete binary tree."""
    return _tree_point(base, Topology.kary(2, int(depth)))


@register_binder("tree_skewed")
def _bind_skewed(base, depth: float):
    """Depth ``d`` as the maximally skewed (caterpillar) binary tree."""
    return _tree_point(base, Topology.skewed(int(depth)))


@register_binder("tree_spine")
def _bind_spine(base, depth: float):
    """Depth ``d`` as a broom: a spine into one final 2-way split.

    Depth 1 degenerates to the 2-leaf star so every swept point has
    maximum leaf depth exactly ``d``.
    """
    d = int(depth)
    topology = Topology.star(2) if d == 1 else Topology.broom(d - 1, 2)
    return _tree_point(base, topology)


register_metric(
    "mean_leaf_inconsistency", lambda solution: solution.mean_leaf_inconsistency
)
register_metric(
    "fanout_weighted_inconsistency",
    lambda solution: solution.fanout_weighted_inconsistency,
)


def _fidelities(fast_values, smoke_values, axis: str) -> tuple[FidelityProfile, ...]:
    return (
        FidelityProfile("full"),
        FidelityProfile(
            "fast", axis_values={axis: tuple(float(v) for v in fast_values)}
        ),
        FidelityProfile(
            "smoke", axis_values={axis: tuple(float(v) for v in smoke_values)}
        ),
    )


FANOUT_SPEC = register_scenario(
    ScenarioSpec(
        scenario_id="tree_fanout",
        title="Tree fan-out: star vs broom multicast distribution (beyond the paper)",
        artifact="beyond the paper",
        family="tree",
        preset="reservation",
        protocols=Protocol.multihop_family(),
        axes=(
            Axis(
                "fanout",
                "explicit",
                values=tuple(float(v) for v in FANOUT_VALUES),
            ),
        ),
        panels=(
            PanelSpec(
                name="a: any-leaf inconsistency",
                x_label="fan-out k",
                y_label="inconsistency ratio I (any leaf)",
                plans=(
                    SeriesPlan(
                        "sweep",
                        axis="fanout",
                        binder="tree_star",
                        metric="inconsistency_ratio",
                        label_suffix=" star",
                    ),
                    SeriesPlan(
                        "sweep",
                        axis="fanout",
                        binder="tree_broom",
                        metric="inconsistency_ratio",
                        label_suffix=" broom",
                    ),
                ),
                log_y=True,
            ),
            PanelSpec(
                name="b: mean leaf inconsistency",
                x_label="fan-out k",
                y_label="mean per-leaf inconsistency",
                plans=(
                    SeriesPlan(
                        "sweep",
                        axis="fanout",
                        binder="tree_star",
                        metric="mean_leaf_inconsistency",
                        label_suffix=" star",
                    ),
                    SeriesPlan(
                        "sweep",
                        axis="fanout",
                        binder="tree_broom",
                        metric="mean_leaf_inconsistency",
                        label_suffix=" broom",
                    ),
                ),
                log_y=True,
            ),
            PanelSpec(
                name="c: signaling message rate",
                x_label="fan-out k",
                y_label="per-link transmissions per second",
                plans=(
                    SeriesPlan(
                        "sweep",
                        axis="fanout",
                        binder="tree_star",
                        metric="message_rate",
                        label_suffix=" star",
                    ),
                    SeriesPlan(
                        "sweep",
                        axis="fanout",
                        binder="tree_broom",
                        metric="message_rate",
                        label_suffix=" broom",
                    ),
                ),
            ),
        ),
        fidelities=_fidelities(FAST_FANOUT_VALUES, SMOKE_FANOUT_VALUES, "fanout"),
        notes=(
            "star: k receivers directly under the sender; "
            "broom: a 2-hop access path into a k-way replication point",
            "fan-out 1 points are unary trees, bit-identical to the chain model",
        ),
    )
)


def _depth_panel(name: str, y_label: str, metric: str, log_y: bool) -> PanelSpec:
    """One depth panel: skewed and spine on the deep axis, the complete
    binary tree on its own short axis (``shared_x=False``)."""
    return PanelSpec(
        name=name,
        x_label="tree depth d",
        y_label=y_label,
        plans=(
            SeriesPlan(
                "sweep",
                axis="depth",
                binder="tree_skewed",
                metric=metric,
                label_suffix=" skewed",
            ),
            SeriesPlan(
                "sweep",
                axis="depth",
                binder="tree_spine",
                metric=metric,
                label_suffix=" spine",
            ),
            SeriesPlan(
                "sweep",
                axis="binary_depth",
                binder="tree_binary",
                metric=metric,
                label_suffix=" binary",
            ),
        ),
        log_y=log_y,
        shared_x=False,
    )


DEPTH_SPEC = register_scenario(
    ScenarioSpec(
        scenario_id="tree_depth",
        title="Tree depth: balanced vs skewed binary distribution (beyond the paper)",
        artifact="beyond the paper",
        family="tree",
        preset="reservation",
        protocols=Protocol.multihop_family(),
        axes=(
            Axis(
                "depth",
                "explicit",
                values=tuple(float(v) for v in DEPTH_VALUES),
            ),
            Axis(
                "binary_depth",
                "explicit",
                values=tuple(float(v) for v in BINARY_DEPTH_VALUES),
            ),
        ),
        panels=(
            _depth_panel(
                "a: any-leaf inconsistency",
                "inconsistency ratio I (any leaf)",
                "inconsistency_ratio",
                log_y=True,
            ),
            _depth_panel(
                "b: fan-out-weighted inconsistency",
                "fan-out-weighted leaf inconsistency",
                "fanout_weighted_inconsistency",
                log_y=True,
            ),
            _depth_panel(
                "c: signaling message rate",
                "per-link transmissions per second",
                "message_rate",
                log_y=False,
            ),
        ),
        fidelities=(
            FidelityProfile("full"),
            FidelityProfile(
                "fast",
                axis_values={
                    "depth": tuple(float(v) for v in FAST_DEPTH_VALUES)
                },
            ),
            FidelityProfile(
                "smoke",
                axis_values={
                    "depth": tuple(float(v) for v in SMOKE_DEPTH_VALUES)
                },
            ),
        ),
        notes=(
            "skewed: a d-link backbone with one side leaf per internal node; "
            "spine: a (d-1)-link path into one 2-way split; binary: the "
            "complete 2-ary tree (own axis — its state space is exponential "
            "in depth and depth >= 3 exceeds the solvable cap)",
            "skewed depth 1 is the single-hop chain (unary points are "
            "bit-identical to the chain model); spine depth 1 is the "
            "2-leaf star",
        ),
    )
)
