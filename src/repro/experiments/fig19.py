"""Figure 19 — multi-hop performance vs the refresh timer.

Sweeps ``R`` (with ``T = 3R``) on the 20-hop defaults, plotting the
inconsistency ratio (a) and per-link message rate (b) for SS, SS+RT
and HS.

Paper claims: SS improves as ``R`` grows only while ``R`` is very small
(more refreshes than the path can use), then degrades sharply; SS+RT
keeps improving until an optimum near ``R ~ 10 s``; overhead falls with
``R`` for both soft-state protocols; HS is flat.
"""

from __future__ import annotations

from repro.core.parameters import reservation_defaults
from repro.experiments.common import multihop_metric_series
from repro.experiments.runner import ExperimentResult, Panel, geometric_sweep, register

EXPERIMENT_ID = "fig19"
TITLE = "Fig. 19: multi-hop inconsistency (a) and message rate (b) vs refresh timer R"


@register(EXPERIMENT_ID)
def run(fast: bool = False) -> ExperimentResult:
    """Sweep the refresh timer on the 20-hop reservation defaults."""
    base = reservation_defaults()
    xs = geometric_sweep(0.1, 1000.0, 9 if fast else 21)
    make = lambda r: base.with_coupled_timers(r)  # noqa: E731
    inconsistency = multihop_metric_series(
        xs, make, lambda sol: sol.inconsistency_ratio
    )
    message_rate = multihop_metric_series(xs, make, lambda sol: sol.message_rate)
    panels = (
        Panel(
            name="a: inconsistency ratio",
            x_label="refresh timer R (s)",
            y_label="inconsistency ratio I",
            series=tuple(inconsistency),
            log_x=True,
            log_y=True,
        ),
        Panel(
            name="b: signaling message rate",
            x_label="refresh timer R (s)",
            y_label="per-link transmissions per second",
            series=tuple(message_rate),
            log_x=True,
            log_y=True,
        ),
    )
    notes = ("HS does not use R; its series are constant.",)
    return ExperimentResult(EXPERIMENT_ID, TITLE, panels, notes)
