"""Figure 19 — multi-hop performance vs the refresh timer.

Sweeps ``R`` (with ``T = 3R``) on the 20-hop defaults, plotting the
inconsistency ratio (a) and per-link message rate (b) for SS, SS+RT
and HS.

Paper claims: SS improves as ``R`` grows only while ``R`` is very small
(more refreshes than the path can use), then degrades sharply; SS+RT
keeps improving until an optimum near ``R ~ 10 s``; overhead falls with
``R`` for both soft-state protocols; HS is flat.
"""

from __future__ import annotations

from repro.core.protocols import Protocol
from repro.experiments.spec import (
    Axis,
    FidelityProfile,
    PanelSpec,
    ScenarioSpec,
    SeriesPlan,
    register_scenario,
)

EXPERIMENT_ID = "fig19"
TITLE = "Fig. 19: multi-hop inconsistency (a) and message rate (b) vs refresh timer R"

SPEC = register_scenario(
    ScenarioSpec(
        scenario_id=EXPERIMENT_ID,
        title=TITLE,
        artifact="Fig. 19",
        family="multihop",
        preset="reservation",
        protocols=Protocol.multihop_family(),
        axes=(Axis("refresh_interval", "geometric", low=0.1, high=1000.0, points=21),),
        panels=(
            PanelSpec(
                name="a: inconsistency ratio",
                x_label="refresh timer R (s)",
                y_label="inconsistency ratio I",
                plans=(
                    SeriesPlan(
                        "sweep",
                        axis="refresh_interval",
                        binder="coupled_timers",
                        metric="inconsistency_ratio",
                    ),
                ),
                log_x=True,
                log_y=True,
            ),
            PanelSpec(
                name="b: signaling message rate",
                x_label="refresh timer R (s)",
                y_label="per-link transmissions per second",
                plans=(
                    SeriesPlan(
                        "sweep",
                        axis="refresh_interval",
                        binder="coupled_timers",
                        metric="message_rate",
                    ),
                ),
                log_x=True,
                log_y=True,
            ),
        ),
        fidelities=(
            FidelityProfile("full"),
            FidelityProfile("fast", axis_points={"refresh_interval": 9}),
            FidelityProfile("smoke", axis_points={"refresh_interval": 4}),
        ),
        notes=("HS does not use R; its series are constant.",),
    )
)
