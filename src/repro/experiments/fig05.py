"""Figure 5 — impact of channel loss rate and delay (single hop).

Panel (a): inconsistency ratio vs loss rate ``p_l`` in [0, 0.3].
Panel (b): inconsistency ratio vs one-way delay ``Delta`` in (0, 1] s.

Paper claims (checked in EXPERIMENTS.md): reliable transmission pays
off even at modest loss (5%); inconsistency grows ~linearly with delay,
with a slightly steeper slope for the reliable-transmission protocols
(their retransmission timer scales with the delay, ``K = 4 Delta``).
"""

from __future__ import annotations

from repro.core.parameters import kazaa_defaults
from repro.experiments.common import singlehop_metric_series
from repro.experiments.runner import ExperimentResult, Panel, linear_sweep, register

EXPERIMENT_ID = "fig5"
TITLE = "Fig. 5: inconsistency vs channel loss rate (a) and delay (b)"


@register(EXPERIMENT_ID)
def run(fast: bool = False) -> ExperimentResult:
    """Sweep loss rate and delay on the single-hop Kazaa defaults."""
    base = kazaa_defaults()
    loss_xs = linear_sweep(0.0, 0.3, 7 if fast else 13)
    delay_xs = linear_sweep(0.02, 1.0, 7 if fast else 15)

    loss_series = singlehop_metric_series(
        loss_xs,
        lambda p: base.replace(loss_rate=p),
        lambda sol: sol.inconsistency_ratio,
    )
    # The retransmission timer tracks the channel delay (K = 4*Delta),
    # exactly as in the paper's defaults.
    delay_series = singlehop_metric_series(
        delay_xs,
        lambda d: base.replace(delay=d, retransmission_interval=4.0 * d),
        lambda sol: sol.inconsistency_ratio,
    )
    panels = (
        Panel(
            name="a: vs loss rate",
            x_label="loss rate p_l",
            y_label="inconsistency ratio I",
            series=tuple(loss_series),
        ),
        Panel(
            name="b: vs channel delay",
            x_label="delay Delta (s)",
            y_label="inconsistency ratio I",
            series=tuple(delay_series),
        ),
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, panels)
