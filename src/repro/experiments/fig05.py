"""Figure 5 — impact of channel loss rate and delay (single hop).

Panel (a): inconsistency ratio vs loss rate ``p_l`` in [0, 0.3].
Panel (b): inconsistency ratio vs one-way delay ``Delta`` in (0, 1] s.

Paper claims (checked in EXPERIMENTS.md): reliable transmission pays
off even at modest loss (5%); inconsistency grows ~linearly with delay,
with a slightly steeper slope for the reliable-transmission protocols
(their retransmission timer scales with the delay, ``K = 4 Delta``).
"""

from __future__ import annotations

from repro.core.protocols import Protocol
from repro.experiments.spec import (
    Axis,
    FidelityProfile,
    PanelSpec,
    ScenarioSpec,
    SeriesPlan,
    register_scenario,
)

EXPERIMENT_ID = "fig5"
TITLE = "Fig. 5: inconsistency vs channel loss rate (a) and delay (b)"

SPEC = register_scenario(
    ScenarioSpec(
        scenario_id=EXPERIMENT_ID,
        title=TITLE,
        artifact="Fig. 5",
        family="singlehop",
        preset="kazaa",
        protocols=tuple(Protocol),
        axes=(
            Axis("loss_rate", "linear", low=0.0, high=0.3, points=13),
            # The retransmission timer tracks the channel delay
            # (K = 4*Delta), exactly as in the paper's defaults.
            Axis("delay", "linear", low=0.02, high=1.0, points=15),
        ),
        panels=(
            PanelSpec(
                name="a: vs loss rate",
                x_label="loss rate p_l",
                y_label="inconsistency ratio I",
                plans=(
                    SeriesPlan(
                        "sweep",
                        axis="loss_rate",
                        binder="loss_rate",
                        metric="inconsistency_ratio",
                    ),
                ),
            ),
            PanelSpec(
                name="b: vs channel delay",
                x_label="delay Delta (s)",
                y_label="inconsistency ratio I",
                plans=(
                    SeriesPlan(
                        "sweep",
                        axis="delay",
                        binder="delay_coupled_retx",
                        metric="inconsistency_ratio",
                    ),
                ),
            ),
        ),
        fidelities=(
            FidelityProfile("full"),
            FidelityProfile("fast", axis_points={"loss_rate": 7, "delay": 7}),
            FidelityProfile("smoke", axis_points={"loss_rate": 3, "delay": 3}),
        ),
    )
)
