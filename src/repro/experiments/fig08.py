"""Figure 8 — impact of the state-timeout and retransmission timers.

Panel (a): inconsistency vs state-timeout timer ``T`` (refresh timer
fixed at ``R = 5 s``, paper prose).  Soft-state protocols collapse when
``T < R`` (refreshes arrive too late to keep state alive); past that,
SS/SS+ER prefer ``T ~ 2R-3R``, SS+RT prefers ``T`` just above ``R``
(its notification repairs false removals cheaply), and SS+RTR keeps
improving with longer ``T``.

Panel (b): inconsistency vs retransmission timer ``K`` — HS, relying
solely on retransmission, is the most sensitive.
"""

from __future__ import annotations

from repro.core.protocols import Protocol
from repro.experiments.spec import (
    Axis,
    FidelityProfile,
    PanelSpec,
    ScenarioSpec,
    SeriesPlan,
    register_scenario,
)

EXPERIMENT_ID = "fig8"
TITLE = "Fig. 8: inconsistency vs state-timeout timer T (a) and retransmission timer K (b)"

SPEC = register_scenario(
    ScenarioSpec(
        scenario_id=EXPERIMENT_ID,
        title=TITLE,
        artifact="Fig. 8",
        family="singlehop",
        preset="kazaa",
        base_overrides={"refresh_interval": 5.0},
        protocols=tuple(Protocol),
        axes=(
            Axis("timeout_interval", "geometric", low=0.5, high=1000.0, points=20),
            Axis("retransmission_interval", "geometric", low=0.1, high=10.0, points=15),
        ),
        panels=(
            PanelSpec(
                name="a: vs state-timeout timer",
                x_label="timeout timer T (s)",
                y_label="inconsistency ratio I",
                plans=(
                    SeriesPlan(
                        "sweep",
                        axis="timeout_interval",
                        binder="timeout_interval",
                        metric="inconsistency_ratio",
                    ),
                ),
                log_x=True,
                log_y=True,
            ),
            PanelSpec(
                name="b: vs retransmission timer",
                x_label="retransmission timer K (s)",
                y_label="inconsistency ratio I",
                plans=(
                    SeriesPlan(
                        "sweep",
                        axis="retransmission_interval",
                        binder="retransmission_interval",
                        metric="inconsistency_ratio",
                    ),
                ),
                log_x=True,
            ),
        ),
        fidelities=(
            FidelityProfile("full"),
            FidelityProfile(
                "fast",
                axis_points={"timeout_interval": 9, "retransmission_interval": 7},
            ),
            FidelityProfile(
                "smoke",
                axis_points={"timeout_interval": 4, "retransmission_interval": 3},
            ),
        ),
        notes=(
            "panel a: HS has no state-timeout timer; its series is constant.",
            "panel b: SS and SS+ER have no retransmission timer; their series are constant.",
        ),
    )
)
