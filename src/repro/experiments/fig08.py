"""Figure 8 — impact of the state-timeout and retransmission timers.

Panel (a): inconsistency vs state-timeout timer ``T`` (refresh timer
fixed at ``R = 5 s``, paper prose).  Soft-state protocols collapse when
``T < R`` (refreshes arrive too late to keep state alive); past that,
SS/SS+ER prefer ``T ~ 2R-3R``, SS+RT prefers ``T`` just above ``R``
(its notification repairs false removals cheaply), and SS+RTR keeps
improving with longer ``T``.

Panel (b): inconsistency vs retransmission timer ``K`` — HS, relying
solely on retransmission, is the most sensitive.
"""

from __future__ import annotations

from repro.core.parameters import kazaa_defaults
from repro.experiments.common import singlehop_metric_series
from repro.experiments.runner import ExperimentResult, Panel, geometric_sweep, register

EXPERIMENT_ID = "fig8"
TITLE = "Fig. 8: inconsistency vs state-timeout timer T (a) and retransmission timer K (b)"


@register(EXPERIMENT_ID)
def run(fast: bool = False) -> ExperimentResult:
    """Sweep T (with R = 5 s) and K on the single-hop Kazaa defaults."""
    base = kazaa_defaults().replace(refresh_interval=5.0)
    timeout_xs = geometric_sweep(0.5, 1000.0, 9 if fast else 20)
    retx_xs = geometric_sweep(0.1, 10.0, 7 if fast else 15)

    timeout_series = singlehop_metric_series(
        timeout_xs,
        lambda t: base.replace(timeout_interval=t),
        lambda sol: sol.inconsistency_ratio,
    )
    retx_series = singlehop_metric_series(
        retx_xs,
        lambda k: base.replace(retransmission_interval=k),
        lambda sol: sol.inconsistency_ratio,
    )
    panels = (
        Panel(
            name="a: vs state-timeout timer",
            x_label="timeout timer T (s)",
            y_label="inconsistency ratio I",
            series=tuple(timeout_series),
            log_x=True,
            log_y=True,
        ),
        Panel(
            name="b: vs retransmission timer",
            x_label="retransmission timer K (s)",
            y_label="inconsistency ratio I",
            series=tuple(retx_series),
            log_x=True,
        ),
    )
    notes = (
        "panel a: HS has no state-timeout timer; its series is constant.",
        "panel b: SS and SS+ER have no retransmission timer; their series are constant.",
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, panels, notes)
