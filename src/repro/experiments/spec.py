"""Declarative scenario specifications.

A paper artifact (or any variant of one) is described by a frozen
:class:`ScenarioSpec` instead of a hand-written ``run(fast)`` callable:
the spec names the base parameter preset, the protocol set, the sweep
axes, the per-panel series plans (which solver family, which parameter
binder, which metric) and the named fidelity profiles.  The generic
executor (:mod:`repro.experiments.executor`) assembles any spec into an
:class:`~repro.experiments.runner.ExperimentResult` through the
template/memo-cache batch path, so new scenarios — or parameter
variants of canned ones — need no new imperative code.

Extension points are small named registries:

* :func:`register_binder` — ``name -> (base_params, x) -> params`` sweep
  binders (heterogeneous binders return ``(params, hop_profile)``);
* :func:`register_metric` — ``name -> (solution) -> float`` metric
  bindings;
* :func:`register_notes_hook` — ``name -> (panels) -> notes`` for
  scenarios whose notes are computed from the rendered series;
* :func:`register_scenario` — the scenario registry itself.

Specs are plain frozen data; mappings passed to :class:`Axis`,
:class:`FidelityProfile` and :class:`ScenarioSpec` are normalized to
sorted tuples so every spec is hashable and order-independent.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Mapping, Sequence

from repro.core.parameters import (
    MultiHopParameters,
    SignalingParameters,
    kazaa_defaults,
    reservation_defaults,
)
from repro.core.protocols import Protocol
from repro.experiments.runner import geometric_sweep, linear_sweep
from repro.faults.schedule import FaultSchedule

__all__ = [
    "Axis",
    "FidelityProfile",
    "PanelSpec",
    "ScenarioError",
    "ScenarioSpec",
    "SeriesPlan",
    "SimPlan",
    "TransientPlan",
    "apply_overrides",
    "base_parameters",
    "binder",
    "metric",
    "notes_hook",
    "parse_overrides",
    "parse_protocol",
    "parse_protocols",
    "register_binder",
    "register_metric",
    "register_notes_hook",
    "register_scenario",
    "scenario",
    "scenario_ids",
    "scenarios",
]

#: The standard fidelity names every scenario provides.
FULL = "full"
FAST = "fast"
SMOKE = "smoke"
FIDELITIES = (FULL, FAST, SMOKE)


class ScenarioError(ValueError):
    """A scenario, override, fidelity or protocol selection is invalid."""


def _freeze_map(mapping) -> tuple:
    """Normalize a mapping (or pair sequence) to a sorted pair tuple."""
    if isinstance(mapping, Mapping):
        items = mapping.items()
    else:
        items = tuple(mapping)
    return tuple(sorted((str(k), v) for k, v in items))


# ----------------------------------------------------------------------
# Axes and fidelity profiles
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class Axis:
    """One declarative sweep axis.

    ``kind`` is ``"geometric"``, ``"linear"`` or ``"explicit"``; the
    generated kinds carry ``low``/``high``/``points``, the explicit kind
    carries ``values``.  The spec's numbers are the *full*-fidelity
    resolution; :class:`FidelityProfile` overrides thin them per axis.
    """

    name: str
    kind: str
    low: float = 0.0
    high: float = 0.0
    points: int = 0
    values: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("geometric", "linear", "explicit"):
            raise ScenarioError(f"axis {self.name!r}: unknown kind {self.kind!r}")
        if self.kind == "explicit" and not self.values:
            raise ScenarioError(f"axis {self.name!r}: explicit axis needs values")
        if self.kind != "explicit" and self.points < 2:
            raise ScenarioError(f"axis {self.name!r}: need at least 2 points")

    def resolve(self, profile: "FidelityProfile") -> tuple[float, ...]:
        """The swept x values at one fidelity."""
        values = profile.axis_value_map().get(self.name)
        if values is not None:
            return tuple(values)
        if self.kind == "explicit":
            return self.values
        points = profile.axis_point_map().get(self.name, self.points)
        sweep = geometric_sweep if self.kind == "geometric" else linear_sweep
        return sweep(self.low, self.high, points)


@dataclasses.dataclass(frozen=True)
class FidelityProfile:
    """A named resolution: per-axis thinning plus simulation effort.

    ``axis_points`` overrides a generated axis's point count;
    ``axis_values`` replaces any axis's values outright (this is how a
    fast profile can swap a geometric sweep for a fixed short list, as
    Fig. 11 does).  ``replications``/``sessions``/``sim_budget``
    parameterize the validation scenarios' discrete-event simulations.
    Mappings freeze to sorted tuples so profiles stay hashable:

    >>> profile = FidelityProfile("fast", axis_points={"hops": 4})
    >>> profile.axis_points
    (('hops', 4),)
    >>> profile.axis_point_map()
    {'hops': 4}
    """

    name: str
    axis_points: tuple[tuple[str, int], ...] = ()
    axis_values: tuple[tuple[str, tuple[float, ...]], ...] = ()
    replications: int | None = None
    sessions: int | None = None
    sim_budget: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "axis_points", _freeze_map(self.axis_points))
        object.__setattr__(
            self,
            "axis_values",
            tuple(
                (name, tuple(float(v) for v in values))
                for name, values in _freeze_map(self.axis_values)
            ),
        )

    def axis_point_map(self) -> dict[str, int]:
        return dict(self.axis_points)

    def axis_value_map(self) -> dict[str, tuple[float, ...]]:
        return dict(self.axis_values)


# ----------------------------------------------------------------------
# Series plans and panel layout
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class SeriesPlan:
    """How one group of series in a panel is produced.

    ===============  ====================================================
    ``sweep``        one metric series per protocol over ``axis``
                     (``binder`` maps the base preset and each x to a
                     parameter point; the scenario family picks the
                     single-hop, multi-hop or heterogeneous solver)
    ``parametric``   tradeoff curves: sweep ``axis`` through ``binder``
                     and plot ``y_metric`` against ``x_metric``
    ``point``        one (x_metric, y_metric) point per protocol at the
                     base parameters (Fig. 9's HS marker)
    ``hop_profile``  per-hop inconsistency profile of one solve per
                     protocol (Fig. 17)
    ``sim``          replicated discrete-event simulation series with
                     confidence intervals (Figs. 11-12; needs the
                     spec's :class:`SimPlan`)
    ``table``        Table I transition-rate rows
    ===============  ====================================================

    ``protocols`` pins the plan to a subset of the scenario's protocol
    set (empty tuple means "use the scenario set"); a user protocol
    selection intersects with it.
    """

    kind: str
    axis: str = ""
    binder: str = ""
    metric: str = ""
    x_metric: str = ""
    y_metric: str = ""
    protocols: tuple[Protocol, ...] = ()
    label_suffix: str = ""

    _KINDS = ("sweep", "parametric", "point", "hop_profile", "sim", "table")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ScenarioError(f"unknown series-plan kind {self.kind!r}")


@dataclasses.dataclass(frozen=True)
class PanelSpec:
    """Declarative panel layout: labels, scales and series plans."""

    name: str
    x_label: str
    y_label: str
    plans: tuple[SeriesPlan, ...]
    log_x: bool = False
    log_y: bool = False
    shared_x: bool = True

    def __post_init__(self) -> None:
        if not self.plans:
            raise ScenarioError(f"panel {self.name!r} has no series plans")


@dataclasses.dataclass(frozen=True)
class SimPlan:
    """Simulation wiring for the validation scenarios.

    ``sessions_mode`` is ``"fixed"`` (the fidelity profile's
    ``sessions`` count at every point) or ``"budget"`` (derive the
    session count from the swept session length so total simulated time
    stays near the profile's ``sim_budget`` seconds, as Fig. 11 does).
    """

    seed: int
    sessions_mode: str = "fixed"

    def __post_init__(self) -> None:
        if self.sessions_mode not in ("fixed", "budget"):
            raise ScenarioError(f"unknown sessions_mode {self.sessions_mode!r}")


@dataclasses.dataclass(frozen=True)
class TransientPlan:
    """The timeline of a ``transient``-family scenario.

    ``initial`` seeds the analytic curve and fixes the sim warmup
    convention: ``"empty"`` starts cold (no installed state, warmup
    must be 0 so the sim measures from its own cold start) and
    ``"stationary"`` starts warmed up (warmup must be positive; the
    model starts at the nominal stationary distribution and the sim
    discards ``warmup`` virtual seconds).  ``faults`` states flap
    offsets and crash times *relative to the start of measurement* —
    the executor shifts them by ``warmup`` for the simulator
    (:meth:`repro.faults.schedule.FaultSchedule.shifted`).
    """

    initial: str = "empty"
    faults: FaultSchedule | None = None
    warmup: float = 0.0

    def __post_init__(self) -> None:
        if self.initial not in ("empty", "stationary"):
            raise ScenarioError(
                f"transient initial must be 'empty' or 'stationary', "
                f"got {self.initial!r}"
            )
        if self.initial == "empty" and self.warmup != 0.0:
            raise ScenarioError("a cold ('empty') start cannot have a sim warmup")
        if self.initial == "stationary" and self.warmup <= 0.0:
            raise ScenarioError(
                "a 'stationary' start needs a positive sim warmup to "
                "approximate the stationary distribution"
            )


# ----------------------------------------------------------------------
# The scenario spec
# ----------------------------------------------------------------------

_PRESETS: dict[str, Callable[[], SignalingParameters | MultiHopParameters]] = {
    "kazaa": kazaa_defaults,
    "reservation": reservation_defaults,
}

_FAMILIES = (
    "singlehop",
    "multihop",
    "heterogeneous",
    "tree",
    "burst_loss",
    "link_flap",
    "transient",
)


@dataclasses.dataclass(frozen=True)
class ScenarioSpec:
    """A frozen, declarative description of one runnable scenario.

    Specs validate themselves on construction (family, preset, panel
    and fidelity coherence) and default to the standard
    ``full``/``fast``/``smoke`` fidelity trio:

    >>> from repro.core.protocols import Protocol
    >>> spec = ScenarioSpec(
    ...     scenario_id="demo", title="Demo sweep", artifact="demo",
    ...     family="singlehop", preset="kazaa", protocols=(Protocol.SS,),
    ...     axes=(Axis("loss", "linear", low=0.0, high=0.1, points=3),),
    ...     panels=(PanelSpec("p", "loss p", "I", (SeriesPlan(
    ...         "sweep", axis="loss", binder="loss_rate",
    ...         metric="inconsistency_ratio"),)),))
    >>> spec.fidelity_names()
    ('full', 'fast', 'smoke')
    >>> spec.axis("loss").resolve(spec.fidelity("full"))
    (0.0, 0.05, 0.1)

    See ``docs/authoring.md`` for the full authoring tutorial.
    """

    scenario_id: str
    title: str
    artifact: str
    family: str
    preset: str
    protocols: tuple[Protocol, ...]
    panels: tuple[PanelSpec, ...]
    axes: tuple[Axis, ...] = ()
    fidelities: tuple[FidelityProfile, ...] = ()
    base_overrides: tuple[tuple[str, float], ...] = ()
    notes: tuple[str, ...] = ()
    notes_hook: str = ""
    sim: SimPlan | None = None
    transient: TransientPlan | None = None

    def __post_init__(self) -> None:
        if self.family == "transient" and self.transient is None:
            raise ScenarioError(
                f"{self.scenario_id}: a 'transient' scenario needs a TransientPlan"
            )
        if self.family != "transient" and self.transient is not None:
            raise ScenarioError(
                f"{self.scenario_id}: a TransientPlan needs family='transient'"
            )
        if self.family not in _FAMILIES:
            raise ScenarioError(
                f"{self.scenario_id}: unknown family {self.family!r}; "
                f"expected one of {_FAMILIES}"
            )
        if self.preset not in _PRESETS:
            raise ScenarioError(
                f"{self.scenario_id}: unknown preset {self.preset!r}; "
                f"expected one of {sorted(_PRESETS)}"
            )
        if not self.panels:
            raise ScenarioError(f"{self.scenario_id}: a scenario needs panels")
        object.__setattr__(self, "base_overrides", _freeze_map(self.base_overrides))
        if not self.fidelities:
            object.__setattr__(
                self, "fidelities", tuple(FidelityProfile(name) for name in FIDELITIES)
            )
        names = [profile.name for profile in self.fidelities]
        if len(set(names)) != len(names):
            raise ScenarioError(f"{self.scenario_id}: duplicate fidelity names")
        if FULL not in names:
            raise ScenarioError(f"{self.scenario_id}: a {FULL!r} fidelity is required")
        axis_names = {axis.name for axis in self.axes}
        for profile in self.fidelities:
            referenced = [name for name, _ in profile.axis_points]
            referenced += [name for name, _ in profile.axis_values]
            unknown = sorted(set(referenced) - axis_names)
            if unknown:
                raise ScenarioError(
                    f"{self.scenario_id}: fidelity {profile.name!r} references "
                    f"unknown axis(es) {', '.join(unknown)}"
                )
        for panel in self.panels:
            for plan in panel.plans:
                if plan.axis and plan.axis not in axis_names:
                    raise ScenarioError(
                        f"{self.scenario_id}: panel {panel.name!r} references "
                        f"unknown axis {plan.axis!r}"
                    )
                if plan.kind == "sim" and self.sim is None:
                    raise ScenarioError(
                        f"{self.scenario_id}: a 'sim' series plan needs a SimPlan"
                    )

    def fidelity_names(self) -> tuple[str, ...]:
        """The named fidelity profiles, spec order."""
        return tuple(profile.name for profile in self.fidelities)

    def fidelity(self, name: str) -> FidelityProfile:
        """Look up a fidelity profile by name."""
        for profile in self.fidelities:
            if profile.name == name:
                return profile
        raise ScenarioError(
            f"{self.scenario_id}: unknown fidelity {name!r}; "
            f"available: {', '.join(self.fidelity_names())}"
        )

    def axis(self, name: str) -> Axis:
        """Look up a sweep axis by name."""
        for axis in self.axes:
            if axis.name == name:
                return axis
        raise ScenarioError(f"{self.scenario_id}: unknown axis {name!r}")


# ----------------------------------------------------------------------
# Base parameters and overrides
# ----------------------------------------------------------------------


def base_parameters(
    spec: ScenarioSpec, overrides: Mapping[str, float] | None = None
) -> SignalingParameters | MultiHopParameters:
    """The spec's base preset with spec-level then user overrides applied."""
    params = _PRESETS[spec.preset]()
    if spec.base_overrides:
        params = params.replace(**dict(spec.base_overrides))
    if overrides:
        params = apply_overrides(params, overrides)
    return params


def apply_overrides(params, overrides: Mapping[str, float]):
    """Apply validated field overrides to a parameter preset.

    Unknown field names raise :class:`ScenarioError` listing the valid
    ones; values for integer fields (``hops``) are coerced, and the
    preset's own range validation still applies.
    """
    fields = {field.name: field for field in dataclasses.fields(params)}
    unknown = sorted(set(overrides) - set(fields))
    if unknown:
        raise ScenarioError(
            f"unknown parameter(s) {', '.join(unknown)}; "
            f"valid: {', '.join(sorted(fields))}"
        )
    coerced = {}
    for name, value in overrides.items():
        coerced[name] = int(value) if fields[name].type == "int" else float(value)
    try:
        return params.replace(**coerced)
    except ValueError as error:
        raise ScenarioError(str(error)) from None


def parse_overrides(assignments: Sequence[str]) -> dict[str, float]:
    """Parse ``key=value`` strings (the CLI's ``--set``) into overrides."""
    overrides: dict[str, float] = {}
    for assignment in assignments:
        key, separator, text = assignment.partition("=")
        key = key.strip()
        if not separator or not key:
            raise ScenarioError(
                f"malformed override {assignment!r}; expected key=value"
            )
        try:
            value = float(text)
        except ValueError:
            raise ScenarioError(
                f"override {key!r}: {text!r} is not a number"
            ) from None
        overrides[key] = value
    return overrides


def parse_protocol(name: str) -> Protocol:
    """Parse a protocol from its value or enum name, case-insensitively.

    Accepts ``"SS+ER"``, ``"ss+er"``, ``"ss_er"``, ``"ss-er"`` alike.
    """

    def norm(text: str) -> str:
        return text.strip().lower().replace("_", "+").replace("-", "+")

    wanted = norm(name)
    for protocol in Protocol:
        if wanted in (norm(protocol.value), norm(protocol.name)):
            return protocol
    raise ScenarioError(
        f"unknown protocol {name!r}; "
        f"valid: {', '.join(p.value for p in Protocol)}"
    )


def parse_protocols(text: str | Sequence[str]) -> tuple[Protocol, ...]:
    """Parse a comma-separated list (or sequence) of protocol names."""
    names = text.split(",") if isinstance(text, str) else list(text)
    selection = tuple(
        item if isinstance(item, Protocol) else parse_protocol(item)
        for item in names
        if not (isinstance(item, str) and not item.strip())
    )
    if not selection:
        raise ScenarioError("empty protocol selection")
    return selection


# ----------------------------------------------------------------------
# Named registries: binders, metrics, notes hooks, scenarios
# ----------------------------------------------------------------------

_BINDERS: dict[str, Callable] = {}
_METRICS: dict[str, Callable] = {}
_NOTES_HOOKS: dict[str, Callable] = {}
_SCENARIOS: dict[str, ScenarioSpec] = {}


def _register(registry: dict, kind: str, name: str, value):
    if name in registry:
        raise ScenarioError(f"duplicate {kind} {name!r}")
    registry[name] = value
    return value


def register_binder(name: str, fn: Callable | None = None):
    """Register a named sweep binder ``(base_params, x) -> params``.

    Heterogeneous binders return ``(params, hop_profile)``.  Usable as
    a decorator (``@register_binder("name")``) or a plain call.
    """
    if fn is not None:
        return _register(_BINDERS, "binder", name, fn)
    return lambda fn: _register(_BINDERS, "binder", name, fn)


def register_metric(name: str, fn: Callable | None = None):
    """Register a named metric binding ``(solution) -> float``."""
    if fn is not None:
        return _register(_METRICS, "metric", name, fn)
    return lambda fn: _register(_METRICS, "metric", name, fn)


def register_notes_hook(name: str, fn: Callable | None = None):
    """Register a notes hook ``(panels) -> tuple[str, ...]``."""
    if fn is not None:
        return _register(_NOTES_HOOKS, "notes hook", name, fn)
    return lambda fn: _register(_NOTES_HOOKS, "notes hook", name, fn)


def binder(name: str) -> Callable:
    """Look up a registered binder."""
    try:
        return _BINDERS[name]
    except KeyError:
        raise ScenarioError(f"unknown binder {name!r}") from None


def metric(name: str) -> Callable:
    """Look up a registered metric binding."""
    try:
        return _METRICS[name]
    except KeyError:
        raise ScenarioError(f"unknown metric {name!r}") from None


def notes_hook(name: str) -> Callable:
    """Look up a registered notes hook."""
    try:
        return _NOTES_HOOKS[name]
    except KeyError:
        raise ScenarioError(f"unknown notes hook {name!r}") from None


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Add a spec to the scenario registry (importing
    :mod:`repro.experiments` populates it)."""
    return _register(_SCENARIOS, "scenario id", spec.scenario_id, spec)


def scenario(scenario_id: str) -> ScenarioSpec:
    """Look up a registered scenario spec."""
    try:
        return _SCENARIOS[scenario_id]
    except KeyError:
        raise KeyError(
            f"unknown scenario {scenario_id!r}; available: {sorted(_SCENARIOS)}"
        ) from None


def scenario_ids() -> tuple[str, ...]:
    """All registered scenario ids, in a stable order."""
    return tuple(sorted(_SCENARIOS))


def scenarios() -> dict[str, ScenarioSpec]:
    """All registered scenario specs."""
    return dict(_SCENARIOS)


# ----------------------------------------------------------------------
# Built-in binders and metrics (the vocabulary the canned specs use)
# ----------------------------------------------------------------------

register_binder("session_length", lambda base, x: base.replace(removal_rate=1.0 / x))
register_binder("loss_rate", lambda base, x: base.replace(loss_rate=x))
register_binder(
    "delay_coupled_retx",
    lambda base, x: base.replace(delay=x, retransmission_interval=4.0 * x),
)
register_binder("coupled_timers", lambda base, x: base.with_coupled_timers(x))
register_binder("timeout_interval", lambda base, x: base.replace(timeout_interval=x))
register_binder(
    "retransmission_interval",
    lambda base, x: base.replace(retransmission_interval=x),
)
register_binder("update_rate", lambda base, x: base.replace(update_rate=x))
register_binder("hops", lambda base, x: base.replace(hops=int(x)))

register_metric("inconsistency_ratio", lambda solution: solution.inconsistency_ratio)
register_metric(
    "normalized_message_rate", lambda solution: solution.normalized_message_rate
)
register_metric("message_rate", lambda solution: solution.message_rate)
register_metric("integrated_cost_10", lambda solution: solution.integrated_cost(10.0))

#: Simulation metrics resolve to (mean, half-width) attribute pairs.
SIM_METRICS: dict[str, tuple[str, str]] = {
    "inconsistency": ("inconsistency", "inconsistency_err"),
    "message_rate": ("message_rate", "message_rate_err"),
}
