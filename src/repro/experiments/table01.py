"""Table I — protocol-specific Markov transition rates.

Regenerates the paper's Table I by instantiating every protocol's
transition builder on symbolic-friendly parameters and printing the
rates the five columns report.  The benchmark/test checks that each
generated rate matches the closed-form Table I entry.
"""

from __future__ import annotations

from repro.core.parameters import SignalingParameters
from repro.core.protocols import Protocol
from repro.core.singlehop.states import SingleHopState as S
from repro.core.singlehop.transitions import build_transition_rates
from repro.experiments.runner import ExperimentResult, Panel, Series, register

EXPERIMENT_ID = "table1"
TITLE = "Table I: model transitions for the five signaling approaches"

#: The (origin, destination) pairs Table I tabulates, in row order.
TABLE_ROWS: tuple[tuple[S, S], ...] = (
    (S.S10_FAST, S.S10_SLOW),
    (S.S10_FAST, S.CONSISTENT),
    (S.S10_SLOW, S.CONSISTENT),
    (S.S01_FAST, S.S01_SLOW),
    (S.S01_FAST, S.ABSORBED),
    (S.S01_SLOW, S.ABSORBED),
    (S.CONSISTENT, S.S10_SLOW),  # the false-removal rate lambda_f
)

ROW_LABELS: tuple[str, ...] = (
    "(1,0)1->(1,0)2 [= IC1->IC2]",
    "(1,0)1->C      [= IC1->C]",
    "(1,0)2->C      [= IC2->C]",
    "(0,1)1->(0,1)2",
    "(0,1)1->(0,0)",
    "(0,1)2->(0,0)",
    "lambda_f",
)


def transition_table(params: SignalingParameters) -> dict[Protocol, dict[str, float]]:
    """Table I evaluated at ``params``: protocol -> row label -> rate."""
    table: dict[Protocol, dict[str, float]] = {}
    for protocol in Protocol:
        rates = build_transition_rates(protocol, params)
        column: dict[str, float] = {}
        for label, (origin, destination) in zip(ROW_LABELS, TABLE_ROWS):
            column[label] = rates.get((origin, destination), 0.0)
        table[protocol] = column
    return table


@register(EXPERIMENT_ID)
def run(fast: bool = False, params: SignalingParameters | None = None) -> ExperimentResult:
    """Materialize Table I at the default (Kazaa) parameter point."""
    params = params or SignalingParameters()
    table = transition_table(params)
    series = []
    xs = tuple(float(i) for i in range(len(ROW_LABELS)))
    for protocol in Protocol:
        ys = tuple(table[protocol][label] for label in ROW_LABELS)
        series.append(Series(protocol.value, xs, ys))
    panel = Panel(
        name="transition rates",
        x_label="row index",
        y_label="rate (1/s)",
        series=tuple(series),
    )
    notes = tuple(f"row {i}: {label}" for i, label in enumerate(ROW_LABELS))
    return ExperimentResult(EXPERIMENT_ID, TITLE, (panel,), notes)
