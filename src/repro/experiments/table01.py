"""Table I — protocol-specific Markov transition rates.

Regenerates the paper's Table I by instantiating every protocol's
transition builder on symbolic-friendly parameters and printing the
rates the five columns report.  The benchmark/test checks that each
generated rate matches the closed-form Table I entry.
"""

from __future__ import annotations

from repro.core.parameters import SignalingParameters
from repro.core.protocols import Protocol
from repro.core.singlehop.states import SingleHopState as S
from repro.core.singlehop.transitions import build_transition_rates
from repro.experiments.spec import (
    PanelSpec,
    ScenarioSpec,
    SeriesPlan,
    register_scenario,
)

EXPERIMENT_ID = "table1"
TITLE = "Table I: model transitions for the five signaling approaches"

#: The (origin, destination) pairs Table I tabulates, in row order.
TABLE_ROWS: tuple[tuple[S, S], ...] = (
    (S.S10_FAST, S.S10_SLOW),
    (S.S10_FAST, S.CONSISTENT),
    (S.S10_SLOW, S.CONSISTENT),
    (S.S01_FAST, S.S01_SLOW),
    (S.S01_FAST, S.ABSORBED),
    (S.S01_SLOW, S.ABSORBED),
    (S.CONSISTENT, S.S10_SLOW),  # the false-removal rate lambda_f
)

ROW_LABELS: tuple[str, ...] = (
    "(1,0)1->(1,0)2 [= IC1->IC2]",
    "(1,0)1->C      [= IC1->C]",
    "(1,0)2->C      [= IC2->C]",
    "(0,1)1->(0,1)2",
    "(0,1)1->(0,0)",
    "(0,1)2->(0,0)",
    "lambda_f",
)


def transition_table(params: SignalingParameters) -> dict[Protocol, dict[str, float]]:
    """Table I evaluated at ``params``: protocol -> row label -> rate."""
    table: dict[Protocol, dict[str, float]] = {}
    for protocol in Protocol:
        rates = build_transition_rates(protocol, params)
        column: dict[str, float] = {}
        for label, (origin, destination) in zip(ROW_LABELS, TABLE_ROWS):
            column[label] = rates.get((origin, destination), 0.0)
        table[protocol] = column
    return table


SPEC = register_scenario(
    ScenarioSpec(
        scenario_id=EXPERIMENT_ID,
        title=TITLE,
        artifact="Table I",
        family="singlehop",
        preset="kazaa",
        protocols=tuple(Protocol),
        panels=(
            PanelSpec(
                name="transition rates",
                x_label="row index",
                y_label="rate (1/s)",
                plans=(SeriesPlan("table"),),
            ),
        ),
        notes=tuple(f"row {i}: {label}" for i, label in enumerate(ROW_LABELS)),
    )
)
