"""Figure 7 — integrated cost vs refresh timer (single hop).

Plots ``C = w*I + M`` with ``w = 10`` msg/s over ``R`` in 0.1 .. 100 s
(``T = 3R``).  The experiment also reports each protocol's optimal
operating point — the paper observes sharp optima for SS and SS+RT, a
flatter optimum for SS+ER, and monotone improvement for SS+RTR toward
the HS level.
"""

from __future__ import annotations

from repro.core.parameters import kazaa_defaults
from repro.experiments.common import singlehop_metric_series
from repro.experiments.runner import ExperimentResult, Panel, geometric_sweep, register

EXPERIMENT_ID = "fig7"
TITLE = "Fig. 7: integrated cost C = 10*I + M vs refresh timer R"

COST_WEIGHT = 10.0


@register(EXPERIMENT_ID)
def run(fast: bool = False) -> ExperimentResult:
    """Sweep the refresh timer and evaluate the integrated cost."""
    base = kazaa_defaults()
    xs = geometric_sweep(0.1, 100.0, 9 if fast else 25)
    series = singlehop_metric_series(
        xs,
        lambda r: base.with_coupled_timers(r),
        lambda sol: sol.integrated_cost(COST_WEIGHT),
    )
    panel = Panel(
        name="integrated cost",
        x_label="refresh timer R (s)",
        y_label=f"C = {COST_WEIGHT:.0f}*I + M",
        series=tuple(series),
        log_x=True,
        log_y=True,
    )
    notes = []
    for curve in series:
        best_index = min(range(len(curve.y)), key=lambda i: curve.y[i])
        notes.append(
            f"{curve.label}: optimal R ~= {curve.x[best_index]:.3g}s "
            f"(C = {curve.y[best_index]:.4g})"
        )
    return ExperimentResult(EXPERIMENT_ID, TITLE, (panel,), tuple(notes))
