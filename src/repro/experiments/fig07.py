"""Figure 7 — integrated cost vs refresh timer (single hop).

Plots ``C = w*I + M`` with ``w = 10`` msg/s over ``R`` in 0.1 .. 100 s
(``T = 3R``).  The experiment also reports each protocol's optimal
operating point — the paper observes sharp optima for SS and SS+RT, a
flatter optimum for SS+ER, and monotone improvement for SS+RTR toward
the HS level.
"""

from __future__ import annotations

from repro.core.protocols import Protocol
from repro.experiments.spec import (
    Axis,
    FidelityProfile,
    PanelSpec,
    ScenarioSpec,
    SeriesPlan,
    register_notes_hook,
    register_scenario,
)

EXPERIMENT_ID = "fig7"
TITLE = "Fig. 7: integrated cost C = 10*I + M vs refresh timer R"

COST_WEIGHT = 10.0


@register_notes_hook("fig7_optima")
def _optima_notes(panels) -> tuple[str, ...]:
    """Each protocol's optimal operating point along the cost curve."""
    notes = []
    for curve in panels[0].series:
        best_index = min(range(len(curve.y)), key=lambda i: curve.y[i])
        notes.append(
            f"{curve.label}: optimal R ~= {curve.x[best_index]:.3g}s "
            f"(C = {curve.y[best_index]:.4g})"
        )
    return tuple(notes)


SPEC = register_scenario(
    ScenarioSpec(
        scenario_id=EXPERIMENT_ID,
        title=TITLE,
        artifact="Fig. 7",
        family="singlehop",
        preset="kazaa",
        protocols=tuple(Protocol),
        axes=(Axis("refresh_interval", "geometric", low=0.1, high=100.0, points=25),),
        panels=(
            PanelSpec(
                name="integrated cost",
                x_label="refresh timer R (s)",
                y_label=f"C = {COST_WEIGHT:.0f}*I + M",
                plans=(
                    SeriesPlan(
                        "sweep",
                        axis="refresh_interval",
                        binder="coupled_timers",
                        metric="integrated_cost_10",
                    ),
                ),
                log_x=True,
                log_y=True,
            ),
        ),
        fidelities=(
            FidelityProfile("full"),
            FidelityProfile("fast", axis_points={"refresh_interval": 9}),
            FidelityProfile("smoke", axis_points={"refresh_interval": 4}),
        ),
        notes_hook="fig7_optima",
    )
)
