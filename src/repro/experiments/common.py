"""Shared sweep helpers for the experiment modules.

Sweeps are expressed as flat task batches and handed to
:mod:`repro.runtime`, which dedupes repeated ``(protocol, params)``
points through the memo cache and fans cache misses across the process
pool when a worker count is configured (``--jobs`` / ``REPRO_JOBS``).
Results come back in task order, so output is identical to the old
serial loops.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.core.multihop import MultiHopSolution
from repro.core.multihop.heterogeneous import HeterogeneousHop
from repro.core.multihop.topology import Topology
from repro.core.multihop.tree_model import TreeSolution
from repro.core.parameters import MultiHopParameters, SignalingParameters
from repro.core.protocols import Protocol
from repro.core.singlehop import SingleHopSolution
from repro.experiments.runner import Series
from repro.faults.gilbert import GilbertElliottParameters
from repro.runtime import (
    solve_gilbert_multihop_batch,
    solve_gilbert_singlehop_batch,
    solve_heterogeneous_batch,
    solve_multihop_batch,
    solve_singlehop_batch,
    solve_tree_batch,
)

__all__ = [
    "ALL_PROTOCOLS",
    "MULTIHOP_PROTOCOLS",
    "gilbert_metric_series",
    "heterogeneous_metric_series",
    "multihop_metric_series",
    "parametric_singlehop_series",
    "singlehop_metric_series",
    "tree_metric_series",
]

ALL_PROTOCOLS: tuple[Protocol, ...] = tuple(Protocol)
MULTIHOP_PROTOCOLS: tuple[Protocol, ...] = Protocol.multihop_family()


def _empty_series(protocols: Sequence[Protocol]) -> list[Series]:
    return [Series(protocol.value, (), ()) for protocol in protocols]


def _chunk(values: list, size: int) -> list[list]:
    return [values[i : i + size] for i in range(0, len(values), size)]


def singlehop_metric_series(
    xs: Sequence[float],
    make_params: Callable[[float], SignalingParameters],
    metric: Callable[[SingleHopSolution], float],
    protocols: Sequence[Protocol] = ALL_PROTOCOLS,
    jobs: int | None = None,
) -> list[Series]:
    """Sweep ``xs`` through the single-hop model; one series per protocol."""
    xs = tuple(xs)
    if not xs:
        return _empty_series(protocols)
    tasks = [(protocol, make_params(x)) for protocol in protocols for x in xs]
    solutions = solve_singlehop_batch(tasks, jobs=jobs)
    return [
        Series(protocol.value, xs, tuple(metric(solution) for solution in group))
        for protocol, group in zip(protocols, _chunk(solutions, len(xs)))
    ]


def parametric_singlehop_series(
    sweep: Sequence[float],
    make_params: Callable[[float], SignalingParameters],
    x_metric: Callable[[SingleHopSolution], float],
    y_metric: Callable[[SingleHopSolution], float],
    protocols: Sequence[Protocol] = ALL_PROTOCOLS,
    jobs: int | None = None,
) -> list[Series]:
    """Trade-off curves: sweep a hidden parameter, plot metric vs metric.

    Used for Figs. 9-10, which plot message overhead against
    inconsistency while a parameter (R, lambda_u or Delta) varies along
    the curve.
    """
    sweep = tuple(sweep)
    if not sweep:
        return _empty_series(protocols)
    tasks = [(protocol, make_params(value)) for protocol in protocols for value in sweep]
    solutions = solve_singlehop_batch(tasks, jobs=jobs)
    series = []
    for protocol, group in zip(protocols, _chunk(solutions, len(sweep))):
        points = sorted((x_metric(solution), y_metric(solution)) for solution in group)
        series.append(Series.from_points(protocol.value, points))
    return series


def heterogeneous_metric_series(
    xs: Sequence[float],
    make_point: Callable[
        [float], tuple[MultiHopParameters, tuple[HeterogeneousHop, ...]]
    ],
    metric: Callable[[MultiHopSolution], float],
    protocols: Sequence[Protocol] = MULTIHOP_PROTOCOLS,
    jobs: int | None = None,
) -> list[Series]:
    """Sweep ``xs`` through the heterogeneous multi-hop model.

    ``make_point(x)`` returns ``(params, hop_vector)`` for one sweep
    value — e.g. a hop count mapped to a per-hop loss/delay profile.
    One series per protocol, solved through the compiled-template
    batch path.
    """
    xs = tuple(xs)
    if not xs:
        return _empty_series(protocols)
    points = [make_point(x) for x in xs]
    tasks = [
        (protocol, params, hops) for protocol in protocols for params, hops in points
    ]
    solutions = solve_heterogeneous_batch(tasks, jobs=jobs)
    return [
        Series(protocol.value, xs, tuple(metric(solution) for solution in group))
        for protocol, group in zip(protocols, _chunk(solutions, len(xs)))
    ]


def tree_metric_series(
    xs: Sequence[float],
    make_point: Callable[[float], tuple[MultiHopParameters, Topology]],
    metric: Callable[[TreeSolution], float],
    protocols: Sequence[Protocol] = MULTIHOP_PROTOCOLS,
    jobs: int | None = None,
    label_suffix: str = "",
) -> list[Series]:
    """Sweep ``xs`` through the tree (multicast) model.

    ``make_point(x)`` returns ``(params, topology)`` for one sweep
    value — e.g. a fan-out mapped to a star, or a depth mapped to a
    binary tree.  One series per protocol (labels get
    ``label_suffix``, so several shapes can share a panel), solved
    through the compiled tree-template batch path.
    """
    xs = tuple(xs)
    if not xs:
        return [Series(f"{p.value}{label_suffix}", (), ()) for p in protocols]
    points = [make_point(x) for x in xs]
    tasks = [
        (protocol, params, topology)
        for protocol in protocols
        for params, topology in points
    ]
    solutions = solve_tree_batch(tasks, jobs=jobs)
    return [
        Series(
            f"{protocol.value}{label_suffix}",
            xs,
            tuple(metric(solution) for solution in group),
        )
        for protocol, group in zip(protocols, _chunk(solutions, len(xs)))
    ]


def gilbert_metric_series(
    xs: Sequence[float],
    make_point: Callable[
        [float],
        tuple[SignalingParameters | MultiHopParameters, GilbertElliottParameters],
    ],
    metric: Callable[[object], float],
    protocols: Sequence[Protocol] = ALL_PROTOCOLS,
    jobs: int | None = None,
    label_suffix: str = "",
) -> list[Series]:
    """Sweep ``xs`` through a Gilbert-Elliott product-chain model.

    ``make_point(x)`` returns ``(params, gilbert)`` for one sweep value
    — e.g. a burstiness knob mapped through
    :meth:`~repro.faults.gilbert.GilbertElliottParameters.matched_average`.
    The parameter type picks the model: :class:`SignalingParameters`
    solves the single-hop product chain, :class:`MultiHopParameters` the
    multi-hop one.  One series per protocol, solved through the
    compiled-template batch path.
    """
    xs = tuple(xs)
    if not xs:
        return [Series(f"{p.value}{label_suffix}", (), ()) for p in protocols]
    points = [make_point(x) for x in xs]
    tasks = [
        (protocol, params, gilbert)
        for protocol in protocols
        for params, gilbert in points
    ]
    multihop = isinstance(points[0][0], MultiHopParameters)
    solve = solve_gilbert_multihop_batch if multihop else solve_gilbert_singlehop_batch
    solutions = solve(tasks, jobs=jobs)
    return [
        Series(
            f"{protocol.value}{label_suffix}",
            xs,
            tuple(metric(solution) for solution in group),
        )
        for protocol, group in zip(protocols, _chunk(solutions, len(xs)))
    ]


def multihop_metric_series(
    xs: Sequence[float],
    make_params: Callable[[float], MultiHopParameters],
    metric: Callable[[MultiHopSolution], float],
    protocols: Sequence[Protocol] = MULTIHOP_PROTOCOLS,
    jobs: int | None = None,
) -> list[Series]:
    """Sweep ``xs`` through the multi-hop model; one series per protocol."""
    xs = tuple(xs)
    if not xs:
        return _empty_series(protocols)
    tasks = [(protocol, make_params(x)) for protocol in protocols for x in xs]
    solutions = solve_multihop_batch(tasks, jobs=jobs)
    return [
        Series(protocol.value, xs, tuple(metric(solution) for solution in group))
        for protocol, group in zip(protocols, _chunk(solutions, len(xs)))
    ]
