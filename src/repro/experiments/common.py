"""Shared sweep helpers for the experiment modules."""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.core.multihop import MultiHopModel, MultiHopSolution
from repro.core.parameters import MultiHopParameters, SignalingParameters
from repro.core.protocols import Protocol
from repro.core.singlehop import SingleHopModel, SingleHopSolution
from repro.experiments.runner import Series

__all__ = [
    "ALL_PROTOCOLS",
    "MULTIHOP_PROTOCOLS",
    "multihop_metric_series",
    "parametric_singlehop_series",
    "singlehop_metric_series",
]

ALL_PROTOCOLS: tuple[Protocol, ...] = tuple(Protocol)
MULTIHOP_PROTOCOLS: tuple[Protocol, ...] = Protocol.multihop_family()


def singlehop_metric_series(
    xs: Sequence[float],
    make_params: Callable[[float], SignalingParameters],
    metric: Callable[[SingleHopSolution], float],
    protocols: Sequence[Protocol] = ALL_PROTOCOLS,
) -> list[Series]:
    """Sweep ``xs`` through the single-hop model; one series per protocol."""
    series = []
    for protocol in protocols:
        ys = []
        for x in xs:
            solution = SingleHopModel(protocol, make_params(x)).solve()
            ys.append(metric(solution))
        series.append(Series(protocol.value, tuple(xs), tuple(ys)))
    return series


def parametric_singlehop_series(
    sweep: Sequence[float],
    make_params: Callable[[float], SignalingParameters],
    x_metric: Callable[[SingleHopSolution], float],
    y_metric: Callable[[SingleHopSolution], float],
    protocols: Sequence[Protocol] = ALL_PROTOCOLS,
) -> list[Series]:
    """Trade-off curves: sweep a hidden parameter, plot metric vs metric.

    Used for Figs. 9-10, which plot message overhead against
    inconsistency while a parameter (R, lambda_u or Delta) varies along
    the curve.
    """
    series = []
    for protocol in protocols:
        points = []
        for value in sweep:
            solution = SingleHopModel(protocol, make_params(value)).solve()
            points.append((x_metric(solution), y_metric(solution)))
        points.sort()
        series.append(Series.from_points(protocol.value, points))
    return series


def multihop_metric_series(
    xs: Sequence[float],
    make_params: Callable[[float], MultiHopParameters],
    metric: Callable[[MultiHopSolution], float],
    protocols: Sequence[Protocol] = MULTIHOP_PROTOCOLS,
) -> list[Series]:
    """Sweep ``xs`` through the multi-hop model; one series per protocol."""
    series = []
    for protocol in protocols:
        ys = []
        for x in xs:
            solution = MultiHopModel(protocol, make_params(x)).solve()
            ys.append(metric(solution))
        series.append(Series(protocol.value, tuple(xs), tuple(ys)))
    return series
