"""Experiment harness: one module per table/figure of the paper.

Importing this package populates the registry; run any experiment via

>>> from repro.experiments import run_experiment
>>> result = run_experiment("fig4", fast=True)
>>> print(result.to_text())
"""

from repro.experiments import (  # noqa: F401 - imported to populate the registry
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig17,
    fig18,
    fig19,
    scaling,
    table01,
)
from repro.experiments.runner import (
    ExperimentResult,
    Panel,
    Series,
    geometric_sweep,
    linear_sweep,
    registry,
)

__all__ = [
    "ExperimentResult",
    "Panel",
    "Series",
    "experiment_ids",
    "geometric_sweep",
    "linear_sweep",
    "registry",
    "run_experiment",
]


def experiment_ids() -> tuple[str, ...]:
    """All registered experiment ids, in a stable order."""
    return tuple(sorted(registry()))


def run_experiment(experiment_id: str, fast: bool = False, **kwargs) -> ExperimentResult:
    """Run one registered experiment by id."""
    experiments = registry()
    if experiment_id not in experiments:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(experiments)}"
        )
    return experiments[experiment_id](fast=fast, **kwargs)
