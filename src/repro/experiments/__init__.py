"""Experiment harness: one declarative scenario spec per table/figure.

Importing this package registers every canned scenario
(:mod:`repro.experiments.spec` holds the registry); the generic
executor runs any of them — or any parameterized variant — through the
batch solve path:

>>> from repro.experiments import run_scenario
>>> result = run_scenario("fig4", fidelity="fast")
>>> print(result.to_text())

The pre-spec entry point is kept as a thin shim:

>>> from repro.experiments import run_experiment
>>> result = run_experiment("fig4", fast=True)
"""

from repro.experiments import (  # noqa: F401 - imported to populate the registry
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig17,
    fig18,
    fig19,
    robustness,
    scaling,
    table01,
    transient_scenarios,
    trees,
)
from repro.experiments.executor import run_scenario
from repro.experiments.runner import (
    ExperimentResult,
    Panel,
    Provenance,
    Series,
    geometric_sweep,
    linear_sweep,
)
from repro.experiments.spec import (
    FAST,
    FULL,
    SMOKE,
    Axis,
    FidelityProfile,
    PanelSpec,
    ScenarioError,
    ScenarioSpec,
    SeriesPlan,
    register_scenario,
    scenario,
    scenario_ids,
    scenarios,
)

__all__ = [
    "FAST",
    "FULL",
    "SMOKE",
    "Axis",
    "ExperimentResult",
    "FidelityProfile",
    "Panel",
    "PanelSpec",
    "Provenance",
    "ScenarioError",
    "ScenarioSpec",
    "Series",
    "SeriesPlan",
    "experiment_ids",
    "geometric_sweep",
    "linear_sweep",
    "register_scenario",
    "registry",
    "run_experiment",
    "run_scenario",
    "scenario",
    "scenario_ids",
    "scenarios",
]


def experiment_ids() -> tuple[str, ...]:
    """All registered scenario ids, in a stable order."""
    return scenario_ids()


def run_experiment(experiment_id: str, fast: bool = False, **kwargs) -> ExperimentResult:
    """Run one registered scenario by id (back-compat shim).

    ``fast=True`` maps to the ``"fast"`` fidelity profile; use
    :func:`run_scenario` directly for the full declarative surface
    (named fidelities, parameter overrides, protocol subsets).  The
    pre-spec per-module kwargs keep working: ``seed`` (the Fig. 11/12
    simulation seed) maps to the executor's seed override, and a
    ``params`` preset instance (Table I) becomes a full override set.
    """
    fidelity = kwargs.pop("fidelity", None) or (FAST if fast else FULL)
    params = kwargs.pop("params", None)
    if params is not None:
        # The old table01.run(params=...) replaced the whole preset;
        # field-by-field overrides reproduce it through the spec path.
        import dataclasses

        overrides = dataclasses.asdict(params)
        overrides.update(kwargs.pop("overrides", None) or {})
        kwargs["overrides"] = overrides
    return run_scenario(scenario(experiment_id), fidelity, **kwargs)


def _registry_entry(scenario_id: str):
    def run(fast: bool = False, **kwargs) -> ExperimentResult:
        return run_experiment(scenario_id, fast=fast, **kwargs)

    run.__name__ = f"run_{scenario_id}"
    run.__doc__ = f"Run the {scenario_id!r} scenario (registry back-compat view)."
    return run


def registry() -> dict:
    """Back-compat view of the scenario registry: id -> ``run(fast)``."""
    return {sid: _registry_entry(sid) for sid in scenario_ids()}
