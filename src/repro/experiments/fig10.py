"""Figure 10 — overhead/inconsistency tradeoffs under workload sweeps.

Panel (a) traces each protocol's (I, M) curve as the state update rate
``lambda_u`` varies; panel (b) as the channel delay ``Delta`` varies
(with ``K = 4*Delta``, as everywhere).

Paper claims: at high inconsistency targets (I > 0.01) SS achieves a
given consistency with the least signaling; at stringent targets
(I < 0.005) HS is the cheapest.  The delay-driven curves are largely
insensitive to the delay itself.
"""

from __future__ import annotations

from repro.core.parameters import kazaa_defaults
from repro.experiments.common import parametric_singlehop_series
from repro.experiments.runner import ExperimentResult, Panel, geometric_sweep, register

EXPERIMENT_ID = "fig10"
TITLE = "Fig. 10: I-vs-M tradeoffs, varying update rate (a) and delay (b)"


@register(EXPERIMENT_ID)
def run(fast: bool = False) -> ExperimentResult:
    """Trace (I, M) curves by sweeping lambda_u and Delta."""
    base = kazaa_defaults()
    update_sweep = geometric_sweep(1.0 / 2000.0, 1.0, 7 if fast else 18)
    delay_sweep = geometric_sweep(0.003, 1.0, 7 if fast else 16)

    update_series = parametric_singlehop_series(
        update_sweep,
        lambda lam: base.replace(update_rate=lam),
        x_metric=lambda sol: sol.inconsistency_ratio,
        y_metric=lambda sol: sol.normalized_message_rate,
    )
    delay_series = parametric_singlehop_series(
        delay_sweep,
        lambda d: base.replace(delay=d, retransmission_interval=4.0 * d),
        x_metric=lambda sol: sol.inconsistency_ratio,
        y_metric=lambda sol: sol.normalized_message_rate,
    )
    panels = (
        Panel(
            name="a: varying update rate",
            x_label="inconsistency ratio I",
            y_label="message overhead M",
            series=tuple(update_series),
            log_x=True,
            log_y=True,
            shared_x=False,
        ),
        Panel(
            name="b: varying channel delay",
            x_label="inconsistency ratio I",
            y_label="message overhead M",
            series=tuple(delay_series),
            log_x=True,
            log_y=True,
            shared_x=False,
        ),
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, panels)
