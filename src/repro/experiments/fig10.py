"""Figure 10 — overhead/inconsistency tradeoffs under workload sweeps.

Panel (a) traces each protocol's (I, M) curve as the state update rate
``lambda_u`` varies; panel (b) as the channel delay ``Delta`` varies
(with ``K = 4*Delta``, as everywhere).

Paper claims: at high inconsistency targets (I > 0.01) SS achieves a
given consistency with the least signaling; at stringent targets
(I < 0.005) HS is the cheapest.  The delay-driven curves are largely
insensitive to the delay itself.
"""

from __future__ import annotations

from repro.core.protocols import Protocol
from repro.experiments.spec import (
    Axis,
    FidelityProfile,
    PanelSpec,
    ScenarioSpec,
    SeriesPlan,
    register_scenario,
)

EXPERIMENT_ID = "fig10"
TITLE = "Fig. 10: I-vs-M tradeoffs, varying update rate (a) and delay (b)"

SPEC = register_scenario(
    ScenarioSpec(
        scenario_id=EXPERIMENT_ID,
        title=TITLE,
        artifact="Fig. 10",
        family="singlehop",
        preset="kazaa",
        protocols=tuple(Protocol),
        axes=(
            Axis("update_rate", "geometric", low=1.0 / 2000.0, high=1.0, points=18),
            Axis("delay", "geometric", low=0.003, high=1.0, points=16),
        ),
        panels=(
            PanelSpec(
                name="a: varying update rate",
                x_label="inconsistency ratio I",
                y_label="message overhead M",
                plans=(
                    SeriesPlan(
                        "parametric",
                        axis="update_rate",
                        binder="update_rate",
                        x_metric="inconsistency_ratio",
                        y_metric="normalized_message_rate",
                    ),
                ),
                log_x=True,
                log_y=True,
                shared_x=False,
            ),
            PanelSpec(
                name="b: varying channel delay",
                x_label="inconsistency ratio I",
                y_label="message overhead M",
                plans=(
                    SeriesPlan(
                        "parametric",
                        axis="delay",
                        binder="delay_coupled_retx",
                        x_metric="inconsistency_ratio",
                        y_metric="normalized_message_rate",
                    ),
                ),
                log_x=True,
                log_y=True,
                shared_x=False,
            ),
        ),
        fidelities=(
            FidelityProfile("full"),
            FidelityProfile("fast", axis_points={"update_rate": 7, "delay": 7}),
            FidelityProfile("smoke", axis_points={"update_rate": 3, "delay": 3}),
        ),
    )
)
