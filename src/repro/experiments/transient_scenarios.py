"""Transient-analysis scenarios: recovery curves under faults.

The stationary scenarios ask *how much* inconsistency a protocol
carries at equilibrium; these ask *how fast* it gets there.  Each
scenario plots the probability that the whole 4-hop reservation chain
is consistent as a function of time, solved by uniformization over a
piecewise-constant generator (:mod:`repro.transient`) and cross-checked
against deterministic-timer simulations sampled on the same grid:

* ``time_to_consistency`` — cold start: the sender installs into an
  empty chain at t = 0 and the curve climbs from 0 toward the
  stationary consistency level.
* ``recovery_flap`` — a stationary chain's *last* link goes down for
  40 s (t = 5 .. 45): soft state on the far node expires during the
  outage and is rebuilt by refreshes afterwards.
* ``recovery_crash`` — the last node crashes silently at t = 5 and
  restarts empty 30 s later.  Hard state is excluded: a silent crash
  leaves no pending retransmission, so simulated HS recovers only via
  the slow sender-update trickle while the analytic projection assumes
  the in-flight rebuild loop survives — a real protocol effect the
  stationary model family cannot express (see ``docs/transient.md``).

All three fault the *last* hop/node, where the chain-prefix abstraction
behind the analytic degraded chain is exact.  Time grids avoid the
decay/recovery ramps of the deterministic-timer sim (state expires at
fixed, not exponential, delays there), where a point-in-time comparison
against the exponential-timer model is meaningless; see
``docs/transient.md`` for the windows.
"""

from __future__ import annotations

from repro.core.protocols import Protocol
from repro.experiments.spec import (
    Axis,
    FidelityProfile,
    PanelSpec,
    ScenarioSpec,
    SeriesPlan,
    SimPlan,
    TransientPlan,
    register_scenario,
)
from repro.faults.schedule import FaultSchedule, LinkFlap, NodeCrash

__all__ = [
    "RECOVERY_CRASH_SPEC",
    "RECOVERY_FLAP_SPEC",
    "TIME_TO_CONSISTENCY_SPEC",
]

#: Chain length shared by the transient scenarios: long enough that
#: multi-hop install latency shows, short enough for replicated runs.
TRANSIENT_HOPS = 4

#: The faulted element: the *last* link/node, so exactly one
#: state-holding node sits behind the fault and the analytic degraded
#: chain (a chain prefix plus one cut hop) matches the simulator.
FAULTED_ELEMENT = TRANSIENT_HOPS

#: Sim warmup for stationary-start scenarios (seconds): ~100 refresh
#: cycles, enough for the empirical state distribution to settle.
STATIONARY_WARMUP = 500.0

# Cold-start grids.  The simulator's deterministic per-hop delay makes
# the install wave arrive as a step at hops*delay = 0.12 s where the
# model has an Erlang ramp, so the grid skips (0.06, 0.18).
TTC_TIMES = (0.05, 0.2, 0.3, 0.4, 0.8, 1.5, 3.0, 6.0, 12.0, 25.0, 50.0)
TTC_FAST_TIMES = (0.05, 0.2, 0.8, 3.0, 12.0, 50.0)
TTC_SMOKE_TIMES = (0.2, 1.5, 10.0, 30.0)

# Flap grids: outage spans t = 5 .. 45.  Deterministic soft state
# expires in a step near t ~ 15-21 (timeout interval after the last
# pre-outage refresh) and rebuilds in a step near t ~ 45-51 (first
# post-outage refresh), so the grids skip both ramps.
FLAP_TIMES = (2.0, 4.5, 6.0, 8.0, 12.0, 26.0, 30.0, 35.0, 44.0, 52.0, 60.0, 70.0, 80.0)
FLAP_FAST_TIMES = (2.0, 6.0, 12.0, 30.0, 44.0, 52.0, 70.0)
FLAP_SMOKE_TIMES = (2.0, 6.0, 30.0, 52.0, 70.0)

# Crash grids: downtime spans t = 5 .. 35 (consistency is exactly zero
# there on both sides); the deterministic rebuild ramp t ~ 35-44 is
# skipped.
CRASH_TIMES = (2.0, 4.5, 6.0, 10.0, 15.0, 22.0, 30.0, 34.0, 44.0, 48.0, 52.0, 60.0, 80.0)
CRASH_FAST_TIMES = (2.0, 6.0, 15.0, 34.0, 44.0, 60.0, 80.0)
CRASH_SMOKE_TIMES = (2.0, 6.0, 20.0, 44.0, 70.0)

#: One 40 s outage of the last link, starting at t = 5.  The period is
#: effectively infinite (one flap per run); LinkFlap requires
#: periodicity, so pick one far past every horizon.
FLAP_SCHEDULE = FaultSchedule(
    flaps=(
        LinkFlap(
            link=FAULTED_ELEMENT,
            period=100_000.0,
            down_duration=40.0,
            offset=5.0,
        ),
    )
)

#: The last node crashes silently at t = 5, restarting empty at t = 35.
CRASH_SCHEDULE = FaultSchedule(
    crashes=(NodeCrash(node=FAULTED_ELEMENT, at=5.0, restart_after=30.0),)
)


def _curve_panel(name: str, x_label: str) -> PanelSpec:
    return PanelSpec(
        name=name,
        x_label=x_label,
        y_label="P(whole chain consistent)",
        plans=(
            SeriesPlan("sweep", axis="time"),
            SeriesPlan("sim", axis="time", label_suffix=" sim"),
        ),
    )


def _fidelities(
    full_times: tuple[float, ...],
    fast_times: tuple[float, ...],
    smoke_times: tuple[float, ...],
) -> tuple[FidelityProfile, ...]:
    return (
        FidelityProfile("full", axis_values={"time": full_times}, replications=40),
        FidelityProfile("fast", axis_values={"time": fast_times}, replications=16),
        FidelityProfile("smoke", axis_values={"time": smoke_times}, replications=8),
    )


TIME_TO_CONSISTENCY_SPEC = register_scenario(
    ScenarioSpec(
        scenario_id="time_to_consistency",
        title="Time to consistency: cold-start install wave on a 4-hop chain "
        "(beyond the paper)",
        artifact="beyond the paper",
        family="transient",
        preset="reservation",
        protocols=Protocol.multihop_family(),
        base_overrides={"hops": TRANSIENT_HOPS},
        axes=(Axis("time", "explicit", values=TTC_TIMES),),
        panels=(
            _curve_panel(
                "a: consistency probability over time",
                "time since install started (s)",
            ),
        ),
        fidelities=_fidelities(TTC_TIMES, TTC_FAST_TIMES, TTC_SMOKE_TIMES),
        sim=SimPlan(seed=41, sessions_mode="fixed"),
        transient=TransientPlan(initial="empty"),
        notes=(
            "the chain starts empty; the curve is the probability the "
            "installed state has reached (and survived at) every hop",
            "grid points inside (0.06, 0.18) s are omitted: the "
            "deterministic-delay sim installs in a 0.12 s step where "
            "the exponential-delay model has an Erlang ramp",
            "± on sim series is a 95% CI over replications.",
        ),
    )
)


RECOVERY_FLAP_SPEC = register_scenario(
    ScenarioSpec(
        scenario_id="recovery_flap",
        title="Recovery from a link flap: last hop down for 40 s "
        "(beyond the paper)",
        artifact="beyond the paper",
        family="transient",
        preset="reservation",
        protocols=Protocol.multihop_family(),
        base_overrides={"hops": TRANSIENT_HOPS},
        axes=(Axis("time", "explicit", values=FLAP_TIMES),),
        panels=(
            _curve_panel(
                "a: consistency through a 40 s outage (t = 5 .. 45)",
                "time (s); link down during [5, 45)",
            ),
        ),
        fidelities=_fidelities(FLAP_TIMES, FLAP_FAST_TIMES, FLAP_SMOKE_TIMES),
        sim=SimPlan(seed=43, sessions_mode="fixed"),
        transient=TransientPlan(
            initial="stationary",
            faults=FLAP_SCHEDULE,
            warmup=STATIONARY_WARMUP,
        ),
        notes=(
            "the chain starts at its nominal stationary distribution; "
            "the last link drops every message during the outage",
            "soft state behind the dead link expires at the timeout "
            "interval and is rebuilt by the first refreshes after the "
            "link returns; hard state waits out the outage with its "
            "retransmission loop still pending",
            "grid points inside the deterministic expiry (15, 21) and "
            "rebuild (45, 51) ramps are omitted (see docs/transient.md)",
            "± on sim series is a 95% CI over replications.",
        ),
    )
)


RECOVERY_CRASH_SPEC = register_scenario(
    ScenarioSpec(
        scenario_id="recovery_crash",
        title="Recovery from a node crash: last node down for 30 s, "
        "soft-state protocols (beyond the paper)",
        artifact="beyond the paper",
        family="transient",
        preset="reservation",
        protocols=(Protocol.SS, Protocol.SS_RT),
        base_overrides={"hops": TRANSIENT_HOPS},
        axes=(Axis("time", "explicit", values=CRASH_TIMES),),
        panels=(
            _curve_panel(
                "a: consistency through a silent crash (t = 5 .. 35)",
                "time (s); node down during [5, 35)",
            ),
        ),
        fidelities=_fidelities(CRASH_TIMES, CRASH_FAST_TIMES, CRASH_SMOKE_TIMES),
        sim=SimPlan(seed=47, sessions_mode="fixed"),
        transient=TransientPlan(
            initial="stationary",
            faults=CRASH_SCHEDULE,
            warmup=STATIONARY_WARMUP,
        ),
        notes=(
            "the crashed node loses all installed state and restarts "
            "empty; refresh traffic repopulates it within one refresh "
            "interval of the restart",
            "hard state is excluded: a silent crash leaves no pending "
            "retransmission, so simulated HS recovers only via the "
            "slow sender-update trickle while the analytic projection "
            "assumes the rebuild loop survives (docs/transient.md)",
            "grid points inside the deterministic rebuild ramp "
            "(35, 44) are omitted",
            "± on sim series is a 95% CI over replications.",
        ),
    )
)
