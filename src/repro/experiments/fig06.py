"""Figure 6 — impact of the soft-state refresh timer (single hop).

Sweeps ``R`` over 0.1 .. 100 s with the state-timeout timer coupled as
``T = 3R`` (as the paper does), plotting the inconsistency ratio (a)
and the normalized message rate (b).  HS uses no refresh timer and
appears as a flat reference line.

Paper claim: a short refresh timer buys consistency at the price of
signaling overhead — the fundamental soft-state tradeoff.
"""

from __future__ import annotations

from repro.core.parameters import kazaa_defaults
from repro.experiments.common import singlehop_metric_series
from repro.experiments.runner import ExperimentResult, Panel, geometric_sweep, register

EXPERIMENT_ID = "fig6"
TITLE = "Fig. 6: inconsistency and message rate vs refresh timer R (T = 3R)"


@register(EXPERIMENT_ID)
def run(fast: bool = False) -> ExperimentResult:
    """Sweep the refresh timer on the single-hop Kazaa defaults."""
    base = kazaa_defaults()
    xs = geometric_sweep(0.1, 100.0, 7 if fast else 16)
    make = lambda r: base.with_coupled_timers(r)  # noqa: E731
    inconsistency = singlehop_metric_series(
        xs, make, lambda sol: sol.inconsistency_ratio
    )
    message_rate = singlehop_metric_series(
        xs, make, lambda sol: sol.normalized_message_rate
    )
    panels = (
        Panel(
            name="a: inconsistency ratio",
            x_label="refresh timer R (s)",
            y_label="inconsistency ratio I",
            series=tuple(inconsistency),
            log_x=True,
            log_y=True,
        ),
        Panel(
            name="b: signaling message rate",
            x_label="refresh timer R (s)",
            y_label="normalized message rate M",
            series=tuple(message_rate),
            log_x=True,
            log_y=True,
        ),
    )
    notes = ("HS does not use R; its series is constant (the paper draws it as 'x').",)
    return ExperimentResult(EXPERIMENT_ID, TITLE, panels, notes)
