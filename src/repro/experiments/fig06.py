"""Figure 6 — impact of the soft-state refresh timer (single hop).

Sweeps ``R`` over 0.1 .. 100 s with the state-timeout timer coupled as
``T = 3R`` (as the paper does), plotting the inconsistency ratio (a)
and the normalized message rate (b).  HS uses no refresh timer and
appears as a flat reference line.

Paper claim: a short refresh timer buys consistency at the price of
signaling overhead — the fundamental soft-state tradeoff.
"""

from __future__ import annotations

from repro.core.protocols import Protocol
from repro.experiments.spec import (
    Axis,
    FidelityProfile,
    PanelSpec,
    ScenarioSpec,
    SeriesPlan,
    register_scenario,
)

EXPERIMENT_ID = "fig6"
TITLE = "Fig. 6: inconsistency and message rate vs refresh timer R (T = 3R)"

SPEC = register_scenario(
    ScenarioSpec(
        scenario_id=EXPERIMENT_ID,
        title=TITLE,
        artifact="Fig. 6",
        family="singlehop",
        preset="kazaa",
        protocols=tuple(Protocol),
        axes=(Axis("refresh_interval", "geometric", low=0.1, high=100.0, points=16),),
        panels=(
            PanelSpec(
                name="a: inconsistency ratio",
                x_label="refresh timer R (s)",
                y_label="inconsistency ratio I",
                plans=(
                    SeriesPlan(
                        "sweep",
                        axis="refresh_interval",
                        binder="coupled_timers",
                        metric="inconsistency_ratio",
                    ),
                ),
                log_x=True,
                log_y=True,
            ),
            PanelSpec(
                name="b: signaling message rate",
                x_label="refresh timer R (s)",
                y_label="normalized message rate M",
                plans=(
                    SeriesPlan(
                        "sweep",
                        axis="refresh_interval",
                        binder="coupled_timers",
                        metric="normalized_message_rate",
                    ),
                ),
                log_x=True,
                log_y=True,
            ),
        ),
        fidelities=(
            FidelityProfile("full"),
            FidelityProfile("fast", axis_points={"refresh_interval": 7}),
            FidelityProfile("smoke", axis_points={"refresh_interval": 3}),
        ),
        notes=(
            "HS does not use R; its series is constant (the paper draws it as 'x').",
        ),
    )
)
