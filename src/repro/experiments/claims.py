"""The paper's per-figure claims, as machine-checkable predicates.

Each :class:`FigureClaim` binds one sentence of the paper's evaluation
narrative to a predicate over the regenerated experiment.  The claims
registry powers ``repro-signaling report`` (the EXPERIMENTS.md evidence
table) and complements the fuller shape checks in
``tests/experiments/test_figure_shapes.py``.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Iterable

from repro.experiments import run_experiment
from repro.experiments.runner import ExperimentResult

__all__ = ["ClaimOutcome", "FigureClaim", "evaluate_claims", "figure_claims", "render_report"]


@dataclasses.dataclass(frozen=True)
class FigureClaim:
    """One verifiable sentence from the paper's evaluation."""

    experiment_id: str
    claim: str
    check: Callable[[ExperimentResult], bool]


@dataclasses.dataclass(frozen=True)
class ClaimOutcome:
    """Result of evaluating one claim against a regenerated figure."""

    claim: FigureClaim
    holds: bool


def _series(result: ExperimentResult, panel: str, label: str):
    return result.panel(panel).series_by_label(label)


def figure_claims() -> tuple[FigureClaim, ...]:
    """Headline claims, one or two per evaluation figure."""
    return (
        FigureClaim(
            "fig4",
            "inconsistency and message rate both fall as sessions lengthen",
            lambda r: all(
                s.y[0] > s.y[-1]
                for panel in r.panels
                for s in panel.series
            ),
        ),
        FigureClaim(
            "fig4",
            "SS+ER's consistency gain over SS grows as sessions shrink",
            lambda r: (
                _series(r, "a: inconsistency ratio", "SS").y[0]
                / _series(r, "a: inconsistency ratio", "SS+ER").y[0]
                > _series(r, "a: inconsistency ratio", "SS").y[-1]
                / _series(r, "a: inconsistency ratio", "SS+ER").y[-1]
            ),
        ),
        FigureClaim(
            "fig5",
            "reliable transmission helps significantly at modest (5%) loss",
            lambda r: _series(r, "a: vs loss rate", "SS+RT").y[2]
            < 0.8 * _series(r, "a: vs loss rate", "SS").y[2],
        ),
        FigureClaim(
            "fig5",
            "inconsistency grows roughly linearly with channel delay",
            lambda r: all(
                s.y == tuple(sorted(s.y)) for s in r.panel("b: vs channel delay").series
            ),
        ),
        FigureClaim(
            "fig6",
            "short refresh timers buy consistency; long ones cut overhead",
            lambda r: all(
                _series(r, "a: inconsistency ratio", label).y[0]
                < _series(r, "a: inconsistency ratio", label).y[-1]
                and _series(r, "b: signaling message rate", label).y[0]
                > _series(r, "b: signaling message rate", label).y[-1]
                for label in ("SS", "SS+ER", "SS+RT", "SS+RTR")
            ),
        ),
        FigureClaim(
            "fig7",
            "SS and SS+RT have sensitive interior cost optima",
            lambda r: all(
                min(_series(r, "integrated cost", label).y)
                < 0.5 * min(
                    _series(r, "integrated cost", label).y[0],
                    _series(r, "integrated cost", label).y[-1],
                )
                for label in ("SS", "SS+RT")
            ),
        ),
        FigureClaim(
            "fig7",
            "SS+RTR with long timers matches hard-state cost",
            lambda r: min(_series(r, "integrated cost", "SS+RTR").y)
            < 1.2 * _series(r, "integrated cost", "HS").y[0],
        ),
        FigureClaim(
            "fig8",
            "all soft-state protocols degrade when T < R",
            lambda r: all(
                s.y[0] > 10 * min(s.y)
                for s in r.panel("a: vs state-timeout timer").series
                if s.label != "HS"
            ),
        ),
        FigureClaim(
            "fig8",
            "HS is the most sensitive to the retransmission timer",
            lambda r: (
                max(_series(r, "b: vs retransmission timer", "HS").y)
                - min(_series(r, "b: vs retransmission timer", "HS").y)
            )
            > (
                max(_series(r, "b: vs retransmission timer", "SS+RTR").y)
                - min(_series(r, "b: vs retransmission timer", "SS+RTR").y)
            ),
        ),
        FigureClaim(
            "fig9",
            "SS+RTR's consistency is insensitive to the refresh rate",
            lambda r: max(_series(r, "tradeoff", "SS+RTR").x)
            < 2.0 * min(_series(r, "tradeoff", "SS+RTR").x),
        ),
        FigureClaim(
            "fig10",
            "HS reaches the tightest consistency levels",
            lambda r: min(_series(r, "a: varying update rate", "HS").x)
            <= min(
                min(_series(r, "a: varying update rate", label).x)
                for label in ("SS", "SS+ER", "SS+RT")
            ),
        ),
        FigureClaim(
            "fig11",
            "deterministic-timer simulation tracks the model's inconsistency",
            lambda r: all(
                abs(sim - model) <= max(0.4 * model, 1e-3)
                for label in ("SS", "SS+ER", "SS+RT", "SS+RTR", "HS")
                for model, sim in zip(
                    _series(r, "a: inconsistency ratio", label).y,
                    _series(r, "a: inconsistency ratio", f"{label} sim").y,
                )
            ),
        ),
        FigureClaim(
            "fig12",
            "simulation tracks the model across refresh-timer settings",
            lambda r: all(
                abs(sim - model) <= max(0.4 * model, 1e-3)
                for label in ("SS", "SS+ER", "SS+RT", "SS+RTR", "HS")
                for model, sim in zip(
                    _series(r, "a: inconsistency ratio", label).y,
                    _series(r, "a: inconsistency ratio", f"{label} sim").y,
                )
            ),
        ),
        FigureClaim(
            "fig17",
            "per-hop inconsistency grows ~linearly with distance",
            lambda r: all(
                tuple(s.y) == tuple(sorted(s.y))
                for s in r.panel("per-hop inconsistency").series
            ),
        ),
        FigureClaim(
            "fig17",
            "SS+RT reaches HS-comparable consistency, HS slightly ahead",
            lambda r: _series(r, "per-hop inconsistency", "HS").y[-1]
            <= _series(r, "per-hop inconsistency", "SS+RT").y[-1]
            <= 1.25 * _series(r, "per-hop inconsistency", "HS").y[-1],
        ),
        FigureClaim(
            "fig18",
            "inconsistency and overhead grow monotonically with hops",
            lambda r: all(
                tuple(s.y) == tuple(sorted(s.y))
                for panel in r.panels
                for s in panel.series
            ),
        ),
        FigureClaim(
            "fig18",
            "hop-by-hop reliability adds little overhead over SS",
            lambda r: (
                _series(r, "b: signaling message rate", "SS+RT").y[-1]
                - _series(r, "b: signaling message rate", "SS").y[-1]
            )
            / _series(r, "b: signaling message rate", "SS").y[-1]
            < 0.25,
        ),
        FigureClaim(
            "fig19",
            "multi-hop SS has a sharp refresh-timer sweet spot",
            lambda r: (
                _series(r, "a: inconsistency ratio", "SS").y[-1]
                > 5 * min(_series(r, "a: inconsistency ratio", "SS").y)
            ),
        ),
    )


def evaluate_claims(
    claims: Iterable[FigureClaim] | None = None,
    fast: bool = True,
    fidelity: str | None = None,
) -> list[ClaimOutcome]:
    """Regenerate each figure once and evaluate its claims.

    ``fidelity`` names a scenario fidelity profile and takes precedence
    over the legacy ``fast`` boolean.
    """
    if fidelity is None:
        fidelity = "fast" if fast else "full"
    claims = tuple(claims) if claims is not None else figure_claims()
    cache: dict[str, ExperimentResult] = {}
    outcomes = []
    for claim in claims:
        if claim.experiment_id not in cache:
            cache[claim.experiment_id] = run_experiment(
                claim.experiment_id, fidelity=fidelity
            )
        outcomes.append(
            ClaimOutcome(claim=claim, holds=claim.check(cache[claim.experiment_id]))
        )
    return outcomes


def render_report(
    outcomes: Iterable[ClaimOutcome] | None = None,
    fast: bool = True,
    fidelity: str | None = None,
) -> str:
    """Pass/fail table for every figure claim."""
    if outcomes is None:
        outcomes = evaluate_claims(fast=fast, fidelity=fidelity)
    outcomes = list(outcomes)
    lines = ["Paper claims vs this reproduction:"]
    for outcome in outcomes:
        mark = "PASS" if outcome.holds else "FAIL"
        lines.append(f"  [{mark}] {outcome.claim.experiment_id:6s} {outcome.claim.claim}")
    passed = sum(1 for o in outcomes if o.holds)
    lines.append(f"  {passed}/{len(outcomes)} claims hold")
    return "\n".join(lines)
