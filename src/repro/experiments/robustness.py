"""Fault-injection scenarios — bursty loss and link churn, beyond the paper.

The paper's channels lose messages i.i.d. per transmission.  Real
signaling paths fail in bursts (congested queues, fading links) and in
outages (flapping interfaces, rebooting routers); :mod:`repro.faults`
models both, and these scenarios probe how soft-state robustness claims
survive them:

* ``burst_loss`` — single-hop signaling over a Gilbert-Elliott channel,
  sweeping the burstiness knob at *matched average loss* (see
  :meth:`~repro.faults.gilbert.GilbertElliottParameters.matched_average`):
  every point loses the same fraction of messages on average, so any
  curve movement is attributable to loss *correlation* alone.  Model
  curves come from the channel x protocol product chain
  (:mod:`repro.core.gilbert`), validated against deterministic-timer
  simulations with the same shared modulator.
* ``burst_loss_hops`` — the same sweep on a multi-hop chain with one
  path-wide channel state (all hops fade together, the worst case for
  hop-by-hop recovery), model vs simulation.
* ``link_flap`` — simulation-only link churn: the first hop of the
  chain flaps on a deterministic schedule
  (:class:`~repro.faults.schedule.LinkFlap`), sweeping the flap rate at
  a fixed 30 s outage.  There is no analytic flap model; the scenario
  reports how inconsistency and repair traffic scale with churn for
  each protocol family.

The ``burstiness = 0`` points are exactly degenerate channels, so the
model curve anchors bit-identically to the i.i.d. baseline
(:func:`repro.validation.parity.gilbert_parity_checks`).
"""

from __future__ import annotations

from repro.core.protocols import Protocol
from repro.experiments.spec import (
    Axis,
    FidelityProfile,
    PanelSpec,
    ScenarioSpec,
    SeriesPlan,
    SimPlan,
    register_binder,
    register_scenario,
)
from repro.faults.gilbert import GilbertElliottParameters
from repro.faults.schedule import FaultSchedule, LinkFlap

__all__ = ["BURST_LOSS_HOPS_SPEC", "BURST_LOSS_SPEC", "LINK_FLAP_SPEC"]

#: Swept burst concentrations (0 = i.i.d., 1 = maximally bursty).
BURSTINESS_VALUES = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
FAST_BURSTINESS_VALUES = (0.0, 0.5, 1.0)
SMOKE_BURSTINESS_VALUES = (0.0, 1.0)

#: Swept flap rates (outages per 1000 s); the outage itself stays 30 s.
FLAP_RATE_VALUES = (0.5, 1.0, 2.0, 4.0)
FAST_FLAP_RATE_VALUES = (1.0, 4.0)
SMOKE_FLAP_RATE_VALUES = (2.0,)

#: Outage length of each flap window (seconds): several refresh/timeout
#: cycles, so soft state actually expires during the outage.
FLAP_DOWN_DURATION = 30.0

#: The flapping hop: the first link, upstream of every relay, so an
#: outage disconnects the whole chain from the sender (worst case).
FLAP_LINK = 1

#: Chain length for the multi-hop fault scenarios (the reservation
#: preset's 20 hops make simulated churn runs needlessly heavy).
FAULT_HOPS = 4

#: Mean bad-state sojourn for the multi-hop sweep (seconds).  Bursts
#: must outlive the 5 s per-hop refresh interval: a sub-refresh burst
#: decorrelates between deterministic refresh firings, so the simulated
#: curves stay flat while the memoryless product chain still predicts
#: correlated consecutive refresh losses.  A 10 s burst spans two
#: refresh cycles and both views see the same correlation effect.
HOP_BURST_DURATION = 10.0


@register_binder("gilbert_burstiness")
def _bind_burstiness(base, x: float):
    """Burstiness ``x`` at the preset's average loss (matched average)."""
    return base, GilbertElliottParameters.matched_average(base.loss_rate, x)


@register_binder("gilbert_hop_burstiness")
def _bind_hop_burstiness(base, x: float):
    """Burstiness ``x`` with bursts spanning the per-hop refresh interval."""
    return base, GilbertElliottParameters.matched_average(
        base.loss_rate, x, mean_bad_duration=HOP_BURST_DURATION
    )


@register_binder("link_flap_rate")
def _bind_flap_rate(base, x: float):
    """Flap rate ``x`` per 1000 s as a deterministic outage schedule.

    The first outage starts a quarter period in, past the harness
    warmup at every swept rate.
    """
    period = 1000.0 / x
    schedule = FaultSchedule(
        flaps=(
            LinkFlap(
                link=FLAP_LINK,
                period=period,
                down_duration=FLAP_DOWN_DURATION,
                offset=0.25 * period,
            ),
        )
    )
    return base, schedule


BURST_LOSS_SPEC = register_scenario(
    ScenarioSpec(
        scenario_id="burst_loss",
        title="Bursty loss: Gilbert-Elliott channel at matched average loss "
        "(beyond the paper)",
        artifact="beyond the paper",
        family="burst_loss",
        preset="kazaa",
        protocols=tuple(Protocol),
        axes=(Axis("burstiness", "explicit", values=BURSTINESS_VALUES),),
        panels=(
            PanelSpec(
                name="a: inconsistency ratio",
                x_label="burstiness (0 = i.i.d., matched average loss)",
                y_label="inconsistency ratio I",
                plans=(
                    SeriesPlan(
                        "sweep",
                        axis="burstiness",
                        binder="gilbert_burstiness",
                        metric="inconsistency_ratio",
                    ),
                    SeriesPlan(
                        "sim",
                        axis="burstiness",
                        binder="gilbert_burstiness",
                        metric="inconsistency",
                        label_suffix=" sim",
                    ),
                ),
                log_y=True,
            ),
            PanelSpec(
                name="b: signaling message rate",
                x_label="burstiness (0 = i.i.d., matched average loss)",
                y_label="normalized message rate M",
                plans=(
                    SeriesPlan(
                        "sweep",
                        axis="burstiness",
                        binder="gilbert_burstiness",
                        metric="normalized_message_rate",
                    ),
                    SeriesPlan(
                        "sim",
                        axis="burstiness",
                        binder="gilbert_burstiness",
                        metric="message_rate",
                        label_suffix=" sim",
                    ),
                ),
            ),
        ),
        fidelities=(
            FidelityProfile("full", replications=5, sessions=80),
            FidelityProfile(
                "fast",
                axis_values={"burstiness": FAST_BURSTINESS_VALUES},
                replications=3,
                sessions=25,
            ),
            FidelityProfile(
                "smoke",
                axis_values={"burstiness": SMOKE_BURSTINESS_VALUES},
                replications=2,
                sessions=10,
            ),
        ),
        sim=SimPlan(seed=41, sessions_mode="fixed"),
        notes=(
            "every point has the same average loss; only the burst "
            "concentration varies (stationary bad fraction 0.1, mean "
            "burst 1 s)",
            "burstiness 0 is exactly the i.i.d. channel: model points "
            "anchor bit-identically to the baseline",
            "simulated series share one channel modulator across both "
            "directions; ± is a 95% CI.",
        ),
    )
)


BURST_LOSS_HOPS_SPEC = register_scenario(
    ScenarioSpec(
        scenario_id="burst_loss_hops",
        title="Bursty loss on a chain: path-wide Gilbert-Elliott channel "
        "(beyond the paper)",
        artifact="beyond the paper",
        family="burst_loss",
        preset="reservation",
        protocols=Protocol.multihop_family(),
        base_overrides={"hops": FAULT_HOPS},
        axes=(Axis("burstiness", "explicit", values=BURSTINESS_VALUES),),
        panels=(
            PanelSpec(
                name="a: inconsistency ratio",
                x_label="burstiness (0 = i.i.d., matched average loss)",
                y_label="inconsistency ratio I (any hop)",
                plans=(
                    SeriesPlan(
                        "sweep",
                        axis="burstiness",
                        binder="gilbert_hop_burstiness",
                        metric="inconsistency_ratio",
                    ),
                    SeriesPlan(
                        "sim",
                        axis="burstiness",
                        binder="gilbert_hop_burstiness",
                        metric="inconsistency",
                        label_suffix=" sim",
                    ),
                ),
                log_y=True,
            ),
            PanelSpec(
                name="b: signaling message rate",
                x_label="burstiness (0 = i.i.d., matched average loss)",
                y_label="per-link transmissions per second",
                plans=(
                    SeriesPlan(
                        "sweep",
                        axis="burstiness",
                        binder="gilbert_hop_burstiness",
                        metric="message_rate",
                    ),
                    SeriesPlan(
                        "sim",
                        axis="burstiness",
                        binder="gilbert_hop_burstiness",
                        metric="message_rate",
                        label_suffix=" sim",
                    ),
                ),
            ),
        ),
        fidelities=(
            FidelityProfile("full", replications=5, sim_budget=20_000.0),
            FidelityProfile(
                "fast",
                axis_values={"burstiness": FAST_BURSTINESS_VALUES},
                replications=3,
                sim_budget=6_000.0,
            ),
            FidelityProfile(
                "smoke",
                axis_values={"burstiness": SMOKE_BURSTINESS_VALUES},
                replications=2,
                sim_budget=1_500.0,
            ),
        ),
        sim=SimPlan(seed=43, sessions_mode="fixed"),
        notes=(
            "one path-wide channel state: every hop fades together "
            "(the product chain's assumption, and the worst case for "
            "hop-by-hop recovery)",
            "bursts average 10 s — two refresh cycles — so consecutive "
            "refreshes see correlated losses",
            "simulated series run for the fidelity's sim_budget "
            "simulated seconds per point; ± is a 95% CI.",
        ),
    )
)


LINK_FLAP_SPEC = register_scenario(
    ScenarioSpec(
        scenario_id="link_flap",
        title="Link flaps: periodic first-hop outages vs flap rate "
        "(beyond the paper)",
        artifact="beyond the paper",
        family="link_flap",
        preset="reservation",
        protocols=Protocol.multihop_family(),
        base_overrides={"hops": FAULT_HOPS},
        axes=(Axis("flap_rate", "explicit", values=FLAP_RATE_VALUES),),
        panels=(
            PanelSpec(
                name="a: inconsistency ratio",
                x_label="flap rate (outages per 1000 s, 30 s each)",
                y_label="inconsistency ratio I (any hop)",
                plans=(
                    SeriesPlan(
                        "sim",
                        axis="flap_rate",
                        binder="link_flap_rate",
                        metric="inconsistency",
                        label_suffix=" sim",
                    ),
                ),
            ),
            PanelSpec(
                name="b: signaling message rate",
                x_label="flap rate (outages per 1000 s, 30 s each)",
                y_label="per-link transmissions per second",
                plans=(
                    SeriesPlan(
                        "sim",
                        axis="flap_rate",
                        binder="link_flap_rate",
                        metric="message_rate",
                        label_suffix=" sim",
                    ),
                ),
            ),
        ),
        fidelities=(
            FidelityProfile("full", replications=5, sim_budget=20_000.0),
            FidelityProfile(
                "fast",
                axis_values={"flap_rate": FAST_FLAP_RATE_VALUES},
                replications=3,
                sim_budget=6_000.0,
            ),
            FidelityProfile(
                "smoke",
                axis_values={"flap_rate": SMOKE_FLAP_RATE_VALUES},
                replications=2,
                sim_budget=1_500.0,
            ),
        ),
        sim=SimPlan(seed=47, sessions_mode="fixed"),
        notes=(
            "the first hop flaps, disconnecting the whole chain from "
            "the sender during each outage; messages sent into a down "
            "link are lost deterministically",
            "no analytic flap model exists: both panels are "
            "simulation-only; ± is a 95% CI.",
        ),
    )
)
