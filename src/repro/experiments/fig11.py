"""Figure 11 — deterministic-timer simulation vs the analytic model,
sweeping the mean session length ``1/mu_r``.

For each protocol the experiment reports the model curve and the
simulated curve (deterministic R/T/K timers, 95% confidence interval),
for both the inconsistency ratio (panel a) and the normalized message
rate (panel b).

Paper claim: deterministic timers change the inconsistency ratio by
< 1% absolute-shape terms (a few percent relative) and the message rate
by 5-15%, leaving every qualitative conclusion intact.
"""

from __future__ import annotations

from repro.core.protocols import Protocol
from repro.experiments.spec import (
    Axis,
    FidelityProfile,
    PanelSpec,
    ScenarioSpec,
    SeriesPlan,
    SimPlan,
    register_scenario,
)

EXPERIMENT_ID = "fig11"
TITLE = "Fig. 11: deterministic-timer simulation vs model, sweeping 1/mu_r"

SPEC = register_scenario(
    ScenarioSpec(
        scenario_id=EXPERIMENT_ID,
        title=TITLE,
        artifact="Fig. 11",
        family="singlehop",
        preset="kazaa",
        protocols=tuple(Protocol),
        axes=(
            Axis("session_length", "geometric", low=10.0, high=100_000.0, points=6),
        ),
        panels=(
            PanelSpec(
                name="a: inconsistency ratio",
                x_label="1/mu_r (s)",
                y_label="inconsistency ratio I",
                plans=(
                    SeriesPlan(
                        "sweep",
                        axis="session_length",
                        binder="session_length",
                        metric="inconsistency_ratio",
                    ),
                    SeriesPlan(
                        "sim",
                        axis="session_length",
                        binder="session_length",
                        metric="inconsistency",
                        label_suffix=" sim",
                    ),
                ),
                log_x=True,
                log_y=True,
            ),
            PanelSpec(
                name="b: signaling message rate",
                x_label="1/mu_r (s)",
                y_label="normalized message rate M",
                plans=(
                    SeriesPlan(
                        "sweep",
                        axis="session_length",
                        binder="session_length",
                        metric="normalized_message_rate",
                    ),
                    SeriesPlan(
                        "sim",
                        axis="session_length",
                        binder="session_length",
                        metric="message_rate",
                        label_suffix=" sim",
                    ),
                ),
                log_x=True,
            ),
        ),
        fidelities=(
            FidelityProfile("full", replications=5, sim_budget=120_000.0),
            FidelityProfile(
                "fast",
                axis_values={"session_length": (30.0, 300.0, 3000.0)},
                replications=3,
                sim_budget=30_000.0,
            ),
            FidelityProfile(
                "smoke",
                axis_values={"session_length": (300.0,)},
                replications=2,
                sim_budget=3_000.0,
            ),
        ),
        sim=SimPlan(seed=11, sessions_mode="budget"),
        notes=("simulated series use deterministic R/T/K timers; ± is a 95% CI.",),
    )
)
