"""Figure 11 — deterministic-timer simulation vs the analytic model,
sweeping the mean session length ``1/mu_r``.

For each protocol the experiment reports the model curve and the
simulated curve (deterministic R/T/K timers, 95% confidence interval),
for both the inconsistency ratio (panel a) and the normalized message
rate (panel b).

Paper claim: deterministic timers change the inconsistency ratio by
< 1% absolute-shape terms (a few percent relative) and the message rate
by 5-15%, leaving every qualitative conclusion intact.
"""

from __future__ import annotations

from repro.core.parameters import kazaa_defaults
from repro.core.protocols import Protocol
from repro.core.singlehop import SingleHopModel
from repro.experiments.runner import ExperimentResult, Panel, Series, geometric_sweep, register
from repro.experiments.simsupport import sessions_for_length, simulate_singlehop_point

EXPERIMENT_ID = "fig11"
TITLE = "Fig. 11: deterministic-timer simulation vs model, sweeping 1/mu_r"


@register(EXPERIMENT_ID)
def run(fast: bool = False, seed: int = 11) -> ExperimentResult:
    """Model curves plus replicated deterministic-timer simulations."""
    base = kazaa_defaults()
    if fast:
        xs = (30.0, 300.0, 3000.0)
        replications = 3
        budget = 30_000.0
    else:
        xs = tuple(geometric_sweep(10.0, 100_000.0, 6))
        replications = 5
        budget = 120_000.0

    model_i: list[Series] = []
    model_m: list[Series] = []
    sim_i: list[Series] = []
    sim_m: list[Series] = []
    for protocol in Protocol:
        mi, mm = [], []
        si, si_err, sm, sm_err = [], [], [], []
        for session_length in xs:
            params = base.replace(removal_rate=1.0 / session_length)
            solution = SingleHopModel(protocol, params).solve()
            mi.append(solution.inconsistency_ratio)
            mm.append(solution.normalized_message_rate)
            point = simulate_singlehop_point(
                protocol,
                params,
                sessions=sessions_for_length(session_length, budget),
                replications=replications,
                seed=seed,
            )
            si.append(point.inconsistency)
            si_err.append(point.inconsistency_err)
            sm.append(point.message_rate)
            sm_err.append(point.message_rate_err)
        model_i.append(Series(protocol.value, xs, tuple(mi)))
        model_m.append(Series(protocol.value, xs, tuple(mm)))
        sim_i.append(Series(f"{protocol.value} sim", xs, tuple(si), tuple(si_err)))
        sim_m.append(Series(f"{protocol.value} sim", xs, tuple(sm), tuple(sm_err)))

    panels = (
        Panel(
            name="a: inconsistency ratio",
            x_label="1/mu_r (s)",
            y_label="inconsistency ratio I",
            series=tuple(model_i) + tuple(sim_i),
            log_x=True,
            log_y=True,
        ),
        Panel(
            name="b: signaling message rate",
            x_label="1/mu_r (s)",
            y_label="normalized message rate M",
            series=tuple(model_m) + tuple(sim_m),
            log_x=True,
        ),
    )
    notes = ("simulated series use deterministic R/T/K timers; ± is a 95% CI.",)
    return ExperimentResult(EXPERIMENT_ID, TITLE, panels, notes)
