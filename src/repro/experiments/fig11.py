"""Figure 11 — deterministic-timer simulation vs the analytic model,
sweeping the mean session length ``1/mu_r``.

For each protocol the experiment reports the model curve and the
simulated curve (deterministic R/T/K timers, 95% confidence interval),
for both the inconsistency ratio (panel a) and the normalized message
rate (panel b).

Paper claim: deterministic timers change the inconsistency ratio by
< 1% absolute-shape terms (a few percent relative) and the message rate
by 5-15%, leaving every qualitative conclusion intact.
"""

from __future__ import annotations

from repro.core.parameters import kazaa_defaults
from repro.core.protocols import Protocol
from repro.experiments.runner import ExperimentResult, Panel, Series, geometric_sweep, register
from repro.experiments.simsupport import sessions_for_length, simulate_singlehop_batch
from repro.runtime import solve_singlehop_batch

EXPERIMENT_ID = "fig11"
TITLE = "Fig. 11: deterministic-timer simulation vs model, sweeping 1/mu_r"


@register(EXPERIMENT_ID)
def run(fast: bool = False, seed: int = 11) -> ExperimentResult:
    """Model curves plus replicated deterministic-timer simulations."""
    base = kazaa_defaults()
    if fast:
        xs = (30.0, 300.0, 3000.0)
        replications = 3
        budget = 30_000.0
    else:
        xs = tuple(geometric_sweep(10.0, 100_000.0, 6))
        replications = 5
        budget = 120_000.0

    protocols = tuple(Protocol)
    grid = [
        (protocol, base.replace(removal_rate=1.0 / session_length), session_length)
        for protocol in protocols
        for session_length in xs
    ]
    solutions = solve_singlehop_batch([(p, params) for p, params, _ in grid])
    points = simulate_singlehop_batch(
        (p, params, sessions_for_length(length, budget), replications, seed)
        for p, params, length in grid
    )

    model_i: list[Series] = []
    model_m: list[Series] = []
    sim_i: list[Series] = []
    sim_m: list[Series] = []
    for k, protocol in enumerate(protocols):
        chunk = slice(k * len(xs), (k + 1) * len(xs))
        model, sim = solutions[chunk], points[chunk]
        model_i.append(Series(protocol.value, xs, tuple(s.inconsistency_ratio for s in model)))
        model_m.append(
            Series(protocol.value, xs, tuple(s.normalized_message_rate for s in model))
        )
        sim_i.append(
            Series(
                f"{protocol.value} sim",
                xs,
                tuple(p.inconsistency for p in sim),
                tuple(p.inconsistency_err for p in sim),
            )
        )
        sim_m.append(
            Series(
                f"{protocol.value} sim",
                xs,
                tuple(p.message_rate for p in sim),
                tuple(p.message_rate_err for p in sim),
            )
        )

    panels = (
        Panel(
            name="a: inconsistency ratio",
            x_label="1/mu_r (s)",
            y_label="inconsistency ratio I",
            series=tuple(model_i) + tuple(sim_i),
            log_x=True,
            log_y=True,
        ),
        Panel(
            name="b: signaling message rate",
            x_label="1/mu_r (s)",
            y_label="normalized message rate M",
            series=tuple(model_m) + tuple(sim_m),
            log_x=True,
        ),
    )
    notes = ("simulated series use deterministic R/T/K timers; ± is a 95% CI.",)
    return ExperimentResult(EXPERIMENT_ID, TITLE, panels, notes)
