"""Figure 18 — inconsistency and message rate vs path length.

Sweeps the number of hops 1..20 on the multi-hop defaults, plotting the
overall inconsistency ratio (a) and the per-link signaling message rate
(b) for SS, SS+RT and HS.

Paper claims: both metrics increase monotonically with hop count; pure
SS's consistency degrades fastest; adding hop-by-hop reliable triggers
buys near-HS consistency for little extra overhead — a benefit that
grows with path length.
"""

from __future__ import annotations

from repro.core.parameters import reservation_defaults
from repro.experiments.common import multihop_metric_series
from repro.experiments.runner import ExperimentResult, Panel, register

EXPERIMENT_ID = "fig18"
TITLE = "Fig. 18: inconsistency (a) and message rate (b) vs number of hops"


@register(EXPERIMENT_ID)
def run(fast: bool = False) -> ExperimentResult:
    """Sweep the path length on the multi-hop reservation defaults."""
    base = reservation_defaults()
    hop_counts = (2, 5, 10, 20) if fast else tuple(range(1, 21))
    xs = tuple(float(n) for n in hop_counts)
    make = lambda n: base.replace(hops=int(n))  # noqa: E731
    inconsistency = multihop_metric_series(
        xs, make, lambda sol: sol.inconsistency_ratio
    )
    message_rate = multihop_metric_series(xs, make, lambda sol: sol.message_rate)
    panels = (
        Panel(
            name="a: inconsistency ratio",
            x_label="total number of hops",
            y_label="inconsistency ratio I",
            series=tuple(inconsistency),
        ),
        Panel(
            name="b: signaling message rate",
            x_label="total number of hops",
            y_label="per-link transmissions per second",
            series=tuple(message_rate),
        ),
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, panels)
