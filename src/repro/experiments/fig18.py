"""Figure 18 — inconsistency and message rate vs path length.

Sweeps the number of hops 1..20 on the multi-hop defaults, plotting the
overall inconsistency ratio (a) and the per-link signaling message rate
(b) for SS, SS+RT and HS.

Paper claims: both metrics increase monotonically with hop count; pure
SS's consistency degrades fastest; adding hop-by-hop reliable triggers
buys near-HS consistency for little extra overhead — a benefit that
grows with path length.
"""

from __future__ import annotations

from repro.core.protocols import Protocol
from repro.experiments.spec import (
    Axis,
    FidelityProfile,
    PanelSpec,
    ScenarioSpec,
    SeriesPlan,
    register_scenario,
)

EXPERIMENT_ID = "fig18"
TITLE = "Fig. 18: inconsistency (a) and message rate (b) vs number of hops"

SPEC = register_scenario(
    ScenarioSpec(
        scenario_id=EXPERIMENT_ID,
        title=TITLE,
        artifact="Fig. 18",
        family="multihop",
        preset="reservation",
        protocols=Protocol.multihop_family(),
        axes=(
            Axis("hops", "explicit", values=tuple(float(n) for n in range(1, 21))),
        ),
        panels=(
            PanelSpec(
                name="a: inconsistency ratio",
                x_label="total number of hops",
                y_label="inconsistency ratio I",
                plans=(
                    SeriesPlan(
                        "sweep",
                        axis="hops",
                        binder="hops",
                        metric="inconsistency_ratio",
                    ),
                ),
            ),
            PanelSpec(
                name="b: signaling message rate",
                x_label="total number of hops",
                y_label="per-link transmissions per second",
                plans=(
                    SeriesPlan(
                        "sweep", axis="hops", binder="hops", metric="message_rate"
                    ),
                ),
            ),
        ),
        fidelities=(
            FidelityProfile("full"),
            FidelityProfile("fast", axis_values={"hops": (2.0, 5.0, 10.0, 20.0)}),
            FidelityProfile("smoke", axis_values={"hops": (2.0, 10.0, 20.0)}),
        ),
    )
)
