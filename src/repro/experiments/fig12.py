"""Figure 12 — deterministic-timer simulation vs model, sweeping R.

Same validation as Fig. 11 but over the refresh timer (``T = 3R``).
The paper reports < 3% difference between deterministic-timer
simulation and the exponential-timer model across the sweep.
"""

from __future__ import annotations

from repro.core.parameters import kazaa_defaults
from repro.core.protocols import Protocol
from repro.experiments.runner import ExperimentResult, Panel, Series, register
from repro.experiments.simsupport import simulate_singlehop_batch
from repro.runtime import solve_singlehop_batch

EXPERIMENT_ID = "fig12"
TITLE = "Fig. 12: deterministic-timer simulation vs model, sweeping R (T = 3R)"


@register(EXPERIMENT_ID)
def run(fast: bool = False, seed: int = 12) -> ExperimentResult:
    """Model curves plus replicated simulations over the refresh timer."""
    base = kazaa_defaults()
    if fast:
        xs = (1.0, 5.0, 25.0)
        replications = 3
        sessions = 25
    else:
        xs = (0.3, 1.0, 3.0, 10.0, 30.0, 100.0)
        replications = 5
        sessions = 80

    protocols = tuple(Protocol)
    grid = [
        (protocol, base.with_coupled_timers(refresh))
        for protocol in protocols
        for refresh in xs
    ]
    solutions = solve_singlehop_batch(grid)
    points = simulate_singlehop_batch(
        (protocol, params, sessions, replications, seed) for protocol, params in grid
    )

    model_i: list[Series] = []
    model_m: list[Series] = []
    sim_i: list[Series] = []
    sim_m: list[Series] = []
    for k, protocol in enumerate(protocols):
        chunk = slice(k * len(xs), (k + 1) * len(xs))
        model, sim = solutions[chunk], points[chunk]
        model_i.append(Series(protocol.value, xs, tuple(s.inconsistency_ratio for s in model)))
        model_m.append(
            Series(protocol.value, xs, tuple(s.normalized_message_rate for s in model))
        )
        sim_i.append(
            Series(
                f"{protocol.value} sim",
                xs,
                tuple(p.inconsistency for p in sim),
                tuple(p.inconsistency_err for p in sim),
            )
        )
        sim_m.append(
            Series(
                f"{protocol.value} sim",
                xs,
                tuple(p.message_rate for p in sim),
                tuple(p.message_rate_err for p in sim),
            )
        )

    panels = (
        Panel(
            name="a: inconsistency ratio",
            x_label="refresh timer R (s)",
            y_label="inconsistency ratio I",
            series=tuple(model_i) + tuple(sim_i),
            log_x=True,
            log_y=True,
        ),
        Panel(
            name="b: signaling message rate",
            x_label="refresh timer R (s)",
            y_label="normalized message rate M",
            series=tuple(model_m) + tuple(sim_m),
            log_x=True,
            log_y=True,
        ),
    )
    notes = ("simulated series use deterministic R/T/K timers; ± is a 95% CI.",)
    return ExperimentResult(EXPERIMENT_ID, TITLE, panels, notes)
