"""Figure 12 — deterministic-timer simulation vs model, sweeping R.

Same validation as Fig. 11 but over the refresh timer (``T = 3R``).
The paper reports < 3% difference between deterministic-timer
simulation and the exponential-timer model across the sweep.
"""

from __future__ import annotations

from repro.core.parameters import kazaa_defaults
from repro.core.protocols import Protocol
from repro.core.singlehop import SingleHopModel
from repro.experiments.runner import ExperimentResult, Panel, Series, register
from repro.experiments.simsupport import simulate_singlehop_point

EXPERIMENT_ID = "fig12"
TITLE = "Fig. 12: deterministic-timer simulation vs model, sweeping R (T = 3R)"


@register(EXPERIMENT_ID)
def run(fast: bool = False, seed: int = 12) -> ExperimentResult:
    """Model curves plus replicated simulations over the refresh timer."""
    base = kazaa_defaults()
    if fast:
        xs = (1.0, 5.0, 25.0)
        replications = 3
        sessions = 25
    else:
        xs = (0.3, 1.0, 3.0, 10.0, 30.0, 100.0)
        replications = 5
        sessions = 80

    model_i: list[Series] = []
    model_m: list[Series] = []
    sim_i: list[Series] = []
    sim_m: list[Series] = []
    for protocol in Protocol:
        mi, mm = [], []
        si, si_err, sm, sm_err = [], [], [], []
        for refresh in xs:
            params = base.with_coupled_timers(refresh)
            solution = SingleHopModel(protocol, params).solve()
            mi.append(solution.inconsistency_ratio)
            mm.append(solution.normalized_message_rate)
            point = simulate_singlehop_point(
                protocol,
                params,
                sessions=sessions,
                replications=replications,
                seed=seed,
            )
            si.append(point.inconsistency)
            si_err.append(point.inconsistency_err)
            sm.append(point.message_rate)
            sm_err.append(point.message_rate_err)
        model_i.append(Series(protocol.value, xs, tuple(mi)))
        model_m.append(Series(protocol.value, xs, tuple(mm)))
        sim_i.append(Series(f"{protocol.value} sim", xs, tuple(si), tuple(si_err)))
        sim_m.append(Series(f"{protocol.value} sim", xs, tuple(sm), tuple(sm_err)))

    panels = (
        Panel(
            name="a: inconsistency ratio",
            x_label="refresh timer R (s)",
            y_label="inconsistency ratio I",
            series=tuple(model_i) + tuple(sim_i),
            log_x=True,
            log_y=True,
        ),
        Panel(
            name="b: signaling message rate",
            x_label="refresh timer R (s)",
            y_label="normalized message rate M",
            series=tuple(model_m) + tuple(sim_m),
            log_x=True,
            log_y=True,
        ),
    )
    notes = ("simulated series use deterministic R/T/K timers; ± is a 95% CI.",)
    return ExperimentResult(EXPERIMENT_ID, TITLE, panels, notes)
