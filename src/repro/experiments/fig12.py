"""Figure 12 — deterministic-timer simulation vs model, sweeping R.

Same validation as Fig. 11 but over the refresh timer (``T = 3R``).
The paper reports < 3% difference between deterministic-timer
simulation and the exponential-timer model across the sweep.
"""

from __future__ import annotations

from repro.core.protocols import Protocol
from repro.experiments.spec import (
    Axis,
    FidelityProfile,
    PanelSpec,
    ScenarioSpec,
    SeriesPlan,
    SimPlan,
    register_scenario,
)

EXPERIMENT_ID = "fig12"
TITLE = "Fig. 12: deterministic-timer simulation vs model, sweeping R (T = 3R)"

SPEC = register_scenario(
    ScenarioSpec(
        scenario_id=EXPERIMENT_ID,
        title=TITLE,
        artifact="Fig. 12",
        family="singlehop",
        preset="kazaa",
        protocols=tuple(Protocol),
        axes=(
            Axis(
                "refresh_interval",
                "explicit",
                values=(0.3, 1.0, 3.0, 10.0, 30.0, 100.0),
            ),
        ),
        panels=(
            PanelSpec(
                name="a: inconsistency ratio",
                x_label="refresh timer R (s)",
                y_label="inconsistency ratio I",
                plans=(
                    SeriesPlan(
                        "sweep",
                        axis="refresh_interval",
                        binder="coupled_timers",
                        metric="inconsistency_ratio",
                    ),
                    SeriesPlan(
                        "sim",
                        axis="refresh_interval",
                        binder="coupled_timers",
                        metric="inconsistency",
                        label_suffix=" sim",
                    ),
                ),
                log_x=True,
                log_y=True,
            ),
            PanelSpec(
                name="b: signaling message rate",
                x_label="refresh timer R (s)",
                y_label="normalized message rate M",
                plans=(
                    SeriesPlan(
                        "sweep",
                        axis="refresh_interval",
                        binder="coupled_timers",
                        metric="normalized_message_rate",
                    ),
                    SeriesPlan(
                        "sim",
                        axis="refresh_interval",
                        binder="coupled_timers",
                        metric="message_rate",
                        label_suffix=" sim",
                    ),
                ),
                log_x=True,
                log_y=True,
            ),
        ),
        fidelities=(
            FidelityProfile("full", replications=5, sessions=80),
            FidelityProfile(
                "fast",
                axis_values={"refresh_interval": (1.0, 5.0, 25.0)},
                replications=3,
                sessions=25,
            ),
            FidelityProfile(
                "smoke",
                axis_values={"refresh_interval": (5.0,)},
                replications=2,
                sessions=10,
            ),
        ),
        sim=SimPlan(seed=12, sessions_mode="fixed"),
        notes=("simulated series use deterministic R/T/K timers; ± is a 95% CI.",),
    )
)
