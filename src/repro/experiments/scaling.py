"""Hop-count scaling with heterogeneous loss — beyond the paper.

The paper's multi-hop analysis stops at N = 30 homogeneous hops
(Figs. 18-19).  Gossip/overlay signaling scenarios (see PAPERS.md,
Femminella et al.) ask how the protocols behave on much longer paths
whose links are *not* identical — e.g. a reservation crossing a few
congested peering links among many clean intra-domain hops.

This experiment sweeps the chain length up to 128 hops over a
deterministic heterogeneous path profile: every eighth link is a
congested peering link (8% loss, 50 ms) while the rest are clean
(1% loss, 20 ms).  A 128-hop chain has 257-258 states, which crosses
the runtime's sparse-solver threshold; the compiled-template layer
(structure-cached CSC + batched rate evaluation) is what makes the
whole sweep routine — the per-point dict-built path made this regime
impractically slow to sweep.

Panels: end-to-end inconsistency ratio and per-link message overhead
versus hop count, for the three multi-hop protocols.
"""

from __future__ import annotations

from repro.core.multihop.heterogeneous import HeterogeneousHop
from repro.core.parameters import MultiHopParameters, reservation_defaults
from repro.experiments.common import heterogeneous_metric_series
from repro.experiments.runner import ExperimentResult, Panel, register

EXPERIMENT_ID = "scaling"
TITLE = "Hop-count scaling: heterogeneous paths up to N = 128 (beyond the paper)"

#: Hop counts of the full sweep; the largest crosses the sparse-solver
#: threshold (2*128+1 = 257 states).
HOP_COUNTS = (2, 4, 8, 16, 24, 32, 48, 64, 96, 128)
FAST_HOP_COUNTS = (2, 4, 8, 16, 32, 128)

#: The congested-link period/offset and the two link profiles.
CONGESTED_EVERY = 8
CONGESTED_OFFSET = 1
CONGESTED_HOP = HeterogeneousHop(loss_rate=0.08, delay=0.05)
CLEAN_HOP = HeterogeneousHop(loss_rate=0.01, delay=0.02)


def heterogeneous_path(hops: int) -> tuple[HeterogeneousHop, ...]:
    """A deterministic ``hops``-link profile with periodic congestion.

    Link indices :data:`CONGESTED_OFFSET`, ``+CONGESTED_EVERY``, ... are
    congested; the rest are clean.  The offset is 1 so every swept path
    length (the shortest is 2 hops) contains at least one congested
    link — otherwise the short end of the sweep would silently
    degenerate to a homogeneous all-clean profile.
    """
    if hops < 1:
        raise ValueError(f"hops must be >= 1, got {hops}")
    return tuple(
        CONGESTED_HOP if i % CONGESTED_EVERY == CONGESTED_OFFSET else CLEAN_HOP
        for i in range(hops)
    )


def _point(hops: float) -> tuple[MultiHopParameters, tuple[HeterogeneousHop, ...]]:
    n = int(hops)
    return reservation_defaults().replace(hops=n), heterogeneous_path(n)


@register(EXPERIMENT_ID)
def run(fast: bool = False) -> ExperimentResult:
    """Inconsistency and message overhead vs hop count (heterogeneous)."""
    hop_counts = tuple(float(n) for n in (FAST_HOP_COUNTS if fast else HOP_COUNTS))
    inconsistency = heterogeneous_metric_series(
        hop_counts, _point, lambda solution: solution.inconsistency_ratio
    )
    overhead = heterogeneous_metric_series(
        hop_counts, _point, lambda solution: solution.message_rate
    )
    panels = (
        Panel(
            name="end-to-end inconsistency",
            x_label="hops N",
            y_label="inconsistency ratio I",
            series=tuple(inconsistency),
            log_y=True,
        ),
        Panel(
            name="per-link message overhead",
            x_label="hops N",
            y_label="transmissions/s per link",
            series=tuple(overhead),
        ),
    )
    notes = (
        f"every {CONGESTED_EVERY}th link congested "
        f"(p={CONGESTED_HOP.loss_rate}, {CONGESTED_HOP.delay * 1000:.0f} ms); "
        f"clean links p={CLEAN_HOP.loss_rate}, {CLEAN_HOP.delay * 1000:.0f} ms",
        "N = 128 solves a 257-258 state chain via the structure-cached "
        "sparse template path",
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, panels, notes)
