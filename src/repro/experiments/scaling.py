"""Hop-count scaling with heterogeneous loss — beyond the paper.

The paper's multi-hop analysis stops at N = 30 homogeneous hops
(Figs. 18-19).  Gossip/overlay signaling scenarios (see PAPERS.md,
Femminella et al.) ask how the protocols behave on much longer paths
whose links are *not* identical — e.g. a reservation crossing a few
congested peering links among many clean intra-domain hops.

This experiment sweeps the chain length up to 128 hops over a
deterministic heterogeneous path profile: every eighth link is a
congested peering link (8% loss, 50 ms) while the rest are clean
(1% loss, 20 ms).  A 128-hop chain has 257-258 states, which crosses
the runtime's sparse-solver threshold; the compiled-template layer
(structure-cached CSC + batched rate evaluation) is what makes the
whole sweep routine — the per-point dict-built path made this regime
impractically slow to sweep.

Panels: end-to-end inconsistency ratio and per-link message overhead
versus hop count, for the three multi-hop protocols.
"""

from __future__ import annotations

from repro.core.multihop.heterogeneous import HeterogeneousHop
from repro.core.protocols import Protocol
from repro.experiments.spec import (
    Axis,
    FidelityProfile,
    PanelSpec,
    ScenarioSpec,
    SeriesPlan,
    register_binder,
    register_scenario,
)

EXPERIMENT_ID = "scaling"
TITLE = "Hop-count scaling: heterogeneous paths up to N = 128 (beyond the paper)"

#: Hop counts of the full sweep; the largest crosses the sparse-solver
#: threshold (2*128+1 = 257 states).
HOP_COUNTS = (2, 4, 8, 16, 24, 32, 48, 64, 96, 128)
FAST_HOP_COUNTS = (2, 4, 8, 16, 32, 128)
SMOKE_HOP_COUNTS = (2, 8, 16)

#: The congested-link period/offset and the two link profiles.
CONGESTED_EVERY = 8
CONGESTED_OFFSET = 1
CONGESTED_HOP = HeterogeneousHop(loss_rate=0.08, delay=0.05)
CLEAN_HOP = HeterogeneousHop(loss_rate=0.01, delay=0.02)


def heterogeneous_path(hops: int) -> tuple[HeterogeneousHop, ...]:
    """A deterministic ``hops``-link profile with periodic congestion.

    Link indices :data:`CONGESTED_OFFSET`, ``+CONGESTED_EVERY``, ... are
    congested; the rest are clean.  The offset is 1 so every swept path
    length (the shortest is 2 hops) contains at least one congested
    link — otherwise the short end of the sweep would silently
    degenerate to a homogeneous all-clean profile.
    """
    if hops < 1:
        raise ValueError(f"hops must be >= 1, got {hops}")
    return tuple(
        CONGESTED_HOP if i % CONGESTED_EVERY == CONGESTED_OFFSET else CLEAN_HOP
        for i in range(hops)
    )


@register_binder("scaling_path")
def _bind_scaling_point(base, hops: float):
    """Map a swept hop count to ``(params, hop_profile)``."""
    n = int(hops)
    return base.replace(hops=n), heterogeneous_path(n)


SPEC = register_scenario(
    ScenarioSpec(
        scenario_id=EXPERIMENT_ID,
        title=TITLE,
        artifact="beyond the paper",
        family="heterogeneous",
        preset="reservation",
        protocols=Protocol.multihop_family(),
        axes=(
            Axis("hops", "explicit", values=tuple(float(n) for n in HOP_COUNTS)),
        ),
        panels=(
            PanelSpec(
                name="end-to-end inconsistency",
                x_label="hops N",
                y_label="inconsistency ratio I",
                plans=(
                    SeriesPlan(
                        "sweep",
                        axis="hops",
                        binder="scaling_path",
                        metric="inconsistency_ratio",
                    ),
                ),
                log_y=True,
            ),
            PanelSpec(
                name="per-link message overhead",
                x_label="hops N",
                y_label="transmissions/s per link",
                plans=(
                    SeriesPlan(
                        "sweep",
                        axis="hops",
                        binder="scaling_path",
                        metric="message_rate",
                    ),
                ),
            ),
        ),
        fidelities=(
            FidelityProfile("full"),
            FidelityProfile(
                "fast", axis_values={"hops": tuple(float(n) for n in FAST_HOP_COUNTS)}
            ),
            FidelityProfile(
                "smoke",
                axis_values={"hops": tuple(float(n) for n in SMOKE_HOP_COUNTS)},
            ),
        ),
        notes=(
            f"every {CONGESTED_EVERY}th link congested "
            f"(p={CONGESTED_HOP.loss_rate}, {CONGESTED_HOP.delay * 1000:.0f} ms); "
            f"clean links p={CLEAN_HOP.loss_rate}, {CLEAN_HOP.delay * 1000:.0f} ms",
            "N = 128 solves a 257-258 state chain via the structure-cached "
            "sparse template path",
        ),
    )
)
