"""ASCII renderings of the paper's model diagrams (Figs. 3, 15, 16).

The figures in the published PDF are raster images; these renderers
regenerate their *content* — states, transitions and symbolic rates —
directly from the model builders, so the diagrams in the documentation
can never drift from the implementation.
"""

from __future__ import annotations

from repro.core.multihop.transitions import build_multihop_rates
from repro.core.parameters import MultiHopParameters, SignalingParameters
from repro.core.protocols import Protocol
from repro.core.singlehop.transitions import build_transition_rates, state_space

__all__ = ["render_multihop_chain", "render_singlehop_chain"]


def _format_rate(rate: float) -> str:
    return f"{rate:.6g}"


def render_singlehop_chain(
    protocol: Protocol,
    params: SignalingParameters | None = None,
) -> str:
    """The Fig. 3 chain for one protocol, as a transition listing."""
    params = params or SignalingParameters()
    rates = build_transition_rates(protocol, params)
    states = state_space(protocol)
    width = max(len(str(s.value)) for s in states)
    lines = [
        f"Single-hop Markov chain, protocol {protocol.value} (paper Fig. 3)",
        f"states ({len(states)}): " + ", ".join(s.value for s in states),
        "transitions:",
    ]
    for (origin, destination), rate in sorted(
        rates.items(), key=lambda item: (item[0][0].value, item[0][1].value)
    ):
        lines.append(
            f"  {origin.value:>{width}s} --{_format_rate(rate):>10s}/s--> "
            f"{destination.value}"
        )
    lines.append("absorbing: (0,0); start: (1,0)_1")
    return "\n".join(lines)


def render_multihop_chain(
    protocol: Protocol,
    params: MultiHopParameters | None = None,
) -> str:
    """The Fig. 15/16 chain for one protocol, as a transition listing.

    For readability the (potentially large) chain is summarized: one
    line per *kind* of transition with the hop-indexed rate range.
    """
    params = params or MultiHopParameters(hops=5)
    rates = build_multihop_rates(protocol, params)
    lines = [
        f"Multi-hop Markov chain, protocol {protocol.value} "
        f"(paper Fig. {'16' if protocol is Protocol.HS else '15'}), N = {params.hops}",
        f"transitions ({len(rates)}):",
    ]
    for (origin, destination), rate in sorted(
        rates.items(), key=lambda item: (str(item[0][0]), str(item[0][1]))
    ):
        lines.append(f"  {str(origin):>7s} --{_format_rate(rate):>10s}/s--> {destination}")
    return "\n".join(lines)
