"""The generic scenario executor.

One function, :func:`run_scenario`, turns any registered
:class:`~repro.experiments.spec.ScenarioSpec` into an
:class:`~repro.experiments.runner.ExperimentResult`: it resolves the
named fidelity profile, applies parameter overrides to the base preset,
narrows the protocol set, evaluates every panel's series plans through
the :mod:`repro.runtime` batch path (compiled templates + memo cache +
optional process pool) and stamps a provenance block onto the result.

The canned specs produce byte-identical ``to_text()`` output to the
pre-spec experiment modules; variants (overrides, protocol subsets,
alternate fidelities) run through exactly the same code.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro._version import __version__
from repro.core.protocols import Protocol
from repro.experiments import spec as _spec
from repro.core.parameters import MultiHopParameters
from repro.experiments.common import (
    gilbert_metric_series,
    heterogeneous_metric_series,
    multihop_metric_series,
    parametric_singlehop_series,
    singlehop_metric_series,
    tree_metric_series,
)
from repro.experiments.runner import ExperimentResult, Panel, Provenance, Series
from repro.experiments.simsupport import (
    sessions_for_length,
    simulate_faulted_multihop_batch,
    simulate_gilbert_singlehop_batch,
    simulate_singlehop_batch,
    simulate_transient_curve_batch,
)
from repro.experiments.spec import (
    FULL,
    FidelityProfile,
    PanelSpec,
    ScenarioError,
    ScenarioSpec,
    SeriesPlan,
)
from repro.runtime import (
    solve_multihop_batch,
    solve_singlehop_batch,
    solve_transient_curve,
)

__all__ = ["run_scenario"]


def run_scenario(
    scenario: str | ScenarioSpec,
    fidelity: str = FULL,
    *,
    overrides: Mapping[str, float] | None = None,
    protocols: Sequence[Protocol | str] | str | None = None,
    jobs: int | None = None,
    seed: int | None = None,
) -> ExperimentResult:
    """Run one scenario (by id or spec) at a named fidelity.

    ``overrides`` replaces fields of the scenario's base parameter
    preset (validated against the preset's fields); ``protocols``
    narrows the protocol set (names or :class:`Protocol` members, and
    must be a subset of the scenario's own set).  ``jobs`` fans sweep
    points across worker processes; ``seed`` overrides the simulation
    seed of validation scenarios (those with a
    :class:`~repro.experiments.spec.SimPlan`).  Unknown scenario ids
    raise :class:`KeyError`; invalid fidelities, overrides or protocol
    selections raise :class:`~repro.experiments.spec.ScenarioError`.
    """
    spec = scenario if isinstance(scenario, ScenarioSpec) else _spec.scenario(scenario)
    profile = spec.fidelity(fidelity)
    overrides = dict(overrides or {})
    base = _spec.base_parameters(spec, overrides)
    selection = _resolve_selection(spec, protocols)
    sim_memo: dict[tuple, object] = {}

    panels = []
    for panel_spec in spec.panels:
        series: list[Series] = []
        for plan in panel_spec.plans:
            series.extend(
                _plan_series(spec, plan, profile, base, selection, sim_memo, jobs, seed)
            )
        panels.append(_build_panel(spec, panel_spec, series))
    panels = tuple(panels)

    notes = spec.notes
    if spec.notes_hook:
        notes = notes + tuple(_spec.notes_hook(spec.notes_hook)(panels))
    provenance = Provenance(
        scenario_id=spec.scenario_id,
        fidelity=profile.name,
        overrides=tuple(sorted(overrides.items())),
        protocols=tuple(p.value for p in (selection or spec.protocols)),
        package_version=__version__,
    )
    return ExperimentResult(spec.scenario_id, spec.title, panels, notes, provenance)


def _resolve_selection(
    spec: ScenarioSpec, protocols: Sequence[Protocol | str] | str | None
) -> tuple[Protocol, ...] | None:
    if protocols is None:
        return None
    selection = _spec.parse_protocols(protocols)
    unsupported = [p.value for p in selection if p not in spec.protocols]
    if unsupported:
        raise ScenarioError(
            f"{spec.scenario_id} does not model {', '.join(unsupported)}; "
            f"supported: {', '.join(p.value for p in spec.protocols)}"
        )
    return selection


def _plan_protocols(
    spec: ScenarioSpec,
    plan: SeriesPlan,
    selection: tuple[Protocol, ...] | None,
) -> tuple[Protocol, ...]:
    pool = plan.protocols or spec.protocols
    if selection is None:
        return pool
    return tuple(p for p in pool if p in selection)


def _build_panel(spec: ScenarioSpec, panel_spec: PanelSpec, series: list[Series]) -> Panel:
    if not series:
        raise ScenarioError(
            f"{spec.scenario_id}: panel {panel_spec.name!r} has no series "
            "(protocol selection excluded every plan)"
        )
    try:
        return Panel(
            name=panel_spec.name,
            x_label=panel_spec.x_label,
            y_label=panel_spec.y_label,
            series=tuple(series),
            log_x=panel_spec.log_x,
            log_y=panel_spec.log_y,
            shared_x=panel_spec.shared_x,
        )
    except ValueError as error:
        raise ScenarioError(f"{spec.scenario_id}: {error}") from None


def _plan_series(
    spec: ScenarioSpec,
    plan: SeriesPlan,
    profile: FidelityProfile,
    base,
    selection: tuple[Protocol, ...] | None,
    sim_memo: dict[tuple, object],
    jobs: int | None,
    seed: int | None,
) -> list[Series]:
    protocols = _plan_protocols(spec, plan, selection)
    if not protocols:
        return []
    if plan.kind == "sweep":
        return _sweep_series(spec, plan, profile, base, protocols, jobs)
    if plan.kind == "parametric":
        xs = spec.axis(plan.axis).resolve(profile)
        bind = _spec.binder(plan.binder)
        return parametric_singlehop_series(
            xs,
            lambda x: bind(base, x),
            x_metric=_spec.metric(plan.x_metric),
            y_metric=_spec.metric(plan.y_metric),
            protocols=protocols,
            jobs=jobs,
        )
    if plan.kind == "point":
        solutions = solve_singlehop_batch([(p, base) for p in protocols], jobs=jobs)
        x_metric = _spec.metric(plan.x_metric)
        y_metric = _spec.metric(plan.y_metric)
        return [
            Series(protocol.value, (x_metric(solution),), (y_metric(solution),))
            for protocol, solution in zip(protocols, solutions)
        ]
    if plan.kind == "hop_profile":
        solutions = solve_multihop_batch([(p, base) for p in protocols], jobs=jobs)
        xs = tuple(float(h) for h in range(1, base.hops + 1))
        return [
            Series(protocol.value, xs, tuple(solution.hop_profile()))
            for protocol, solution in zip(protocols, solutions)
        ]
    if plan.kind == "sim":
        return _sim_series(spec, plan, profile, base, protocols, sim_memo, jobs, seed)
    if plan.kind == "table":
        return _table_series(base, protocols)
    raise ScenarioError(f"unhandled series-plan kind {plan.kind!r}")


def _sweep_series(
    spec: ScenarioSpec,
    plan: SeriesPlan,
    profile: FidelityProfile,
    base,
    protocols: tuple[Protocol, ...],
    jobs: int | None,
) -> list[Series]:
    xs = spec.axis(plan.axis).resolve(profile)
    if spec.family == "transient":
        # No binder/metric: the axis is the time grid itself, solved in
        # one uniformization pass per protocol through the runtime cache.
        return [
            Series(
                f"{protocol.value}{plan.label_suffix}",
                xs,
                tuple(
                    solve_transient_curve(
                        (
                            protocol,
                            base,
                            None,
                            spec.transient.initial,
                            spec.transient.faults,
                            tuple(xs),
                        )
                    ).consistency
                ),
            )
            for protocol in protocols
        ]
    bind = _spec.binder(plan.binder)
    metric = _spec.metric(plan.metric)
    make = lambda x: bind(base, x)  # noqa: E731
    if spec.family == "singlehop":
        return singlehop_metric_series(xs, make, metric, protocols=protocols, jobs=jobs)
    if spec.family == "multihop":
        return multihop_metric_series(xs, make, metric, protocols=protocols, jobs=jobs)
    if spec.family == "tree":
        return tree_metric_series(
            xs,
            make,
            metric,
            protocols=protocols,
            jobs=jobs,
            label_suffix=plan.label_suffix,
        )
    if spec.family == "burst_loss":
        return gilbert_metric_series(
            xs,
            make,
            metric,
            protocols=protocols,
            jobs=jobs,
            label_suffix=plan.label_suffix,
        )
    if spec.family == "link_flap":
        raise ScenarioError(
            f"{spec.scenario_id}: link_flap scenarios have no analytic model; "
            "use 'sim' series plans"
        )
    return heterogeneous_metric_series(xs, make, metric, protocols=protocols, jobs=jobs)


def _sim_series(
    spec: ScenarioSpec,
    plan: SeriesPlan,
    profile: FidelityProfile,
    base,
    protocols: tuple[Protocol, ...],
    sim_memo: dict[tuple, object],
    jobs: int | None,
    seed: int | None,
) -> list[Series]:
    if profile.replications is None:
        raise ScenarioError(
            f"{spec.scenario_id}: fidelity {profile.name!r} sets no replications"
        )
    xs = spec.axis(plan.axis).resolve(profile)
    seed = spec.sim.seed if seed is None else seed
    if spec.family == "transient":
        return _transient_sim_series(
            spec, plan, profile, base, protocols, xs, sim_memo, jobs, seed
        )
    bind = _spec.binder(plan.binder)
    tasks = []
    simulate = simulate_singlehop_batch
    for protocol in protocols:
        for x in xs:
            bound = bind(base, x)
            if spec.family == "burst_loss":
                # Binder yields (params, gilbert); the parameter type
                # picks the harness, mirroring the model dispatch.
                params, gilbert = bound
                if isinstance(params, MultiHopParameters):
                    simulate = simulate_faulted_multihop_batch
                    horizon = _sim_horizon(spec, profile)
                    tasks.append(
                        (protocol, params, gilbert, None, horizon,
                         profile.replications, seed)
                    )
                else:
                    simulate = simulate_gilbert_singlehop_batch
                    sessions = _sim_sessions(spec, profile, x)
                    tasks.append(
                        (protocol, params, gilbert, sessions,
                         profile.replications, seed)
                    )
            elif spec.family == "link_flap":
                # Binder yields (params, fault schedule).
                params, faults = bound
                simulate = simulate_faulted_multihop_batch
                horizon = _sim_horizon(spec, profile)
                tasks.append(
                    (protocol, params, None, faults, horizon,
                     profile.replications, seed)
                )
            else:
                sessions = _sim_sessions(spec, profile, x)
                tasks.append((protocol, bound, sessions, profile.replications, seed))
    # Both panels of a validation figure draw on the same simulated
    # points; memoize per run so each point is simulated once.
    misses = [task for task in tasks if task not in sim_memo]
    if misses:
        for task, point in zip(misses, simulate(misses, jobs=jobs)):
            sim_memo[task] = point
    points = [sim_memo[task] for task in tasks]
    mean_attr, err_attr = _spec.SIM_METRICS[plan.metric]
    series = []
    for k, protocol in enumerate(protocols):
        chunk = points[k * len(xs) : (k + 1) * len(xs)]
        series.append(
            Series(
                f"{protocol.value}{plan.label_suffix}",
                xs,
                tuple(getattr(point, mean_attr) for point in chunk),
                tuple(getattr(point, err_attr) for point in chunk),
            )
        )
    return series


def _transient_sim_series(
    spec: ScenarioSpec,
    plan: SeriesPlan,
    profile: FidelityProfile,
    base,
    protocols: tuple[Protocol, ...],
    xs: tuple[float, ...],
    sim_memo: dict[tuple, object],
    jobs: int | None,
    seed: int,
) -> list[Series]:
    """Replicated consistency curves: one whole grid per task."""
    plan_ = spec.transient
    tasks = [
        (
            protocol,
            base,
            plan_.faults,
            plan_.warmup,
            tuple(xs),
            profile.replications,
            seed,
        )
        for protocol in protocols
    ]
    misses = [task for task in tasks if task not in sim_memo]
    if misses:
        for task, curve in zip(misses, simulate_transient_curve_batch(misses, jobs=jobs)):
            sim_memo[task] = curve
    return [
        Series(
            f"{protocol.value}{plan.label_suffix}",
            xs,
            sim_memo[task].means,
            sim_memo[task].half_widths,
        )
        for protocol, task in zip(protocols, tasks)
    ]


def _sim_sessions(spec: ScenarioSpec, profile: FidelityProfile, x: float) -> int:
    if spec.sim.sessions_mode == "budget":
        if profile.sim_budget is None:
            raise ScenarioError(
                f"{spec.scenario_id}: fidelity {profile.name!r} sets no sim_budget"
            )
        return sessions_for_length(x, profile.sim_budget)
    if profile.sessions is None:
        raise ScenarioError(
            f"{spec.scenario_id}: fidelity {profile.name!r} sets no sessions"
        )
    return profile.sessions


def _sim_horizon(spec: ScenarioSpec, profile: FidelityProfile) -> float:
    """Multi-hop sims run for ``sim_budget`` simulated seconds per point."""
    if profile.sim_budget is None:
        raise ScenarioError(
            f"{spec.scenario_id}: fidelity {profile.name!r} sets no sim_budget"
        )
    return profile.sim_budget


def _table_series(base, protocols: tuple[Protocol, ...]) -> list[Series]:
    # Late import: the table01 module registers the scenario spec and
    # therefore imports this package's spec module.
    from repro.experiments.table01 import ROW_LABELS, transition_table

    table = transition_table(base)
    xs = tuple(float(i) for i in range(len(ROW_LABELS)))
    return [
        Series(protocol.value, xs, tuple(table[protocol][label] for label in ROW_LABELS))
        for protocol in protocols
    ]
