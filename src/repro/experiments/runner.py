"""Experiment result structures, rendering and structured artifacts.

Every scenario (Table I, Figs. 4-12, 17-19, and any variant run through
the declarative API) produces an :class:`ExperimentResult`: plain data
(series of x/y points per panel) plus renderers — aligned text tables
(``to_text``), per-panel CSV documents (``to_csv``) and a versioned
JSON artifact (``to_json``/``from_json``) carrying a provenance block
(scenario id, fidelity, overrides, package version).

Scenario registration lives in :mod:`repro.experiments.spec`; this
module holds only the result data model and the sweep helpers.
"""

from __future__ import annotations

import dataclasses
import json
import math
from collections.abc import Sequence

__all__ = [
    "ExperimentResult",
    "Panel",
    "Provenance",
    "SCHEMA_VERSION",
    "Series",
    "geometric_sweep",
    "linear_sweep",
]

#: Version of the JSON artifact layout produced by
#: :meth:`ExperimentResult.to_json`.  Bump on incompatible changes;
#: :meth:`ExperimentResult.from_json` refuses other versions.
SCHEMA_VERSION = 1


@dataclasses.dataclass(frozen=True)
class Series:
    """One labeled curve: y(x), optionally with error half-widths."""

    label: str
    x: tuple[float, ...]
    y: tuple[float, ...]
    y_err: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.label!r}: {len(self.x)} x values vs {len(self.y)} y values"
            )
        if self.y_err is not None and len(self.y_err) != len(self.y):
            raise ValueError(f"series {self.label!r}: error bars length mismatch")

    @classmethod
    def from_points(
        cls,
        label: str,
        points: Sequence[tuple[float, float]],
        errors: Sequence[float] | None = None,
    ) -> "Series":
        """Build a series from ``(x, y)`` pairs."""
        xs = tuple(p[0] for p in points)
        ys = tuple(p[1] for p in points)
        return cls(label, xs, ys, tuple(errors) if errors is not None else None)

    def value_at(
        self, x: float, rel_tol: float = 1e-9, abs_tol: float = 1e-12
    ) -> float:
        """The y value at a swept x (exact match within tolerance).

        ``rel_tol`` and ``abs_tol`` are passed straight to
        :func:`math.isclose`.  The absolute tolerance is deliberately
        tight: a loose one (a single shared ``tolerance``, as this
        method once took) makes every lookup near x=0 match a swept
        0.0 spuriously.
        """
        for xi, yi in zip(self.x, self.y):
            if math.isclose(xi, x, rel_tol=rel_tol, abs_tol=abs_tol):
                return yi
        raise KeyError(f"x={x!r} not in series {self.label!r}")


@dataclasses.dataclass(frozen=True)
class Panel:
    """One plot panel: a y-quantity over a shared x-axis.

    ``shared_x=True`` (the default) asserts that every series samples
    the same x values, which row-oriented rendering relies on; the
    constructor validates it so misaligned series fail loudly instead
    of rendering silently shifted tables.  Parametric panels whose
    series legitimately trace their own x values (the Fig. 9/10
    tradeoff curves) set ``shared_x=False`` and render per series.
    """

    name: str
    x_label: str
    y_label: str
    series: tuple[Series, ...]
    log_x: bool = False
    log_y: bool = False
    shared_x: bool = True

    def __post_init__(self) -> None:
        if not self.series:
            raise ValueError(f"panel {self.name!r} has no series")
        if self.shared_x:
            reference = self.series[0].x
            for candidate in self.series[1:]:
                if candidate.x != reference:
                    raise ValueError(
                        f"panel {self.name!r}: series {candidate.label!r} x-axis "
                        f"differs from {self.series[0].label!r} "
                        f"({len(candidate.x)} vs {len(reference)} points); "
                        "use shared_x=False for parametric panels"
                    )

    def series_by_label(self, label: str) -> Series:
        """Find a series by its label."""
        for candidate in self.series:
            if candidate.label == label:
                return candidate
        raise KeyError(f"no series labeled {label!r} in panel {self.name!r}")

    def labels(self) -> tuple[str, ...]:
        """All series labels in panel order."""
        return tuple(s.label for s in self.series)


@dataclasses.dataclass(frozen=True)
class Provenance:
    """How a result was produced, recorded into the JSON artifact."""

    scenario_id: str
    fidelity: str
    overrides: tuple[tuple[str, float], ...] = ()
    protocols: tuple[str, ...] = ()
    package_version: str = ""


@dataclasses.dataclass(frozen=True)
class ExperimentResult:
    """The full output of one experiment (one paper artifact)."""

    experiment_id: str
    title: str
    panels: tuple[Panel, ...]
    notes: tuple[str, ...] = ()
    provenance: Provenance | None = None

    def panel(self, name: str) -> Panel:
        """Find a panel by name."""
        for candidate in self.panels:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no panel named {name!r} in {self.experiment_id}")

    def to_text(self, max_width: int = 118) -> str:
        """Render the experiment as aligned text tables (one per panel).

        Shared-axis panels render one row per x with a column per
        series (the x-alignment is guaranteed by ``Panel``'s
        validation); parametric panels render each series as its own
        ``(x, y)`` block since their x values differ per series.
        """
        lines = [f"== {self.experiment_id}: {self.title} =="]
        for panel in self.panels:
            lines.append("")
            lines.append(f"-- {panel.name} ({panel.y_label} vs {panel.x_label}) --")
            if panel.shared_x:
                lines.extend(_shared_panel_rows(panel, max_width))
            else:
                lines.extend(_parametric_panel_rows(panel, max_width))
        if self.notes:
            lines.append("")
            lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)

    def to_csv(self) -> dict[str, str]:
        """One CSV document per panel (for external plotting tools).

        Returns ``{panel_name: csv_text}``.  Shared-axis panels have
        one x column, then one column per series (plus ``<label>_err``
        columns for series with confidence intervals).  Parametric
        panels carry a ``<label>_x`` column per series instead; series
        shorter than the longest leave their cells empty.
        """
        documents: dict[str, str] = {}
        for panel in self.panels:
            documents[panel.name] = (
                _shared_panel_csv(panel) if panel.shared_x else _parametric_panel_csv(panel)
            )
        return documents

    def to_json(self, indent: int | None = 2) -> str:
        """The result as a versioned JSON artifact.

        The document carries ``schema_version`` (see
        :data:`SCHEMA_VERSION`), the full panel/series data and, when
        the result came from the scenario executor, a provenance block
        recording the scenario id, fidelity, parameter overrides,
        protocol set and package version.  Floats round-trip exactly
        (:meth:`from_json` restores an equal result).
        """
        document = {
            "schema_version": SCHEMA_VERSION,
            "experiment_id": self.experiment_id,
            "title": self.title,
            "provenance": None
            if self.provenance is None
            else {
                "scenario_id": self.provenance.scenario_id,
                "fidelity": self.provenance.fidelity,
                "overrides": dict(self.provenance.overrides),
                "protocols": list(self.provenance.protocols),
                "package_version": self.provenance.package_version,
            },
            "panels": [
                {
                    "name": panel.name,
                    "x_label": panel.x_label,
                    "y_label": panel.y_label,
                    "log_x": panel.log_x,
                    "log_y": panel.log_y,
                    "shared_x": panel.shared_x,
                    "series": [
                        {
                            "label": series.label,
                            "x": list(series.x),
                            "y": list(series.y),
                            "y_err": None
                            if series.y_err is None
                            else list(series.y_err),
                        }
                        for series in panel.series
                    ],
                }
                for panel in self.panels
            ],
            "notes": list(self.notes),
        }
        return json.dumps(document, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Rebuild a result from a :meth:`to_json` artifact.

        Raises :class:`ValueError` on a missing or unsupported
        ``schema_version``.
        """
        document = json.loads(text)
        version = document.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported artifact schema_version {version!r}; "
                f"this build reads version {SCHEMA_VERSION}"
            )
        raw = document.get("provenance")
        provenance = None
        if raw is not None:
            provenance = Provenance(
                scenario_id=raw["scenario_id"],
                fidelity=raw["fidelity"],
                overrides=tuple(sorted(raw.get("overrides", {}).items())),
                protocols=tuple(raw.get("protocols", ())),
                package_version=raw.get("package_version", ""),
            )
        panels = tuple(
            Panel(
                name=panel["name"],
                x_label=panel["x_label"],
                y_label=panel["y_label"],
                series=tuple(
                    Series(
                        series["label"],
                        tuple(series["x"]),
                        tuple(series["y"]),
                        None if series["y_err"] is None else tuple(series["y_err"]),
                    )
                    for series in panel["series"]
                ),
                log_x=panel["log_x"],
                log_y=panel["log_y"],
                shared_x=panel["shared_x"],
            )
            for panel in document["panels"]
        )
        return cls(
            experiment_id=document["experiment_id"],
            title=document["title"],
            panels=panels,
            notes=tuple(document.get("notes", ())),
            provenance=provenance,
        )


def _shared_panel_rows(panel: Panel, max_width: int) -> list[str]:
    header = f"{panel.x_label[:16]:>16s} " + " ".join(
        f"{label:>12s}" for label in panel.labels()
    )
    lines = [header[:max_width]]
    for i, x in enumerate(panel.series[0].x):
        cells = []
        for series in panel.series:
            value = series.y[i]
            cell = f"{value:12.5g}"
            if series.y_err is not None:
                cell = f"{value:8.4g}±{series.y_err[i]:.2g}"
                cell = f"{cell:>12s}"
            cells.append(cell)
        lines.append(f"{x:16.6g} " + " ".join(cells)[:max_width])
    return lines


def _parametric_panel_rows(panel: Panel, max_width: int) -> list[str]:
    lines: list[str] = []
    for series in panel.series:
        lines.append(f" [{series.label}]")
        header = f"{panel.x_label[:16]:>16s} {panel.y_label[:12]:>12s}"
        lines.append(header[:max_width])
        for i, x in enumerate(series.x):
            cell = f"{series.y[i]:12.5g}"
            if series.y_err is not None:
                cell = f"{series.y[i]:8.4g}±{series.y_err[i]:.2g}"
                cell = f"{cell:>12s}"
            lines.append(f"{x:16.6g} {cell}"[:max_width])
    return lines


def _shared_panel_csv(panel: Panel) -> str:
    header = [panel.x_label]
    for series in panel.series:
        header.append(series.label)
        if series.y_err is not None:
            header.append(f"{series.label}_err")
    rows = [",".join(_csv_quote(cell) for cell in header)]
    for i, x in enumerate(panel.series[0].x):
        row = [f"{x:.10g}"]
        for series in panel.series:
            row.append(f"{series.y[i]:.10g}")
            if series.y_err is not None:
                row.append(f"{series.y_err[i]:.10g}")
        rows.append(",".join(row))
    return "\n".join(rows) + "\n"


def _parametric_panel_csv(panel: Panel) -> str:
    header: list[str] = []
    for series in panel.series:
        header.extend((f"{series.label}_x", series.label))
        if series.y_err is not None:
            header.append(f"{series.label}_err")
    rows = [",".join(_csv_quote(cell) for cell in header)]
    length = max(len(series.x) for series in panel.series)
    for i in range(length):
        row: list[str] = []
        for series in panel.series:
            in_range = i < len(series.x)
            row.append(f"{series.x[i]:.10g}" if in_range else "")
            row.append(f"{series.y[i]:.10g}" if in_range else "")
            if series.y_err is not None:
                row.append(f"{series.y_err[i]:.10g}" if in_range else "")
        rows.append(",".join(row))
    return "\n".join(rows) + "\n"


def _csv_quote(cell: str) -> str:
    if any(ch in cell for ch in (",", '"', "\n", "\r")):
        escaped = cell.replace('"', '""')
        return f'"{escaped}"'
    return cell


def geometric_sweep(low: float, high: float, points: int) -> tuple[float, ...]:
    """``points`` log-spaced values from ``low`` to ``high`` inclusive."""
    if low <= 0 or high <= low:
        raise ValueError(f"need 0 < low < high, got low={low}, high={high}")
    if points < 2:
        raise ValueError(f"need at least 2 points, got {points}")
    ratio = (high / low) ** (1.0 / (points - 1))
    # low * ratio**(points-1) drifts off `high` in floating point, which
    # breaks exact-match lookups like Series.value_at(high); pin it.
    return tuple(low * ratio**i for i in range(points - 1)) + (high,)


def linear_sweep(low: float, high: float, points: int) -> tuple[float, ...]:
    """``points`` evenly spaced values from ``low`` to ``high`` inclusive."""
    if high <= low:
        raise ValueError(f"need low < high, got low={low}, high={high}")
    if points < 2:
        raise ValueError(f"need at least 2 points, got {points}")
    step = (high - low) / (points - 1)
    return tuple(low + step * i for i in range(points - 1)) + (high,)
