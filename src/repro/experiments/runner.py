"""Experiment framework: sweep results, text rendering, registry.

Every paper artifact (Table I, Figs. 4-12, 17-19) has a module exposing

``run(fast: bool = False) -> ExperimentResult``

``fast=True`` thins sweeps and simulation effort so the benchmark suite
can regenerate every figure quickly; ``fast=False`` reproduces the
paper's full axes.  Results are plain data (series of x/y points per
panel) plus a text renderer that prints the same rows the paper plots.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Callable, Sequence

__all__ = [
    "ExperimentResult",
    "Panel",
    "Series",
    "geometric_sweep",
    "linear_sweep",
    "register",
    "registry",
]


@dataclasses.dataclass(frozen=True)
class Series:
    """One labeled curve: y(x), optionally with error half-widths."""

    label: str
    x: tuple[float, ...]
    y: tuple[float, ...]
    y_err: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.label!r}: {len(self.x)} x values vs {len(self.y)} y values"
            )
        if self.y_err is not None and len(self.y_err) != len(self.y):
            raise ValueError(f"series {self.label!r}: error bars length mismatch")

    @classmethod
    def from_points(
        cls,
        label: str,
        points: Sequence[tuple[float, float]],
        errors: Sequence[float] | None = None,
    ) -> "Series":
        """Build a series from ``(x, y)`` pairs."""
        xs = tuple(p[0] for p in points)
        ys = tuple(p[1] for p in points)
        return cls(label, xs, ys, tuple(errors) if errors is not None else None)

    def value_at(self, x: float, tolerance: float = 1e-9) -> float:
        """The y value at a swept x (exact match within tolerance)."""
        for xi, yi in zip(self.x, self.y):
            if math.isclose(xi, x, rel_tol=tolerance, abs_tol=tolerance):
                return yi
        raise KeyError(f"x={x!r} not in series {self.label!r}")


@dataclasses.dataclass(frozen=True)
class Panel:
    """One plot panel: a y-quantity over a shared x-axis."""

    name: str
    x_label: str
    y_label: str
    series: tuple[Series, ...]
    log_x: bool = False
    log_y: bool = False

    def series_by_label(self, label: str) -> Series:
        """Find a series by its label."""
        for candidate in self.series:
            if candidate.label == label:
                return candidate
        raise KeyError(f"no series labeled {label!r} in panel {self.name!r}")

    def labels(self) -> tuple[str, ...]:
        """All series labels in panel order."""
        return tuple(s.label for s in self.series)


@dataclasses.dataclass(frozen=True)
class ExperimentResult:
    """The full output of one experiment (one paper artifact)."""

    experiment_id: str
    title: str
    panels: tuple[Panel, ...]
    notes: tuple[str, ...] = ()

    def panel(self, name: str) -> Panel:
        """Find a panel by name."""
        for candidate in self.panels:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no panel named {name!r} in {self.experiment_id}")

    def to_text(self, max_width: int = 118) -> str:
        """Render the experiment as aligned text tables (one per panel)."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        for panel in self.panels:
            lines.append("")
            lines.append(f"-- {panel.name} ({panel.y_label} vs {panel.x_label}) --")
            labels = panel.labels()
            header = f"{panel.x_label[:16]:>16s} " + " ".join(
                f"{label:>12s}" for label in labels
            )
            lines.append(header[:max_width])
            xs = panel.series[0].x
            for i, x in enumerate(xs):
                cells = []
                for series in panel.series:
                    value = series.y[i] if i < len(series.y) else float("nan")
                    cell = f"{value:12.5g}"
                    if series.y_err is not None and i < len(series.y_err):
                        cell = f"{value:8.4g}±{series.y_err[i]:.2g}"
                        cell = f"{cell:>12s}"
                    cells.append(cell)
                lines.append(f"{x:16.6g} " + " ".join(cells)[:max_width])
        if self.notes:
            lines.append("")
            lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)

    def to_csv(self) -> dict[str, str]:
        """One CSV document per panel (for external plotting tools).

        Returns ``{panel_name: csv_text}``.  Columns: the x axis, then
        one column per series (plus ``<label>_err`` columns for series
        with confidence intervals).
        """
        documents: dict[str, str] = {}
        for panel in self.panels:
            header = [panel.x_label]
            for series in panel.series:
                header.append(series.label)
                if series.y_err is not None:
                    header.append(f"{series.label}_err")
            rows = [",".join(_csv_quote(cell) for cell in header)]
            xs = panel.series[0].x
            for i, x in enumerate(xs):
                row = [f"{x:.10g}"]
                for series in panel.series:
                    value = series.y[i] if i < len(series.y) else float("nan")
                    row.append(f"{value:.10g}")
                    if series.y_err is not None:
                        err = series.y_err[i] if i < len(series.y_err) else float("nan")
                        row.append(f"{err:.10g}")
                rows.append(",".join(row))
            documents[panel.name] = "\n".join(rows) + "\n"
        return documents


def _csv_quote(cell: str) -> str:
    if "," in cell or '"' in cell:
        escaped = cell.replace('"', '""')
        return f'"{escaped}"'
    return cell


def geometric_sweep(low: float, high: float, points: int) -> tuple[float, ...]:
    """``points`` log-spaced values from ``low`` to ``high`` inclusive."""
    if low <= 0 or high <= low:
        raise ValueError(f"need 0 < low < high, got low={low}, high={high}")
    if points < 2:
        raise ValueError(f"need at least 2 points, got {points}")
    ratio = (high / low) ** (1.0 / (points - 1))
    return tuple(low * ratio**i for i in range(points))


def linear_sweep(low: float, high: float, points: int) -> tuple[float, ...]:
    """``points`` evenly spaced values from ``low`` to ``high`` inclusive."""
    if high <= low:
        raise ValueError(f"need low < high, got low={low}, high={high}")
    if points < 2:
        raise ValueError(f"need at least 2 points, got {points}")
    step = (high - low) / (points - 1)
    return tuple(low + step * i for i in range(points))


_REGISTRY: dict[str, Callable[..., ExperimentResult]] = {}


def register(experiment_id: str):
    """Class/function decorator adding a ``run`` callable to the registry."""

    def wrap(run: Callable[..., ExperimentResult]) -> Callable[..., ExperimentResult]:
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = run
        return run

    return wrap


def registry() -> dict[str, Callable[..., ExperimentResult]]:
    """All registered experiments (importing :mod:`repro.experiments`
    populates this)."""
    return dict(_REGISTRY)
