"""Figure 4 — impact of session length (single hop).

Plots the inconsistency ratio (panel a) and the normalized average
signaling message rate (panel b) for all five protocols as the mean
sender session length ``1/mu_r`` sweeps 10 s .. 10,000 s on the Kazaa
defaults.

Paper claims this figure supports (checked in EXPERIMENTS.md):

* both metrics decrease with session length for every protocol;
* SS+ER improves on SS most at short sessions, at negligible added
  message cost for long sessions;
* for long sessions the protocols group by trigger reliability; for
  short sessions they group by removal mechanism;
* SS+RTR tracks HS and sometimes beats it.
"""

from __future__ import annotations

from repro.core.protocols import Protocol
from repro.experiments.spec import (
    Axis,
    FidelityProfile,
    PanelSpec,
    ScenarioSpec,
    SeriesPlan,
    register_scenario,
)

EXPERIMENT_ID = "fig4"
TITLE = "Fig. 4: inconsistency and message rate vs session length 1/mu_r"

SPEC = register_scenario(
    ScenarioSpec(
        scenario_id=EXPERIMENT_ID,
        title=TITLE,
        artifact="Fig. 4",
        family="singlehop",
        preset="kazaa",
        protocols=tuple(Protocol),
        axes=(
            Axis("session_length", "geometric", low=10.0, high=10_000.0, points=16),
        ),
        panels=(
            PanelSpec(
                name="a: inconsistency ratio",
                x_label="1/mu_r (s)",
                y_label="inconsistency ratio I",
                plans=(
                    SeriesPlan(
                        "sweep",
                        axis="session_length",
                        binder="session_length",
                        metric="inconsistency_ratio",
                    ),
                ),
                log_x=True,
                log_y=True,
            ),
            PanelSpec(
                name="b: signaling message rate",
                x_label="1/mu_r (s)",
                y_label="normalized message rate M",
                plans=(
                    SeriesPlan(
                        "sweep",
                        axis="session_length",
                        binder="session_length",
                        metric="normalized_message_rate",
                    ),
                ),
                log_x=True,
            ),
        ),
        fidelities=(
            FidelityProfile("full"),
            FidelityProfile("fast", axis_points={"session_length": 7}),
            FidelityProfile("smoke", axis_points={"session_length": 3}),
        ),
    )
)
