"""Figure 4 — impact of session length (single hop).

Plots the inconsistency ratio (panel a) and the normalized average
signaling message rate (panel b) for all five protocols as the mean
sender session length ``1/mu_r`` sweeps 10 s .. 10,000 s on the Kazaa
defaults.

Paper claims this figure supports (checked in EXPERIMENTS.md):

* both metrics decrease with session length for every protocol;
* SS+ER improves on SS most at short sessions, at negligible added
  message cost for long sessions;
* for long sessions the protocols group by trigger reliability; for
  short sessions they group by removal mechanism;
* SS+RTR tracks HS and sometimes beats it.
"""

from __future__ import annotations

from repro.core.parameters import kazaa_defaults
from repro.experiments.common import singlehop_metric_series
from repro.experiments.runner import ExperimentResult, Panel, geometric_sweep, register

EXPERIMENT_ID = "fig4"
TITLE = "Fig. 4: inconsistency and message rate vs session length 1/mu_r"


@register(EXPERIMENT_ID)
def run(fast: bool = False) -> ExperimentResult:
    """Sweep the mean session length on the single-hop Kazaa defaults."""
    base = kazaa_defaults()
    xs = geometric_sweep(10.0, 10_000.0, 7 if fast else 16)
    make = lambda session: base.replace(removal_rate=1.0 / session)  # noqa: E731
    inconsistency = singlehop_metric_series(
        xs, make, lambda sol: sol.inconsistency_ratio
    )
    message_rate = singlehop_metric_series(
        xs, make, lambda sol: sol.normalized_message_rate
    )
    panels = (
        Panel(
            name="a: inconsistency ratio",
            x_label="1/mu_r (s)",
            y_label="inconsistency ratio I",
            series=tuple(inconsistency),
            log_x=True,
            log_y=True,
        ),
        Panel(
            name="b: signaling message rate",
            x_label="1/mu_r (s)",
            y_label="normalized message rate M",
            series=tuple(message_rate),
            log_x=True,
        ),
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, panels)
