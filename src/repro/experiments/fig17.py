"""Figure 17 — per-hop inconsistency along a 20-hop path.

Plots the fraction of time the ``i``-th hop is inconsistent for
``i = 1..20`` under SS, SS+RT and HS on the multi-hop defaults.

Paper claims: inconsistency grows ~linearly with distance from the
sender for all protocols; hop-by-hop reliable triggers bring SS+RT to
HS-comparable consistency, with HS slightly ahead (SS+RT still suffers
refresh-starvation timeouts at distant hops).
"""

from __future__ import annotations

from repro.core.parameters import reservation_defaults
from repro.core.protocols import Protocol
from repro.experiments.runner import ExperimentResult, Panel, Series, register
from repro.runtime import solve_multihop_batch

EXPERIMENT_ID = "fig17"
TITLE = "Fig. 17: fraction of time the i-th hop is inconsistent (N = 20)"


@register(EXPERIMENT_ID)
def run(fast: bool = False) -> ExperimentResult:
    """Per-hop inconsistency profile on the 20-hop reservation defaults."""
    params = reservation_defaults()
    hops = tuple(float(h) for h in range(1, params.hops + 1))
    protocols = Protocol.multihop_family()
    solutions = solve_multihop_batch([(protocol, params) for protocol in protocols])
    series = [
        Series(protocol.value, hops, tuple(solution.hop_profile()))
        for protocol, solution in zip(protocols, solutions)
    ]
    panel = Panel(
        name="per-hop inconsistency",
        x_label="hop index i",
        y_label="fraction of time hop i is inconsistent",
        series=tuple(series),
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, (panel,))
