"""Figure 17 — per-hop inconsistency along a 20-hop path.

Plots the fraction of time the ``i``-th hop is inconsistent for
``i = 1..20`` under SS, SS+RT and HS on the multi-hop defaults.

Paper claims: inconsistency grows ~linearly with distance from the
sender for all protocols; hop-by-hop reliable triggers bring SS+RT to
HS-comparable consistency, with HS slightly ahead (SS+RT still suffers
refresh-starvation timeouts at distant hops).
"""

from __future__ import annotations

from repro.core.protocols import Protocol
from repro.experiments.spec import (
    PanelSpec,
    ScenarioSpec,
    SeriesPlan,
    register_scenario,
)

EXPERIMENT_ID = "fig17"
TITLE = "Fig. 17: fraction of time the i-th hop is inconsistent (N = 20)"

SPEC = register_scenario(
    ScenarioSpec(
        scenario_id=EXPERIMENT_ID,
        title=TITLE,
        artifact="Fig. 17",
        family="multihop",
        preset="reservation",
        protocols=Protocol.multihop_family(),
        panels=(
            PanelSpec(
                name="per-hop inconsistency",
                x_label="hop index i",
                y_label="fraction of time hop i is inconsistent",
                plans=(SeriesPlan("hop_profile"),),
            ),
        ),
    )
)
