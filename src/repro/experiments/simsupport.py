"""Simulation support for the validation experiments (Figs. 11-12).

The paper validates the exponential-timer analytic model against
discrete-event simulations that use *deterministic* timers, reporting
means with 95% confidence intervals.  These helpers run the replicated
simulations and package (mean, half-width) per metric.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable

from repro.core.parameters import MultiHopParameters, SignalingParameters
from repro.core.protocols import Protocol
from repro.faults.gilbert import GilbertElliottParameters
from repro.faults.schedule import FaultSchedule
from repro.multihop.chain import MultiHopSimulation, simulate_multihop_replications
from repro.multihop.config import MultiHopSimConfig
from repro.protocols.config import SingleHopSimConfig
from repro.protocols.session import simulate_replications
from repro.runtime import parallel_map
from repro.sim.randomness import RandomStreams, TimerDiscipline
from repro.sim.stats import student_t_interval

__all__ = [
    "SimCurvePoint",
    "SimPoint",
    "sessions_for_length",
    "simulate_faulted_multihop_batch",
    "simulate_faulted_multihop_point",
    "simulate_gilbert_singlehop_batch",
    "simulate_singlehop_batch",
    "simulate_singlehop_point",
    "simulate_transient_curve_batch",
    "simulate_transient_curve_point",
]


@dataclasses.dataclass(frozen=True)
class SimPoint:
    """Replicated simulation estimates at one parameter point."""

    inconsistency: float
    inconsistency_err: float
    message_rate: float
    message_rate_err: float


def sessions_for_length(session_length: float, budget: float) -> int:
    """Pick a session count so total simulated time ~= ``budget`` seconds.

    Long sessions get fewer back-to-back cycles so sweeps over
    ``1/mu_r`` (Fig. 11) finish in bounded wall-clock time.
    """
    if session_length <= 0 or budget <= 0:
        raise ValueError("session_length and budget must be positive")
    return max(20, min(600, int(budget / session_length)))


def simulate_singlehop_point(
    protocol: Protocol,
    params: SignalingParameters,
    sessions: int,
    replications: int,
    seed: int,
    timer_discipline: TimerDiscipline = TimerDiscipline.DETERMINISTIC,
    gilbert: GilbertElliottParameters | None = None,
) -> SimPoint:
    """Run replicated single-hop simulations; return I and M with CIs."""
    config = SingleHopSimConfig(
        protocol=protocol,
        params=params,
        timer_discipline=timer_discipline,
        sessions=sessions,
        seed=seed,
        gilbert=gilbert,
    )
    results = simulate_replications(config, replications)
    inconsistency = results.interval("inconsistency_ratio")
    message_rate = results.interval("normalized_message_rate")
    return SimPoint(
        inconsistency=inconsistency.mean,
        inconsistency_err=inconsistency.half_width,
        message_rate=message_rate.mean,
        message_rate_err=message_rate.half_width,
    )


SimTask = tuple[Protocol, SignalingParameters, int, int, int]


def _simulate_task(task: SimTask) -> SimPoint:
    protocol, params, sessions, replications, seed = task
    return simulate_singlehop_point(
        protocol, params, sessions=sessions, replications=replications, seed=seed
    )


def simulate_singlehop_batch(
    tasks: Iterable[SimTask], jobs: int | None = None
) -> list[SimPoint]:
    """Run many ``(protocol, params, sessions, replications, seed)``
    simulation points, fanned across workers, in task order.

    Each point is seeded independently of batch order, so parallel runs
    reproduce the serial estimates exactly.
    """
    return parallel_map(_simulate_task, tasks, jobs=jobs)


GilbertSimTask = tuple[
    Protocol, SignalingParameters, GilbertElliottParameters, int, int, int
]


def _simulate_gilbert_task(task: GilbertSimTask) -> SimPoint:
    protocol, params, gilbert, sessions, replications, seed = task
    return simulate_singlehop_point(
        protocol,
        params,
        sessions=sessions,
        replications=replications,
        seed=seed,
        gilbert=gilbert,
    )


def simulate_gilbert_singlehop_batch(
    tasks: Iterable[GilbertSimTask], jobs: int | None = None
) -> list[SimPoint]:
    """Run many bursty-channel single-hop points, in task order.

    Tasks are ``(protocol, params, gilbert, sessions, replications,
    seed)``; the channel modulator is shared by both directions of each
    simulated session (see :class:`~repro.protocols.config.SingleHopSimConfig`).
    """
    return parallel_map(_simulate_gilbert_task, tasks, jobs=jobs)


def simulate_faulted_multihop_point(
    protocol: Protocol,
    params: MultiHopParameters,
    gilbert: GilbertElliottParameters | None,
    faults: FaultSchedule | None,
    horizon: float,
    replications: int,
    seed: int,
) -> SimPoint:
    """Run replicated multi-hop chain simulations under injected faults.

    Reports the any-hop inconsistency ratio and the per-link message
    rate with 95% CIs (reusing :class:`SimPoint`; in the stationary
    multi-hop regime the message rate is transmissions per second, not
    the single-hop normalized rate).  ``warmup`` scales with short
    horizons so smoke-fidelity runs keep a measurement window.
    """
    config = MultiHopSimConfig(
        protocol=protocol,
        params=params,
        horizon=horizon,
        warmup=min(500.0, 0.1 * horizon),
        seed=seed,
        gilbert=gilbert,
        faults=faults,
    )
    results = simulate_multihop_replications(config, replications)
    inconsistency = results.interval("inconsistency_ratio")
    message_rate = results.interval("message_rate")
    return SimPoint(
        inconsistency=inconsistency.mean,
        inconsistency_err=inconsistency.half_width,
        message_rate=message_rate.mean,
        message_rate_err=message_rate.half_width,
    )


MultiHopSimTask = tuple[
    Protocol,
    MultiHopParameters,
    "GilbertElliottParameters | None",
    "FaultSchedule | None",
    float,
    int,
    int,
]


def _simulate_faulted_multihop_task(task: MultiHopSimTask) -> SimPoint:
    protocol, params, gilbert, faults, horizon, replications, seed = task
    return simulate_faulted_multihop_point(
        protocol,
        params,
        gilbert=gilbert,
        faults=faults,
        horizon=horizon,
        replications=replications,
        seed=seed,
    )


def simulate_faulted_multihop_batch(
    tasks: Iterable[MultiHopSimTask], jobs: int | None = None
) -> list[SimPoint]:
    """Run many multi-hop fault-injection points, in task order.

    Tasks are ``(protocol, params, gilbert, faults, horizon,
    replications, seed)``; ``gilbert`` and ``faults`` may each be
    ``None`` (clean channel / no schedule).
    """
    return parallel_map(_simulate_faulted_multihop_task, tasks, jobs=jobs)


@dataclasses.dataclass(frozen=True)
class SimCurvePoint:
    """Replicated consistency-curve estimates over one time grid."""

    times: tuple[float, ...]
    means: tuple[float, ...]
    half_widths: tuple[float, ...]

    def __post_init__(self) -> None:
        if not len(self.times) == len(self.means) == len(self.half_widths):
            raise ValueError("times, means and half_widths must align")


def simulate_transient_curve_point(
    protocol: Protocol,
    params: MultiHopParameters,
    faults: FaultSchedule | None,
    warmup: float,
    times: tuple[float, ...],
    replications: int,
    seed: int,
) -> SimCurvePoint:
    """Estimate a consistency-over-time curve from replicated chain runs.

    Grid ``times`` and any fault times are stated relative to the start
    of measurement; the schedule is shifted by ``warmup`` so model time
    ``t`` is sampled at virtual time ``warmup + t`` (see
    :meth:`~repro.faults.schedule.FaultSchedule.shifted`).  Timers keep
    the harness's deterministic discipline — the same convention as the
    stationary validation scenarios, which the analytic model's timeout
    profile is calibrated against.  Each grid point gets its own
    Student-t interval across replications.
    """
    if replications < 2:
        raise ValueError(f"curve CIs need replications >= 2, got {replications}")
    if not times:
        raise ValueError("times must be a non-empty grid")
    horizon = warmup + max(times) + 1.0
    config = MultiHopSimConfig(
        protocol=protocol,
        params=params,
        horizon=horizon,
        warmup=warmup,
        seed=seed,
        faults=faults.shifted(warmup) if faults is not None else None,
        sample_times=tuple(warmup + t for t in times),
    )
    streams = RandomStreams(seed)
    samples: list[tuple[float, ...]] = []
    for index in range(replications):
        replication = config.replace(seed=streams.spawn(index).seed)
        outcome = MultiHopSimulation(replication).run()
        if len(outcome.consistency_samples) != len(times):
            raise RuntimeError(
                f"expected {len(times)} samples, got "
                f"{len(outcome.consistency_samples)} (horizon too short?)"
            )
        samples.append(outcome.consistency_samples)
    intervals = [student_t_interval(column) for column in zip(*samples)]
    return SimCurvePoint(
        times=tuple(times),
        means=tuple(interval.mean for interval in intervals),
        half_widths=tuple(interval.half_width for interval in intervals),
    )


TransientCurveTask = tuple[
    Protocol,
    MultiHopParameters,
    "FaultSchedule | None",
    float,
    tuple,
    int,
    int,
]


def _simulate_transient_curve_task(task: TransientCurveTask) -> SimCurvePoint:
    protocol, params, faults, warmup, times, replications, seed = task
    return simulate_transient_curve_point(
        protocol,
        params,
        faults=faults,
        warmup=warmup,
        times=times,
        replications=replications,
        seed=seed,
    )


def simulate_transient_curve_batch(
    tasks: Iterable[TransientCurveTask], jobs: int | None = None
) -> list[SimCurvePoint]:
    """Run many transient-curve estimates, fanned across workers.

    Tasks are ``(protocol, params, faults, warmup, times, replications,
    seed)``; each whole curve (all its replications) is one work unit,
    since replications share the per-task seed spawning sequence.
    """
    return parallel_map(_simulate_transient_curve_task, tasks, jobs=jobs)
