"""Signaling message vocabulary shared by all protocol implementations."""

from __future__ import annotations

import dataclasses
import enum

__all__ = ["Message", "MessageKind"]


class MessageKind(str, enum.Enum):
    """The kinds of signaling messages the five protocols exchange."""

    TRIGGER = "trigger"
    """Carries a state setup or update (paper's 'trigger message')."""

    REFRESH = "refresh"
    """Periodic best-effort copy of the sender's current state."""

    REMOVAL = "removal"
    """Explicit request to delete the receiver's state."""

    ACK = "ack"
    """Receiver acknowledgment of a reliably-transmitted trigger."""

    REMOVAL_ACK = "removal_ack"
    """Receiver acknowledgment of a reliably-transmitted removal."""

    NOTIFY = "notify"
    """Receiver-to-sender notice that installed state was removed
    (by state-timeout or by the HS external failure signal)."""


@dataclasses.dataclass(frozen=True)
class Message:
    """One signaling message.

    ``version`` is the sender's monotonically increasing state version;
    receivers ignore messages older than what they already know, which
    keeps cross-session races (possible in a real network, serialized
    away in the analytic model) from corrupting state.
    """

    kind: MessageKind
    version: int
    value: int | None = None
    retransmission: bool = False

    def __post_init__(self) -> None:
        if self.version < 0:
            raise ValueError(f"version must be non-negative, got {self.version}")
        carries_state = self.kind in (MessageKind.TRIGGER, MessageKind.REFRESH)
        if carries_state and self.value is None:
            raise ValueError(f"{self.kind.value} message must carry a state value")

    @property
    def carries_state(self) -> bool:
        """Whether this message installs/refreshes state at the receiver."""
        return self.kind in (MessageKind.TRIGGER, MessageKind.REFRESH)
