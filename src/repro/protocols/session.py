"""Single-hop simulation harness: wiring, workload, measurement.

:class:`SingleHopSimulation` builds a sender, a receiver, two lossy
channels and (for HS) an external false-signal source; drives
back-to-back session lifecycles (install -> Poisson updates -> removal
-> wait until the receiver is empty); and measures exactly the paper's
metrics:

* inconsistency ratio — fraction of time the sender's and receiver's
  state values differ (time-weighted, over the whole run);
* normalized message rate — messages per session divided by the mean
  sender session length, ``M = (messages/sessions) * mu_r``.

Sessions are simulated back-to-back (a new session starts the moment
both sides are empty), which realizes the paper's renewal construction
of merging the absorbing state into the start state.
"""

from __future__ import annotations

import dataclasses

from repro.core.protocols import Protocol
from repro.protocols.config import SingleHopSimConfig
from repro.protocols.messages import Message
from repro.protocols.receiver import SignalingReceiver
from repro.protocols.sender import SignalingSender
from repro.sim.channel import Channel, ChannelConfig, DeliveredMessage, GilbertElliottProcess
from repro.sim.engine import Environment
from repro.sim.monitor import StateFractionMonitor, TimeSeriesMonitor
from repro.sim.randomness import RandomStreams, Timer
from repro.sim.stats import ReplicationSet

__all__ = [
    "SIM_ENGINES",
    "SingleHopSimResult",
    "SingleHopSimulation",
    "simulate_replications",
]


@dataclasses.dataclass(frozen=True)
class SingleHopSimResult:
    """Measured outcome of one single-hop simulation run."""

    protocol: Protocol
    sessions: int
    sim_time: float
    inconsistent_time: float
    message_counts: dict[str, int]
    timeout_removals: int
    false_signal_removals: int
    #: Consistency indicator sampled at ``config.sample_times`` (1.0
    #: when sender and receiver agreed at that instant).
    consistency_samples: tuple[float, ...] = ()

    @property
    def inconsistency_ratio(self) -> float:
        """Fraction of time sender and receiver state values differed."""
        if self.sim_time <= 0:
            return 0.0
        return self.inconsistent_time / self.sim_time

    @property
    def total_messages(self) -> int:
        """All signaling messages transmitted (both directions)."""
        return sum(self.message_counts.values())

    @property
    def messages_per_session(self) -> float:
        """``Lambda`` — mean signaling messages per session lifecycle."""
        return self.total_messages / self.sessions

    @property
    def mean_cycle_length(self) -> float:
        """Mean install-to-fully-removed duration (receiver lifetime ``L``)."""
        return self.sim_time / self.sessions

    def normalized_message_rate(self, removal_rate: float) -> float:
        """``M = Lambda * mu_r`` (messages per mean sender session)."""
        if removal_rate <= 0:
            raise ValueError(f"removal_rate must be positive, got {removal_rate}")
        return self.messages_per_session * removal_rate


class SingleHopSimulation:
    """One replication of the single-hop protocol simulation.

    ``env`` lets several simulations share one clock (see
    :mod:`repro.protocols.multisession`); by default each simulation
    owns a fresh environment.
    """

    def __init__(self, config: SingleHopSimConfig, env: Environment | None = None) -> None:
        self.config = config
        self.env = env if env is not None else Environment()
        streams = RandomStreams(config.seed)
        params = config.params
        protocol = config.protocol

        self._workload_rng = streams.stream("workload")
        self._signal_rng = streams.stream("external-signal")
        self.message_counts: dict[str, int] = {}

        channel_config = ChannelConfig(
            loss_rate=params.loss_rate,
            mean_delay=params.delay,
            delay_discipline=config.delay_discipline,
        )
        # One shared bursty-loss process for both directions (the
        # product-chain models assume a single path-wide channel state);
        # it draws from its own named stream so enabling it never shifts
        # the per-channel loss streams.
        loss_process = None
        if config.gilbert is not None:
            loss_process = GilbertElliottProcess(
                config.gilbert.loss_good,
                config.gilbert.loss_bad,
                config.gilbert.good_to_bad,
                config.gilbert.bad_to_good,
                streams.stream("gilbert-channel"),
            )
        self._forward = Channel(
            self.env,
            channel_config,
            streams.stream("forward-channel"),
            self._deliver_to_receiver,
            name="sender->receiver",
            loss_process=loss_process,
        )
        self._reverse = Channel(
            self.env,
            channel_config,
            streams.stream("reverse-channel"),
            self._deliver_to_sender,
            name="receiver->sender",
            loss_process=loss_process,
        )

        def timer(mean: float, key: str) -> Timer:
            return Timer(mean, config.timer_discipline, streams.stream(key))

        self.sender = SignalingSender(
            self.env,
            protocol,
            params,
            refresh_timer=timer(params.refresh_interval, "refresh-timer"),
            retransmission_timer=timer(params.retransmission_interval, "retx-timer"),
            transmit=lambda msg: self._transmit(self._forward, msg),
            on_value_change=self._update_consistency,
        )
        self.receiver = SignalingReceiver(
            self.env,
            protocol,
            timeout_timer=timer(params.timeout_interval, "timeout-timer"),
            transmit=lambda msg: self._transmit(self._reverse, msg),
            on_value_change=self._update_consistency,
        )
        self._consistency = StateFractionMonitor(self.env, initial=False)
        # Sender and receiver both start empty: values match.
        self._consistency.set(True)
        self._series_monitor = TimeSeriesMonitor(
            self.env,
            config.sample_times,
            lambda: 1.0 if self._consistency.active else 0.0,
        )

        if protocol is Protocol.HS and params.external_false_signal_rate > 0:
            self.env.process(self._false_signal_source(), name="external-signal")

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def _transmit(self, channel: Channel, message: Message) -> None:
        key = message.kind.value
        if message.retransmission:
            key += "_retx"
        self.message_counts[key] = self.message_counts.get(key, 0) + 1
        channel.send(message)

    def _deliver_to_receiver(self, delivered: DeliveredMessage) -> None:
        self.receiver.on_message(delivered.payload)

    def _deliver_to_sender(self, delivered: DeliveredMessage) -> None:
        self.sender.on_message(delivered.payload)

    def _update_consistency(self) -> None:
        self._consistency.set(self.sender.value == self.receiver.value)

    def _false_signal_source(self):
        rate = self.config.params.external_false_signal_rate
        while True:
            yield self.env.timeout(float(self._signal_rng.exponential(1.0 / rate)))
            self.receiver.false_remove()

    # ------------------------------------------------------------------
    # Workload
    # ------------------------------------------------------------------

    def _session_workload(self):
        params = self.config.params
        for _ in range(self.config.sessions):
            self.sender.install()
            remaining = float(self._workload_rng.exponential(params.removal_rate**-1))
            while True:
                if params.update_rate <= 0:
                    yield self.env.timeout(remaining)
                    break
                gap = float(self._workload_rng.exponential(1.0 / params.update_rate))
                if gap >= remaining:
                    yield self.env.timeout(remaining)
                    break
                yield self.env.timeout(gap)
                remaining -= gap
                self.sender.update()
            self.sender.remove()
            yield self.receiver.wait_empty()

    def run(self) -> SingleHopSimResult:
        """Execute the configured number of sessions and collect metrics."""
        driver = self.env.process(self._session_workload(), name="session-driver")
        self.env.run(until=driver)
        sim_time = self.env.now
        return SingleHopSimResult(
            protocol=self.config.protocol,
            sessions=self.config.sessions,
            sim_time=sim_time,
            inconsistent_time=sim_time - self._consistency.active_time(),
            message_counts=dict(self.message_counts),
            timeout_removals=self.receiver.timeout_removals,
            false_signal_removals=self.receiver.false_signal_removals,
            consistency_samples=self._series_monitor.samples(),
        )


#: Engine choices for :func:`simulate_replications`.  ``auto`` takes the
#: vectorized path whenever the config supports it (and the
#: ``REPRO_VECTOR_SIM`` escape hatch has not disabled it); ``scalar``
#: forces the event engine; ``vectorized`` demands the fast path and
#: raises on configs it cannot replay.
SIM_ENGINES = ("auto", "scalar", "vectorized")


def simulate_replications(
    config: SingleHopSimConfig,
    replications: int = 10,
    engine: str = "auto",
) -> ReplicationSet:
    """Run independent replications; returns I and M samples.

    Metrics recorded per replication: ``inconsistency_ratio`` and
    ``normalized_message_rate``.  Both engines produce bit-identical
    samples: the vectorized path replays the same per-replication
    random streams in the same draw order (and falls back to the event
    engine lane by lane where it cannot).  ``REPRO_VECTOR_SIM=0``
    routes everything through the scalar engine, including explicit
    ``engine="vectorized"`` requests (the request is still validated).
    """
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications}")
    if engine not in SIM_ENGINES:
        raise ValueError(
            f"unknown sim engine {engine!r}; expected one of {SIM_ENGINES}"
        )
    if engine != "scalar":
        from repro.protocols.vectorized import (
            simulate_replications_vectorized,
            supports_vectorized_config,
            vectorized_sim_enabled,
        )

        supported = supports_vectorized_config(config)
        if engine == "vectorized" and not supported:
            raise ValueError(
                "engine='vectorized' requires SS or SS+ER with deterministic "
                "timers and delay, no Gilbert-Elliott channel, no sample "
                f"grid, and timeout > delay; got protocol={config.protocol.value}"
            )
        if supported and vectorized_sim_enabled():
            results = ReplicationSet()
            for outcome in simulate_replications_vectorized(config, replications):
                results.add("inconsistency_ratio", outcome.inconsistency_ratio)
                results.add(
                    "normalized_message_rate",
                    outcome.normalized_message_rate(config.params.removal_rate),
                )
            return results
    streams = RandomStreams(config.seed)
    results = ReplicationSet()
    for index in range(replications):
        replication_config = config.replace(seed=streams.spawn(index).seed)
        outcome = SingleHopSimulation(replication_config).run()
        results.add("inconsistency_ratio", outcome.inconsistency_ratio)
        results.add(
            "normalized_message_rate",
            outcome.normalized_message_rate(config.params.removal_rate),
        )
    return results
