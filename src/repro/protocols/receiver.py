"""The signaling receiver: state holding, timeout, ACKs, notifications.

The receiver installs whatever state the newest state-carrying message
reports, expires it when refreshes stop arriving (soft-state
protocols), acknowledges reliably-transmitted messages, and — for
protocols with a removal-notification mechanism — tells the sender when
it drops state, enabling recovery from false removals.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.protocols import Protocol
from repro.protocols.messages import Message, MessageKind
from repro.sim.engine import Environment, Event, Interrupt, Process
from repro.sim.randomness import Timer

__all__ = ["SignalingReceiver"]


class SignalingReceiver:
    """Receiver-side state machine for all five protocols."""

    def __init__(
        self,
        env: Environment,
        protocol: Protocol,
        timeout_timer: Timer,
        transmit: Callable[[Message], None],
        on_value_change: Callable[[], None] | None = None,
    ) -> None:
        self.env = env
        self.protocol = protocol
        self.value: int | None = None
        self.version = 0
        self.timeout_removals = 0
        self.false_signal_removals = 0
        self._timeout_timer = timeout_timer
        self._transmit = transmit
        self._on_value_change = on_value_change or (lambda: None)
        self._timeout_proc: Process | None = None
        self._empty_waiters: list[Event] = []

    # ------------------------------------------------------------------
    # Message handling (forward channel)
    # ------------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        """Handle a TRIGGER / REFRESH / REMOVAL from the sender."""
        if message.carries_state:
            if message.version >= self.version:
                self._install(message.version, message.value)
                if self.protocol.reliable_triggers and message.kind is MessageKind.TRIGGER:
                    self._transmit(Message(MessageKind.ACK, message.version))
        elif message.kind is MessageKind.REMOVAL:
            if message.version >= self.version:
                self.version = max(self.version, message.version)
                if self.value is not None:
                    self._remove()
                if self.protocol.reliable_removal:
                    self._transmit(Message(MessageKind.REMOVAL_ACK, message.version))
        else:
            raise ValueError(f"receiver cannot handle {message.kind!r}")

    def false_remove(self) -> None:
        """External failure signal fired spuriously (HS): drop state.

        The receiver notifies the sender so a still-alive sender can
        re-install (paper §II, "false notification ... repaired by
        having the signaling receiver notify the signaling sender").
        """
        if self.value is None:
            return
        self.false_signal_removals += 1
        self._remove()
        if self.protocol.removal_notification:
            self._transmit(Message(MessageKind.NOTIFY, self.version))

    def wait_empty(self) -> Event:
        """An event that fires when (or if already) no state is held."""
        event = self.env.event()
        if self.value is None:
            event.succeed()
        else:
            self._empty_waiters.append(event)
        return event

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _install(self, version: int, value: int | None) -> None:
        self.version = version
        self.value = value
        self._on_value_change()
        if self.protocol.uses_state_timeout:
            self._restart_timeout()

    def _remove(self) -> None:
        self.value = None
        self._on_value_change()
        self._cancel_timeout()
        waiters, self._empty_waiters = self._empty_waiters, []
        for event in waiters:
            event.succeed()

    def _restart_timeout(self) -> None:
        self._cancel_timeout()
        self._timeout_proc = self.env.process(self._timeout_loop(), name="state-timeout")

    def _cancel_timeout(self) -> None:
        if self._timeout_proc is not None and self._timeout_proc.is_alive:
            self._timeout_proc.interrupt("cancelled")
        self._timeout_proc = None

    def _timeout_loop(self):
        try:
            yield self.env.timeout(self._timeout_timer.draw())
        except Interrupt:
            return
        if self.value is None:
            return
        self.timeout_removals += 1
        self._remove()
        if self.protocol.removal_notification:
            self._transmit(Message(MessageKind.NOTIFY, self.version))
