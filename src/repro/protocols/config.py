"""Configuration for the single-hop protocol simulations."""

from __future__ import annotations

import dataclasses

from repro.core.parameters import SignalingParameters
from repro.core.protocols import Protocol
from repro.faults.gilbert import GilbertElliottParameters
from repro.sim.randomness import TimerDiscipline

__all__ = ["SingleHopSimConfig"]


@dataclasses.dataclass(frozen=True)
class SingleHopSimConfig:
    """Everything one replication of the single-hop simulation needs.

    The paper's validation runs (Figs. 11-12) use *deterministic*
    protocol timers (R, T, K) against the model's exponential-timer
    assumption; ``timer_discipline`` switches between the two.  The
    workload (session length, update arrivals) is exponential/Poisson
    in both cases — it is part of the model, not a protocol timer.

    ``gilbert`` (optional) replaces the i.i.d. Bernoulli channel loss
    with a bursty Gilbert-Elliott modulator shared by both directions
    (the product-chain models assume one path-wide channel state); the
    constant ``params.loss_rate`` is ignored while it is set.

    ``sample_times`` (absolute virtual times, sorted) records the
    sender==receiver consistency indicator at each grid time via
    :class:`~repro.sim.monitor.TimeSeriesMonitor`; grid times past the
    last session's end simply go unrecorded (the run stops with the
    session driver).
    """

    protocol: Protocol
    params: SignalingParameters
    timer_discipline: TimerDiscipline = TimerDiscipline.DETERMINISTIC
    delay_discipline: TimerDiscipline = TimerDiscipline.DETERMINISTIC
    sessions: int = 500
    seed: int = 20030825
    gilbert: GilbertElliottParameters | None = None
    sample_times: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.sample_times:
            times = self.sample_times
            if any(b < a for a, b in zip(times, times[1:])):
                raise ValueError("sample_times must be sorted non-decreasing")
            if times[0] < 0:
                raise ValueError(f"sample_times must be non-negative, got {times[0]}")
        if self.sessions < 1:
            raise ValueError(f"sessions must be >= 1, got {self.sessions}")
        if self.params.removal_rate <= 0:
            raise ValueError("simulation requires removal_rate > 0 (finite sessions)")

    def replace(self, **changes: object) -> "SingleHopSimConfig":
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **changes)
