"""Engine-free vectorized replications of the single-hop simulation.

For SS and SS+ER under deterministic timers and deterministic delay the
whole event timeline of a session is a closed-form function of the
workload draws and the per-message loss draws: triggers and refreshes
sit on fold-left periodic grids, every forward message consumes exactly
one loss uniform in send order, receipts land one constant delay after
their sends, and the receiver's state trajectory follows from the
delivered-receipt sequence alone (no reverse traffic, no
retransmissions, no external signal).  This module replays that
timeline with numpy arrays instead of engine events and produces
**bit-identical** :class:`~repro.protocols.session.SingleHopSimResult`
objects: same random streams per replication, same draw order, same
floating-point op sequence for every time, integral and metric.

Sessions whose tail crosses into the next session (a delivered message
still in flight when the session driver hands over — possible only
after a loss hole longer than the state timeout) cannot be replayed
from per-session arrays; lanes that hit one are re-run through the
scalar engine, which is bit-identical by definition.  The conditions a
config must meet are checked by :func:`supports_vectorized_config`;
``REPRO_VECTOR_SIM=0`` turns the fast path off globally.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.protocols import Protocol
from repro.protocols.config import SingleHopSimConfig
from repro.protocols.session import SingleHopSimResult, SingleHopSimulation
from repro.sim.randomness import RandomStreams, TimerDiscipline
from repro.sim.vectorized import (
    UniformPool,
    delivery_times,
    fold_active_time,
    fold_cumsum,
    refresh_grid,
)

__all__ = [
    "simulate_replications_vectorized",
    "supports_vectorized_config",
    "vectorized_sim_enabled",
]

_VECTOR_ENV = "REPRO_VECTOR_SIM"

#: Protocols with a one-directional message flow: no ACKs, no
#: retransmissions, no removal notifications, no external signal.
_VECTOR_PROTOCOLS = (Protocol.SS, Protocol.SS_ER)


def vectorized_sim_enabled() -> bool:
    """Whether the vectorized simulation path may be used at all.

    On by default; ``REPRO_VECTOR_SIM=0`` (or ``off``/``false``/``no``)
    routes every simulation through the scalar engine.
    """
    return os.environ.get(_VECTOR_ENV, "").strip().lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


def supports_vectorized_config(config: SingleHopSimConfig) -> bool:
    """Whether ``config`` is replayable without the event engine.

    Requires SS or SS+ER (one-directional traffic), deterministic
    protocol timers and channel delay (so timers consume no randomness
    and receipts are send-order), an i.i.d. loss channel (no
    Gilbert-Elliott modulator), no consistency-sample grid, and a state
    timeout longer than the delay (receipts of one session cannot
    outlive its timeout-driven removal).
    """
    return (
        config.protocol in _VECTOR_PROTOCOLS
        and TimerDiscipline(config.timer_discipline) is TimerDiscipline.DETERMINISTIC
        and TimerDiscipline(config.delay_discipline) is TimerDiscipline.DETERMINISTIC
        and config.gilbert is None
        and not config.sample_times
        and config.params.timeout_interval > config.params.delay
    )


def simulate_replications_vectorized(
    config: SingleHopSimConfig,
    replications: int,
) -> list[SingleHopSimResult]:
    """All replications' results, bit-identical to the scalar engine.

    Per-replication seeds, named streams and draw order match
    :func:`~repro.protocols.session.simulate_replications` exactly;
    replications whose timelines leave the closed-form regime fall back
    to the scalar engine lane by lane.
    """
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications}")
    if not supports_vectorized_config(config):
        raise ValueError(
            f"config not supported by the vectorized engine "
            f"(protocol={config.protocol.value}); see supports_vectorized_config"
        )
    streams = RandomStreams(config.seed)
    results = []
    for index in range(replications):
        lane_config = config.replace(seed=streams.spawn(index).seed)
        outcome = _simulate_lane(lane_config)
        if outcome is None:
            outcome = SingleHopSimulation(lane_config).run()
        results.append(outcome)
    return results


def _simulate_lane(config: SingleHopSimConfig) -> SingleHopSimResult | None:
    """One replication via array replay; None when it needs the engine."""
    params = config.params
    protocol = config.protocol
    explicit_removal = protocol.explicit_removal
    streams = RandomStreams(config.seed)
    workload = streams.stream("workload")
    losses = UniformPool(streams.stream("forward-channel"))

    loss_rate = params.loss_rate
    delay = params.delay
    refresh = params.refresh_interval
    timeout = params.timeout_interval
    update_rate = params.update_rate

    now = 0.0
    triggers_sent = 0
    refreshes_sent = 0
    timeout_removals = 0
    boundary_times: list[np.ndarray] = []
    boundary_flags: list[np.ndarray] = []

    for _ in range(config.sessions):
        # Workload draws, in the scalar driver's exact order: session
        # length first, then update gaps until one overshoots.
        remaining = float(workload.exponential(params.removal_rate**-1))
        gaps = []
        while update_rate > 0:
            gap = float(workload.exponential(1.0 / update_rate))
            if gap >= remaining:
                break
            gaps.append(gap)
            remaining -= gap

        # Triggers sit on the fold-left walk of the engine clock; each
        # trigger restarts the refresh loop, whose fold-left grid runs
        # until the next trigger (or the removal) cancels it.
        trig = fold_cumsum(now, np.asarray(gaps))
        t_rem = trig[-1] + remaining
        bounds = np.append(trig[1:], t_rem)
        spans = bounds - trig
        depth = max(0, int(spans.max() / refresh) + 1)
        grid = refresh_grid(trig, refresh, depth)
        valid = np.empty(grid.shape, dtype=bool)
        valid[:, 0] = True
        valid[:, 1:] = grid[:, 1:] < bounds[:, None]

        triggers_sent += len(trig)
        refreshes_sent += int(valid[:, 1:].sum())

        # One loss uniform per forward send, consumed in send order;
        # the SS+ER removal message is the session's final send.
        send_times = grid.ravel()[valid.ravel()]
        draws = losses.take(len(send_times) + (1 if explicit_removal else 0))
        state_lost = draws[: len(send_times)] < loss_rate
        removal_lost = bool(draws[-1] < loss_rate) if explicit_removal else True

        receipts = delivery_times(send_times[~state_lost], delay)
        # A receipt leaves sender and receiver consistent only until
        # the next trigger bumps the version (or the removal empties
        # the sender) — its interval's refresh bound, exactly.
        send_bounds = np.broadcast_to(bounds[:, None], grid.shape).ravel()[valid.ravel()]
        receipt_flags = receipts < send_bounds[~state_lost]

        outcome = _session_end(
            receipts,
            t_rem,
            timeout,
            removal_receipt=(
                delivery_times(np.array([t_rem]), delay)[0]
                if explicit_removal and not removal_lost
                else None
            ),
        )
        if outcome is None:
            return None
        end, session_timeouts, mid_times, tail_times, tail_flags = outcome
        timeout_removals += session_timeouts

        # When the state timeout is a multiple of the refresh interval a
        # refresh receipt lands on the exact expiry instant; the engine
        # fires the (earlier-scheduled) timeout first and the refresh
        # re-installs at the same time.  Mid-session expiries therefore
        # sort *before* receipts so an equal-time receipt's flag wins.
        times = np.concatenate([trig, mid_times, receipts, tail_times])
        flags = np.concatenate(
            [
                np.zeros(len(trig) + len(mid_times)),
                receipt_flags.astype(float),
                tail_flags,
            ]
        )
        order = np.argsort(times, kind="stable")
        boundary_times.append(times[order])
        boundary_flags.append(flags[order])
        now = end

    active = fold_active_time(
        np.concatenate(boundary_times), np.concatenate(boundary_flags)
    )
    sim_time = now
    message_counts = {"trigger": triggers_sent}
    if refreshes_sent:
        message_counts["refresh"] = refreshes_sent
    if explicit_removal:
        message_counts["removal"] = config.sessions
    return SingleHopSimResult(
        protocol=protocol,
        sessions=config.sessions,
        sim_time=sim_time,
        inconsistent_time=sim_time - active,
        message_counts=message_counts,
        timeout_removals=timeout_removals,
        false_signal_removals=0,
        consistency_samples=(),
    )


def _session_end(
    receipts: np.ndarray,
    t_rem: float,
    timeout: float,
    removal_receipt: float | None,
):
    """Resolve the receiver's endgame for one session.

    Returns ``(end, timeouts, mid_times, tail_times, tail_flags)`` —
    the session end time (the instant ``wait_empty`` fires at or after
    the sender's removal), the number of timeout removals, mid-session
    expiry boundaries (always flag-0; kept separate because an
    equal-time receipt must sort after them), and the remaining
    boundaries (the sender's removal instant, the receiver's final
    emptying).  Returns ``None`` when a delivered receipt outlives the
    session end: that timeline leaks into the next session and needs
    the scalar engine.
    """
    q = len(receipts)
    if q == 0:
        # Nothing delivered: the receiver never held state this
        # session; the sender's removal finds both sides empty (an
        # in-flight SS+ER removal is a no-op on an empty receiver).
        return t_rem, 0, np.empty(0), np.array([t_rem]), np.array([1.0])

    expiries = receipts + timeout
    hold = int(np.searchsorted(receipts, t_rem, side="right")) - 1
    if hold < 0:
        return None  # every receipt arrives after the session driver moved on

    # Gap timeouts inside the held part of the session: the receiver
    # re-installs on the next receipt, the sender still holds.  Ties
    # (next receipt exactly at the expiry) fire the timeout first — its
    # event was scheduled at the previous receipt, the delivery only at
    # send time — so the comparison is non-strict.
    mid = expiries[:hold] <= receipts[1 : hold + 1]
    timeouts = int(mid.sum())
    mid_times = expiries[:hold][mid]

    if expiries[hold] <= t_rem:
        # Timed out before the removal and nothing arrived since.
        if hold != q - 1:
            return None  # late receipts would re-install past the end
        return (
            t_rem,
            timeouts + 1,
            mid_times,
            np.array([expiries[hold], t_rem]),
            np.array([0.0, 1.0]),
        )

    # Held at the removal: walk receipts until the first emptying.
    tail_times = [t_rem]
    tail_flags = [0.0]
    i = hold
    while True:
        nxt = receipts[i + 1] if i + 1 < q else None
        expiry = expiries[i]
        if (
            removal_receipt is not None
            and removal_receipt < expiry
            and (nxt is None or removal_receipt < nxt)
        ):
            if nxt is not None:
                return None  # receipt after the explicit removal
            tail_times.append(removal_receipt)
            tail_flags.append(1.0)
            return removal_receipt, timeouts, mid_times, np.array(tail_times), np.array(tail_flags)
        if nxt is not None and nxt < expiry:
            i += 1
            continue
        if nxt is not None:
            return None  # receipt at or after the timeout-driven emptying
        tail_times.append(expiry)
        tail_flags.append(1.0)
        return expiry, timeouts + 1, mid_times, np.array(tail_times), np.array(tail_flags)
