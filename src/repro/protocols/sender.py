"""The signaling sender: state lifecycle, refreshes, reliable transmission.

The sender owns the authoritative state value (modeled as a
monotonically increasing version number), and implements everything the
five protocols put on the sending side:

* trigger transmission on install/update (all protocols);
* the refresh loop (soft-state protocols);
* ACK-driven retransmission of triggers (SS+RT, SS+RTR, HS);
* explicit removal, optionally retransmitted until acknowledged
  (SS+ER best-effort; SS+RTR and HS reliable);
* re-triggering after a receiver's removal notification (SS+RT,
  SS+RTR, HS — recovery from false removal).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.parameters import SignalingParameters
from repro.core.protocols import Protocol
from repro.protocols.messages import Message, MessageKind
from repro.sim.engine import Environment, Interrupt, Process
from repro.sim.randomness import Timer

__all__ = ["SignalingSender"]


class SignalingSender:
    """Sender-side state machine for all five protocols."""

    def __init__(
        self,
        env: Environment,
        protocol: Protocol,
        params: SignalingParameters,
        refresh_timer: Timer,
        retransmission_timer: Timer,
        transmit: Callable[[Message], None],
        on_value_change: Callable[[], None] | None = None,
    ) -> None:
        self.env = env
        self.protocol = protocol
        self.params = params
        self.value: int | None = None
        self.version = 0
        self._refresh_timer = refresh_timer
        self._retx_timer = retransmission_timer
        self._transmit = transmit
        self._on_value_change = on_value_change or (lambda: None)
        self._refresh_proc: Process | None = None
        self._trigger_retx_proc: Process | None = None
        self._removal_retx_proc: Process | None = None
        self._acked_version = 0
        self._removal_acked_version = 0

    # ------------------------------------------------------------------
    # Lifecycle operations (driven by the session driver)
    # ------------------------------------------------------------------

    def install(self) -> None:
        """Create local state and start installing it remotely."""
        self._cancel(self._removal_retx_proc)
        self._removal_retx_proc = None
        self._bump_and_trigger()

    def update(self) -> None:
        """Change the local state value (requires installed state)."""
        if self.value is None:
            raise RuntimeError("cannot update: sender holds no state")
        self._bump_and_trigger()

    def remove(self) -> None:
        """Delete local state; arrange for remote deletion per protocol."""
        if self.value is None:
            raise RuntimeError("cannot remove: sender holds no state")
        removal_version = self.version
        self._set_value(None)
        self._cancel(self._refresh_proc)
        self._refresh_proc = None
        self._cancel(self._trigger_retx_proc)
        self._trigger_retx_proc = None
        if self.protocol.explicit_removal:
            self._transmit(Message(MessageKind.REMOVAL, removal_version))
            if self.protocol.reliable_removal:
                self._removal_retx_proc = self.env.process(
                    self._removal_retx_loop(removal_version), name="removal-retx"
                )
        # Pure soft state (SS, SS+RT): simply stop refreshing; the
        # receiver's state-timeout performs the removal.

    # ------------------------------------------------------------------
    # Message handling (reverse channel)
    # ------------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        """Handle an ACK / REMOVAL_ACK / NOTIFY from the receiver."""
        if message.kind is MessageKind.ACK:
            self._acked_version = max(self._acked_version, message.version)
            if self._acked_version >= self.version:
                self._cancel(self._trigger_retx_proc)
                self._trigger_retx_proc = None
        elif message.kind is MessageKind.REMOVAL_ACK:
            self._removal_acked_version = max(self._removal_acked_version, message.version)
            self._cancel(self._removal_retx_proc)
            self._removal_retx_proc = None
        elif message.kind is MessageKind.NOTIFY:
            # The receiver dropped state we still hold: false removal.
            # Recover by re-installing (SS+RT, SS+RTR, HS).
            if self.value is not None and self.protocol.removal_notification:
                self._send_trigger(retransmission=False)
        else:
            raise ValueError(f"sender cannot handle {message.kind!r}")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _bump_and_trigger(self) -> None:
        self.version += 1
        self._set_value(self.version)
        self._send_trigger(retransmission=False)

    def _set_value(self, value: int | None) -> None:
        self.value = value
        self._on_value_change()

    def _send_trigger(self, retransmission: bool) -> None:
        self._transmit(
            Message(
                MessageKind.TRIGGER,
                self.version,
                self.value,
                retransmission=retransmission,
            )
        )
        if not retransmission:
            self._restart_refresh_loop()
            if self.protocol.reliable_triggers:
                self._cancel(self._trigger_retx_proc)
                self._trigger_retx_proc = self.env.process(
                    self._trigger_retx_loop(self.version), name="trigger-retx"
                )

    def _restart_refresh_loop(self) -> None:
        if not self.protocol.uses_refreshes:
            return
        self._cancel(self._refresh_proc)
        self._refresh_proc = self.env.process(self._refresh_loop(), name="refresh")

    def _refresh_loop(self):
        try:
            while self.value is not None:
                yield self.env.timeout(self._refresh_timer.draw())
                if self.value is None:
                    return
                self._transmit(Message(MessageKind.REFRESH, self.version, self.value))
        except Interrupt:
            return

    def _trigger_retx_loop(self, version: int):
        try:
            while (
                self.value is not None
                and self.version == version
                and self._acked_version < version
            ):
                yield self.env.timeout(self._retx_timer.draw())
                if (
                    self.value is None
                    or self.version != version
                    or self._acked_version >= version
                ):
                    return
                self._transmit(
                    Message(MessageKind.TRIGGER, version, self.value, retransmission=True)
                )
        except Interrupt:
            return

    def _removal_retx_loop(self, version: int):
        try:
            while self.value is None and self._removal_acked_version < version:
                yield self.env.timeout(self._retx_timer.draw())
                if self.value is not None or self._removal_acked_version >= version:
                    return
                self._transmit(Message(MessageKind.REMOVAL, version, retransmission=True))
        except Interrupt:
            return

    @staticmethod
    def _cancel(proc: Process | None) -> None:
        if proc is not None and proc.is_alive:
            proc.interrupt("cancelled")
