"""Executable single-hop protocol implementations on the DES kernel."""

from repro.protocols.config import SingleHopSimConfig
from repro.protocols.heartbeat import (
    HeartbeatEmitter,
    HeartbeatMonitor,
    build_heartbeat_pair,
    false_positive_rate,
)
from repro.protocols.messages import Message, MessageKind
from repro.protocols.multisession import MultiSessionResult, MultiSessionSimulation
from repro.protocols.receiver import SignalingReceiver
from repro.protocols.sender import SignalingSender
from repro.protocols.session import (
    SingleHopSimResult,
    SingleHopSimulation,
    simulate_replications,
)

__all__ = [
    "HeartbeatEmitter",
    "HeartbeatMonitor",
    "Message",
    "MessageKind",
    "MultiSessionResult",
    "MultiSessionSimulation",
    "build_heartbeat_pair",
    "false_positive_rate",
    "SignalingReceiver",
    "SignalingSender",
    "SingleHopSimConfig",
    "SingleHopSimResult",
    "SingleHopSimulation",
    "simulate_replications",
]
