"""A heartbeat failure detector — the HS external-signal substrate.

Hard-state signaling cannot time out orphaned state on its own; it
"must rely on an external signal to detect that it is holding orphaned
state", e.g. "a separate heartbeat protocol whose job is to detect when
the signaling sender crashes" (paper §II).  The analytic model folds
the detector into a single false-positive rate ``lambda_x``.  This
module implements the detector as a real simulated component so that:

* examples can run HS with an honest failure-detection substrate;
* the mapping from heartbeat parameters to the model's ``lambda_x``
  (:func:`false_positive_rate`) can be tested against simulation.

Protocol: the monitored side emits a heartbeat every ``interval``
seconds over a lossy channel; the monitor declares failure when
``miss_threshold`` consecutive intervals pass with no heartbeat.  With
per-message loss ``p`` the spurious-detection rate is approximately one
false alarm per ``miss_threshold`` consecutive losses:

``lambda_x ~= p^miss_threshold / interval``

— the same form as the soft-state false-removal rate with
``T = miss_threshold * interval``, which is why the paper can treat the
two uniformly.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.sim.channel import Channel, ChannelConfig, DeliveredMessage
from repro.sim.engine import Environment, Interrupt, Process
from repro.sim.randomness import Timer

__all__ = ["HeartbeatEmitter", "HeartbeatMonitor", "false_positive_rate"]


def false_positive_rate(loss_rate: float, interval: float, miss_threshold: int) -> float:
    """Approximate spurious failure-detection rate of the heartbeat pair.

    This is the value to plug into the model's
    ``external_false_signal_rate`` when HS runs over this detector.
    """
    if not 0.0 <= loss_rate < 1.0:
        raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    if miss_threshold < 1:
        raise ValueError(f"miss_threshold must be >= 1, got {miss_threshold}")
    return (loss_rate**miss_threshold) / interval


class HeartbeatEmitter:
    """Periodically sends heartbeats while the monitored side is alive."""

    def __init__(
        self,
        env: Environment,
        channel: Channel,
        interval_timer: Timer,
    ) -> None:
        self.env = env
        self.alive = True
        self.heartbeats_sent = 0
        self._channel = channel
        self._timer = interval_timer
        self._proc: Process = env.process(self._emit_loop(), name="heartbeat-emitter")

    def crash(self) -> None:
        """Stop emitting heartbeats (a real failure, not a false alarm)."""
        self.alive = False
        if self._proc.is_alive:
            self._proc.interrupt("crashed")

    def _emit_loop(self):
        try:
            while self.alive:
                yield self.env.timeout(self._timer.draw())
                if not self.alive:
                    return
                self.heartbeats_sent += 1
                self._channel.send("heartbeat")
        except Interrupt:
            return


class HeartbeatMonitor:
    """Declares failure after ``miss_threshold`` missed heartbeats.

    Implemented as a deadline watchdog restarted on every arrival: the
    deadline is ``(miss_threshold + 0.5) * interval`` — long enough for
    exactly ``miss_threshold`` consecutive heartbeats to fit in the
    silent window regardless of phase, with half an interval of grace
    for channel delay jitter.  ``on_failure`` fires on every detection —
    genuine or spurious; the counter lets tests measure the false-alarm
    rate against :func:`false_positive_rate`.
    """

    def __init__(
        self,
        env: Environment,
        interval: float,
        miss_threshold: int,
        on_failure: Callable[[], None],
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if miss_threshold < 1:
            raise ValueError(f"miss_threshold must be >= 1, got {miss_threshold}")
        self.env = env
        self.interval = interval
        self.miss_threshold = miss_threshold
        self.detections = 0
        self._deadline = (miss_threshold + 0.5) * interval
        self._on_failure = on_failure
        self._stopped = False
        self._watch_proc: Process = env.process(self._watch_loop(), name="heartbeat-monitor")

    def on_heartbeat(self, _delivered: DeliveredMessage) -> None:
        """Channel delivery callback: a heartbeat arrived."""
        self._restart()

    def stop(self) -> None:
        """Stop monitoring (e.g. after the association is torn down)."""
        self._stopped = True
        if self._watch_proc.is_alive:
            self._watch_proc.interrupt("stopped")

    def _restart(self) -> None:
        if self._stopped:
            return
        if self._watch_proc.is_alive:
            self._watch_proc.interrupt("heartbeat")
        self._watch_proc = self.env.process(self._watch_loop(), name="heartbeat-monitor")

    def _watch_loop(self):
        try:
            while True:
                yield self.env.timeout(self._deadline)
                self.detections += 1
                self._on_failure()
        except Interrupt:
            return


def build_heartbeat_pair(
    env: Environment,
    loss_rate: float,
    delay: float,
    interval: float,
    miss_threshold: int,
    interval_timer: Timer,
    rng,
    on_failure: Callable[[], None],
) -> tuple[HeartbeatEmitter, HeartbeatMonitor]:
    """Wire an emitter and monitor over one lossy channel."""
    monitor = HeartbeatMonitor(env, interval, miss_threshold, on_failure)
    channel = Channel(
        env,
        ChannelConfig(loss_rate=loss_rate, mean_delay=delay),
        rng,
        monitor.on_heartbeat,
        name="heartbeat",
    )
    emitter = HeartbeatEmitter(env, channel, interval_timer)
    return emitter, monitor
