"""Many concurrent signaling sessions on one shared clock.

The paper's model covers "a single piece (rather than multiple pieces)
of state, as it is conceptually simpler and the latter can generally be
considered as multiple instantiations of the former" (§III).  This
module *tests that reduction*: it runs ``K`` independent sender/state
pairs concurrently in one environment (as a Kazaa supernode holds one
directory entry per peer) and measures

* the per-session inconsistency ratio — which must match the
  single-session value (independence), and
* the aggregate message rate — which must scale linearly in ``K``.

Losses remain independent Bernoulli trials per message, exactly as in
the model, so the reduction should hold; holding it to that is a
regression check that every piece of protocol machinery (timers,
version spaces, channels) is properly per-session.
"""

from __future__ import annotations

import dataclasses

from repro.protocols.config import SingleHopSimConfig
from repro.protocols.session import SingleHopSimResult, SingleHopSimulation
from repro.sim.engine import Environment
from repro.sim.randomness import RandomStreams

__all__ = ["MultiSessionResult", "MultiSessionSimulation"]


@dataclasses.dataclass(frozen=True)
class MultiSessionResult:
    """Aggregate and per-session outcomes of a concurrent run."""

    per_session: tuple[SingleHopSimResult, ...]

    @property
    def session_count(self) -> int:
        """Number of concurrent sender/receiver pairs."""
        return len(self.per_session)

    @property
    def mean_inconsistency_ratio(self) -> float:
        """Average of the per-pair inconsistency ratios."""
        values = [r.inconsistency_ratio for r in self.per_session]
        return sum(values) / len(values)

    @property
    def total_messages(self) -> int:
        """All signaling messages across every pair."""
        return sum(r.total_messages for r in self.per_session)

    def aggregate_message_rate(self) -> float:
        """Messages per second summed over all concurrent pairs."""
        span = max(r.sim_time for r in self.per_session)
        if span <= 0:
            return 0.0
        return self.total_messages / span


class MultiSessionSimulation:
    """Run ``K`` independent protocol instances on one shared clock.

    Each instance gets its own channels, timers and random substreams
    (per-instance seeds derived from the config seed), mirroring how a
    state-holder multiplexes unrelated sessions.  The shared clock and
    event queue make this an interleaving test, not K separate runs.
    """

    def __init__(self, config: SingleHopSimConfig, instances: int) -> None:
        if instances < 1:
            raise ValueError(f"instances must be >= 1, got {instances}")
        self.config = config
        self.instances = instances

    def run(self) -> MultiSessionResult:
        """Run all instances to completion; collect per-pair results."""
        env = Environment()
        streams = RandomStreams(self.config.seed)
        simulations = [
            SingleHopSimulation(
                self.config.replace(seed=streams.spawn(index).seed), env=env
            )
            for index in range(self.instances)
        ]
        # Snapshot each pair's clock and consistency integral at the
        # moment its own workload completes, so a pair that finishes
        # early does not dilute its ratio with idle tail time.
        completion: list[tuple[float, float] | None] = [None] * self.instances
        drivers = []
        for index, sim in enumerate(simulations):
            driver = env.process(sim._session_workload(), name=f"driver-{index}")

            def snapshot(_event, index=index, sim=sim) -> None:
                completion[index] = (env.now, sim._consistency.active_time())

            driver.callbacks.append(snapshot)
            drivers.append(driver)
        for driver in drivers:
            if not driver.processed:
                env.run(until=driver)
        results = []
        for sim, snap in zip(simulations, completion):
            assert snap is not None  # every driver has completed
            sim_time, consistent_time = snap
            results.append(
                SingleHopSimResult(
                    protocol=sim.config.protocol,
                    sessions=sim.config.sessions,
                    sim_time=sim_time,
                    inconsistent_time=sim_time - consistent_time,
                    message_counts=dict(sim.message_counts),
                    timeout_removals=sim.receiver.timeout_removals,
                    false_signal_removals=sim.receiver.false_signal_removals,
                )
            )
        return MultiSessionResult(per_session=tuple(results))
