"""Fault models: bursty-loss channels and deterministic failure schedules.

The paper's thesis is that soft state *degrades gracefully* under loss
and component failure, yet the baseline reproduction only exercises
i.i.d. Bernoulli loss over immortal components.  This layer holds the
fault descriptions — pure, frozen parameter objects with no behavior of
their own — consumed by three very different executors:

* the analytic side (:mod:`repro.core.gilbert`) builds channel-state x
  protocol-state product Markov chains from
  :class:`GilbertElliottParameters`;
* the simulator harnesses (:mod:`repro.protocols`,
  :mod:`repro.multihop`) drive a stateful
  :class:`repro.sim.channel.GilbertElliottProcess` from the same
  parameters, and realize :class:`FaultSchedule` link flaps and node
  crashes as deterministic event processes;
* the experiment layer sweeps them (the ``burst_loss`` and
  ``link_flap`` scenario families).

Keeping the descriptions in one bottom layer (depends only on ``meta``)
means model and simulation agree on *what* the fault is by
construction; only *how* it is realized differs per consumer.
"""

from repro.faults.gilbert import GilbertElliottParameters
from repro.faults.schedule import FaultSchedule, LinkFlap, NodeCrash

__all__ = [
    "FaultSchedule",
    "GilbertElliottParameters",
    "LinkFlap",
    "NodeCrash",
]
