"""Gilbert-Elliott bursty-loss channel parameters.

The Gilbert-Elliott channel is a two-state continuous-time modulator:
the channel sits in a *good* or a *bad* state, flips between them at
exponential rates, and every message sent while the channel is in state
``c`` is lost independently with that state's loss probability.  With
``loss_bad > loss_good`` losses cluster into bursts; with
``loss_good == loss_bad`` the modulator is invisible and the channel
degenerates to the baseline i.i.d. Bernoulli loss — the anchor both the
analytic product chain and the simulator must reproduce bit for bit.

:meth:`GilbertElliottParameters.matched_average` builds the channel the
``burst_loss`` scenarios sweep: hold the *average* loss probability
fixed and turn a single ``burstiness`` knob from 0 (i.i.d.) to 1
(maximally concentrated into the bad state), so any difference between
curves is attributable to loss *correlation* alone.
"""

from __future__ import annotations

import dataclasses

__all__ = ["GilbertElliottParameters"]


@dataclasses.dataclass(frozen=True)
class GilbertElliottParameters:
    """A two-state (good/bad) loss modulator with per-state loss rates.

    ``good_to_bad`` / ``bad_to_good`` are the CTMC flip rates (1/s); a
    flip rate of 0 pins the channel in its current state forever.
    """

    loss_good: float
    loss_bad: float
    good_to_bad: float
    bad_to_good: float

    def __post_init__(self) -> None:
        for name in ("loss_good", "loss_bad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name in ("good_to_bad", "bad_to_good"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")

    @property
    def stationary_bad(self) -> float:
        """Long-run fraction of time spent in the bad state."""
        total = self.good_to_bad + self.bad_to_good
        if total == 0.0:
            return 0.0
        return self.good_to_bad / total

    @property
    def stationary_good(self) -> float:
        """Long-run fraction of time spent in the good state."""
        return 1.0 - self.stationary_bad

    @property
    def average_loss(self) -> float:
        """Time-averaged per-message loss probability."""
        return (
            self.stationary_good * self.loss_good
            + self.stationary_bad * self.loss_bad
        )

    @property
    def is_degenerate(self) -> bool:
        """Whether the modulator is invisible (both states lose alike).

        Degenerate channels must reproduce the i.i.d. Bernoulli results
        exactly — the models short-circuit to the baseline path on this
        predicate, so it is a strict float equality on purpose.
        """
        return self.loss_good == self.loss_bad

    def replace(self, **changes: float) -> "GilbertElliottParameters":
        """A copy with the given fields changed (sweep helper)."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def matched_average(
        cls,
        average_loss: float,
        burstiness: float,
        stationary_bad: float = 0.1,
        mean_bad_duration: float = 1.0,
    ) -> "GilbertElliottParameters":
        """A channel with the given average loss and burst concentration.

        ``burstiness`` interpolates the bad-state loss probability from
        the average (``0``: both states lose at ``average_loss``, i.e.
        exactly i.i.d.) up to its matched-average ceiling (``1``: the
        bad state absorbs as much of the loss as ``stationary_bad``
        allows, capped at certain loss).  The good-state probability is
        then whatever keeps the time average at ``average_loss``.
        ``mean_bad_duration`` sets the burst timescale (1/``bad_to_good``),
        and the flip rates are balanced to hold ``stationary_bad``.
        """
        if not 0.0 <= average_loss <= 1.0:
            raise ValueError(f"average_loss must be in [0, 1], got {average_loss}")
        if not 0.0 <= burstiness <= 1.0:
            raise ValueError(f"burstiness must be in [0, 1], got {burstiness}")
        if not 0.0 < stationary_bad < 1.0:
            raise ValueError(
                f"stationary_bad must be in (0, 1), got {stationary_bad}"
            )
        if mean_bad_duration <= 0:
            raise ValueError(
                f"mean_bad_duration must be positive, got {mean_bad_duration}"
            )
        bad_to_good = 1.0 / mean_bad_duration
        good_to_bad = bad_to_good * stationary_bad / (1.0 - stationary_bad)
        if burstiness == 0.0:
            # Exact degeneracy: both losses are the *same float*, so the
            # i.i.d. short-circuit triggers and results match the
            # baseline bit for bit.
            return cls(average_loss, average_loss, good_to_bad, bad_to_good)
        ceiling = min(1.0, average_loss / stationary_bad)
        loss_bad = average_loss + burstiness * (ceiling - average_loss)
        loss_good = (average_loss - stationary_bad * loss_bad) / (
            1.0 - stationary_bad
        )
        loss_good = min(1.0, max(0.0, loss_good))
        return cls(loss_good, loss_bad, good_to_bad, bad_to_good)
