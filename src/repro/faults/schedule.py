"""Deterministic fault schedules: link flaps and node crash/restart.

Unlike the Gilbert-Elliott modulator — which is *stochastic* and driven
through a named random stream — fault schedules are fully deterministic
time programs: given the schedule, the set of outage windows and crash
events is fixed before the simulation starts.  That makes recovery
curves reproducible point-for-point and lets the ``link_flap`` scenarios
sweep flap rate without confounding it with sampling noise in the fault
process itself.

The simulators (:mod:`repro.multihop.chain`, :mod:`repro.multihop.tree`)
realize a schedule as environment processes that toggle a channel's
``down`` flag (link flap: messages sent during an outage are lost
deterministically, consuming no randomness) or clear a node's soft state
(crash: installed state is lost; restart re-enables the node and lets
the protocol's own refresh/timeout machinery rebuild it).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterator, Tuple

__all__ = ["FaultSchedule", "LinkFlap", "NodeCrash"]


@dataclasses.dataclass(frozen=True)
class LinkFlap:
    """A periodic link outage: down for ``down_duration`` every ``period``.

    ``link`` names the affected hop/edge (simulator-specific: hop index
    for chains, child node id for trees).  The k-th outage window is
    ``[offset + k*period, offset + k*period + down_duration)``.
    """

    link: int
    period: float
    down_duration: float
    offset: float = 0.0

    def __post_init__(self) -> None:
        if not (math.isfinite(self.period) and self.period > 0):
            raise ValueError(f"period must be positive, got {self.period}")
        if not 0.0 < self.down_duration < self.period:
            raise ValueError(
                "down_duration must be in (0, period), got "
                f"{self.down_duration} with period {self.period}"
            )
        if not (math.isfinite(self.offset) and self.offset >= 0):
            raise ValueError(f"offset must be non-negative, got {self.offset}")

    def windows(self, horizon: float) -> Iterator[Tuple[float, float]]:
        """Yield (down_at, up_at) outage windows starting before ``horizon``."""
        start = self.offset
        while start < horizon:
            yield (start, start + self.down_duration)
            start += self.period

    def is_down(self, now: float) -> bool:
        """Whether the link is inside an outage window at time ``now``."""
        if now < self.offset:
            return False
        phase = (now - self.offset) % self.period
        return phase < self.down_duration


@dataclasses.dataclass(frozen=True)
class NodeCrash:
    """A one-shot node crash with state loss, restarting after a delay.

    At time ``at`` the node loses all installed soft state; at
    ``at + restart_after`` it resumes normal processing with empty
    state, to be repopulated by the signaling protocol itself.
    """

    node: int
    at: float
    restart_after: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.at) and self.at >= 0):
            raise ValueError(f"at must be non-negative, got {self.at}")
        if not (math.isfinite(self.restart_after) and self.restart_after > 0):
            raise ValueError(
                f"restart_after must be positive, got {self.restart_after}"
            )

    @property
    def restart_at(self) -> float:
        return self.at + self.restart_after


@dataclasses.dataclass(frozen=True)
class FaultSchedule:
    """A bundle of deterministic faults injected into one simulation run."""

    flaps: Tuple[LinkFlap, ...] = ()
    crashes: Tuple[NodeCrash, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "flaps", tuple(self.flaps))
        object.__setattr__(self, "crashes", tuple(self.crashes))

    def flaps_for(self, link: int) -> Tuple[LinkFlap, ...]:
        """Flaps affecting the given link, in schedule order."""
        return tuple(flap for flap in self.flaps if flap.link == link)

    def crashes_for(self, node: int) -> Tuple[NodeCrash, ...]:
        """Crashes affecting the given node, sorted by crash time."""
        return tuple(
            sorted(
                (crash for crash in self.crashes if crash.node == node),
                key=lambda crash: crash.at,
            )
        )

    @property
    def is_empty(self) -> bool:
        return not self.flaps and not self.crashes

    def shifted(self, offset: float) -> "FaultSchedule":
        """The same schedule delayed by ``offset`` seconds.

        The transient scenarios state fault times relative to the start
        of *measurement*; a simulation with a warmup window shifts the
        whole program so model time ``t`` lands at virtual time
        ``warmup + t``.
        """
        if not (math.isfinite(offset) and offset >= 0):
            raise ValueError(f"offset must be non-negative, got {offset}")
        return FaultSchedule(
            flaps=tuple(
                dataclasses.replace(flap, offset=flap.offset + offset)
                for flap in self.flaps
            ),
            crashes=tuple(
                dataclasses.replace(crash, at=crash.at + offset)
                for crash in self.crashes
            ),
        )
