"""Configuration for the multi-hop chain simulation."""

from __future__ import annotations

import dataclasses

from repro.core.parameters import MultiHopParameters
from repro.core.protocols import Protocol
from repro.faults.gilbert import GilbertElliottParameters
from repro.faults.schedule import FaultSchedule
from repro.sim.randomness import TimerDiscipline

__all__ = ["MultiHopSimConfig"]


@dataclasses.dataclass(frozen=True)
class MultiHopSimConfig:
    """One replication of the multi-hop simulation.

    The multi-hop regime is stationary (infinite state lifetime, Poisson
    updates), so the run is bounded by ``horizon`` simulated seconds
    rather than a session count.  ``warmup`` seconds are discarded
    before measurement starts.

    Fault injection (see :mod:`repro.faults`): ``gilbert`` replaces the
    i.i.d. Bernoulli loss with a bursty Gilbert-Elliott modulator shared
    by every hop channel (one path-wide channel state, matching the
    product-chain models); ``faults`` is a deterministic schedule of
    link flaps and node crash/restart events, realized as simulation
    processes by the harness.

    ``sample_times`` (absolute virtual times, sorted) makes the run
    record the end-to-end consistency indicator at each grid time via
    :class:`~repro.sim.monitor.TimeSeriesMonitor` — the sim side of
    the transient recovery curves.
    """

    protocol: Protocol
    params: MultiHopParameters
    horizon: float = 20_000.0
    warmup: float = 500.0
    timer_discipline: TimerDiscipline = TimerDiscipline.DETERMINISTIC
    delay_discipline: TimerDiscipline = TimerDiscipline.DETERMINISTIC
    seed: int = 20030825
    gilbert: GilbertElliottParameters | None = None
    faults: FaultSchedule | None = None
    sample_times: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.protocol not in Protocol.multihop_family():
            raise ValueError(
                f"{self.protocol} is not simulated in the multi-hop setting; "
                f"use one of {[p.value for p in Protocol.multihop_family()]}"
            )
        if self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")
        if not 0 <= self.warmup < self.horizon:
            raise ValueError(
                f"warmup must be in [0, horizon), got {self.warmup} vs {self.horizon}"
            )
        if self.faults is not None:
            hops = self.params.hops
            for flap in self.faults.flaps:
                if not 1 <= flap.link <= hops:
                    raise ValueError(
                        f"flap link must be in [1, {hops}], got {flap.link}"
                    )
            for crash in self.faults.crashes:
                if not 1 <= crash.node <= hops:
                    raise ValueError(
                        f"crash node must be in [1, {hops}], got {crash.node}"
                    )
        if self.sample_times:
            times = self.sample_times
            if any(b < a for a, b in zip(times, times[1:])):
                raise ValueError("sample_times must be sorted non-decreasing")
            if times[0] < 0 or times[-1] > self.horizon:
                raise ValueError(
                    f"sample_times must lie in [0, horizon], got "
                    f"[{times[0]}, {times[-1]}] vs horizon {self.horizon}"
                )

    def replace(self, **changes: object) -> "MultiHopSimConfig":
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **changes)
