"""Configuration for the multi-hop chain simulation."""

from __future__ import annotations

import dataclasses

from repro.core.parameters import MultiHopParameters
from repro.core.protocols import Protocol
from repro.sim.randomness import TimerDiscipline

__all__ = ["MultiHopSimConfig"]


@dataclasses.dataclass(frozen=True)
class MultiHopSimConfig:
    """One replication of the multi-hop simulation.

    The multi-hop regime is stationary (infinite state lifetime, Poisson
    updates), so the run is bounded by ``horizon`` simulated seconds
    rather than a session count.  ``warmup`` seconds are discarded
    before measurement starts.
    """

    protocol: Protocol
    params: MultiHopParameters
    horizon: float = 20_000.0
    warmup: float = 500.0
    timer_discipline: TimerDiscipline = TimerDiscipline.DETERMINISTIC
    delay_discipline: TimerDiscipline = TimerDiscipline.DETERMINISTIC
    seed: int = 20030825

    def __post_init__(self) -> None:
        if self.protocol not in Protocol.multihop_family():
            raise ValueError(
                f"{self.protocol} is not simulated in the multi-hop setting; "
                f"use one of {[p.value for p in Protocol.multihop_family()]}"
            )
        if self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")
        if not 0 <= self.warmup < self.horizon:
            raise ValueError(
                f"warmup must be in [0, horizon), got {self.warmup} vs {self.horizon}"
            )

    def replace(self, **changes: object) -> "MultiHopSimConfig":
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **changes)
