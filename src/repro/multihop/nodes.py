"""Nodes of the multi-hop signaling chain.

A chain is ``sender = node 0 -> node 1 -> ... -> node N``.  State
installed by the sender must reach every node.  The three protocols of
§III-B behave as follows at each node:

* **SS** — state-carrying messages are forwarded downstream best-effort;
  each relay holds a state-timeout timer; refreshes originate at the
  sender only and are relayed hop by hop.
* **SS+RT** — adds hop-by-hop reliable triggers: each node retransmits
  a TRIGGER to its downstream neighbor every ``K`` until the hop-local
  ACK arrives.  A relay whose state times out sends a hop-local NOTIFY
  upstream so its neighbor re-installs (the notification mechanism of
  §II applied per hop).
* **HS** — reliable triggers only; no refreshes or timeouts.  A spurious
  external failure signal at a relay purges its state, floods a REMOVAL
  downstream, and sends a NOTIFY upstream toward the sender, which
  re-triggers installation (the model's ``F``-state excursion).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.protocols import Protocol
from repro.protocols.messages import Message, MessageKind
from repro.sim.engine import Environment, Interrupt, Process
from repro.sim.randomness import Timer

__all__ = ["ChainSender", "RelayNode"]


class _ReliableHop:
    """Retransmit the newest TRIGGER downstream until the hop ACKs it."""

    def __init__(
        self,
        env: Environment,
        retransmission_timer: Timer,
        transmit: Callable[[Message], None],
    ) -> None:
        self.env = env
        self._timer = retransmission_timer
        self._transmit = transmit
        self._proc: Process | None = None
        self._acked_version = 0
        self._current: Message | None = None

    def offer(self, message: Message) -> None:
        """Send ``message`` downstream reliably (supersedes older ones)."""
        self._current = message
        self._transmit(message)
        if self._acked_version >= message.version:
            return
        self.cancel()
        self._proc = self.env.process(self._loop(message.version), name="hop-retx")

    def on_ack(self, version: int) -> None:
        """Stop retransmitting once the downstream hop acknowledged."""
        self._acked_version = max(self._acked_version, version)
        if self._current is not None and self._acked_version >= self._current.version:
            self.cancel()

    def cancel(self) -> None:
        """Abort any in-progress retransmission loop."""
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("cancelled")
        self._proc = None

    def _loop(self, version: int):
        try:
            while (
                self._current is not None
                and self._current.version == version
                and self._acked_version < version
            ):
                yield self.env.timeout(self._timer.draw())
                if (
                    self._current is None
                    or self._current.version != version
                    or self._acked_version >= version
                ):
                    return
                self._transmit(
                    Message(
                        self._current.kind,
                        self._current.version,
                        self._current.value,
                        retransmission=True,
                    )
                )
        except Interrupt:
            return


class ChainSender:
    """Node 0: owns the state value, generates triggers and refreshes."""

    def __init__(
        self,
        env: Environment,
        protocol: Protocol,
        refresh_timer: Timer,
        retransmission_timer: Timer,
        transmit_downstream: Callable[[Message], None],
        on_value_change: Callable[[], None] | None = None,
    ) -> None:
        self.env = env
        self.protocol = protocol
        self.version = 1
        self.value: int = 1
        self._transmit = transmit_downstream
        self._on_value_change = on_value_change or (lambda: None)
        self._refresh_timer = refresh_timer
        self._hop = (
            _ReliableHop(env, retransmission_timer, transmit_downstream)
            if protocol.reliable_triggers
            else None
        )
        self._refresh_proc: Process | None = None
        self._started = False

    def start(self) -> None:
        """Send the initial trigger and start refreshing.

        Separate from ``__init__`` so the chain harness can finish
        wiring channels before the first message is transmitted.
        """
        if self._started:
            raise RuntimeError("chain sender already started")
        self._started = True
        self._send_trigger()
        if self.protocol.uses_refreshes:
            self._refresh_proc = self.env.process(
                self._refresh_loop(), name="chain-refresh"
            )

    def update(self) -> None:
        """Poisson workload: change the state value."""
        self.version += 1
        self.value = self.version
        self._on_value_change()
        self._send_trigger()

    def on_message(self, message: Message) -> None:
        """Handle hop-1 ACKs and upstream NOTIFYs."""
        if message.kind is MessageKind.ACK:
            if self._hop is not None:
                self._hop.on_ack(message.version)
        elif message.kind is MessageKind.NOTIFY:
            # A receiver dropped state (timeout or false signal):
            # re-install by re-triggering the current value.
            self._send_trigger()
        else:
            raise ValueError(f"chain sender cannot handle {message.kind!r}")

    def _send_trigger(self) -> None:
        message = Message(MessageKind.TRIGGER, self.version, self.value)
        if self._hop is not None:
            self._hop.offer(message)
        else:
            self._transmit(message)

    def _refresh_loop(self):
        try:
            while True:
                yield self.env.timeout(self._refresh_timer.draw())
                self._transmit(Message(MessageKind.REFRESH, self.version, self.value))
        except Interrupt:
            return


class RelayNode:
    """Nodes 1..N: hold state, forward it downstream, expire it (soft)."""

    def __init__(
        self,
        env: Environment,
        protocol: Protocol,
        index: int,
        is_last: bool,
        timeout_timer: Timer,
        retransmission_timer: Timer,
        transmit_downstream: Callable[[Message], None] | None,
        transmit_upstream: Callable[[Message], None],
        on_value_change: Callable[[], None] | None = None,
    ) -> None:
        if is_last != (transmit_downstream is None):
            raise ValueError("exactly the last node must lack a downstream link")
        self.env = env
        self.protocol = protocol
        self.index = index
        self.is_last = is_last
        self.value: int | None = None
        self.version = 0
        self.crashed = False
        self.timeout_removals = 0
        self.false_signal_removals = 0
        self._timeout_timer = timeout_timer
        self._transmit_down = transmit_downstream
        self._transmit_up = transmit_upstream
        self._on_value_change = on_value_change or (lambda: None)
        self._timeout_proc: Process | None = None
        self._hop = (
            _ReliableHop(env, retransmission_timer, transmit_downstream)
            if protocol.reliable_triggers and transmit_downstream is not None
            else None
        )

    # ------------------------------------------------------------------
    # Upstream-facing input (messages travelling away from the sender)
    # ------------------------------------------------------------------

    def on_message_from_upstream(self, message: Message) -> None:
        """Handle TRIGGER / REFRESH / REMOVAL arriving from the sender side."""
        if self.crashed:
            return
        if message.carries_state:
            if message.version >= self.version:
                self._install(message.version, message.value)
                if self.protocol.reliable_triggers and message.kind is MessageKind.TRIGGER:
                    self._transmit_up(Message(MessageKind.ACK, message.version))
                self._forward_state(message)
        elif message.kind is MessageKind.REMOVAL:
            # HS purge flood after an external failure signal.
            if message.version >= self.version and self.value is not None:
                self.version = max(self.version, message.version)
                self._remove()
            if self._transmit_down is not None:
                self._transmit_down(message)
        else:
            raise ValueError(f"relay cannot handle {message.kind!r} from upstream")

    # ------------------------------------------------------------------
    # Downstream-facing input (messages travelling toward the sender)
    # ------------------------------------------------------------------

    def on_message_from_downstream(self, message: Message) -> None:
        """Handle ACK / NOTIFY arriving from the receiver side."""
        if self.crashed:
            return
        if message.kind is MessageKind.ACK:
            if self._hop is not None:
                self._hop.on_ack(message.version)
        elif message.kind is MessageKind.NOTIFY:
            if self.protocol is Protocol.HS:
                # Failure flood: purge local state and keep propagating
                # toward the sender, which will re-trigger.
                if self.value is not None:
                    self._remove()
                self._transmit_up(message)
            else:
                # SS+RT hop-local notification: re-install the neighbor.
                if self.value is not None:
                    self._forward_state(
                        Message(MessageKind.TRIGGER, self.version, self.value)
                    )
        else:
            raise ValueError(f"relay cannot handle {message.kind!r} from downstream")

    def false_remove(self) -> None:
        """HS external failure signal fired spuriously at this node."""
        if self.crashed or self.value is None:
            return
        self.false_signal_removals += 1
        self._remove()
        self._transmit_up(Message(MessageKind.NOTIFY, self.version))
        if self._transmit_down is not None:
            self._transmit_down(Message(MessageKind.REMOVAL, self.version))

    def crash(self) -> None:
        """Node failure with state loss (see :mod:`repro.faults.schedule`).

        All installed soft state and timers are dropped *silently* — a
        dead node cannot signal its neighbors — and incoming messages
        are discarded until :meth:`restart`.  Resetting ``version`` to 0
        means any state message seen after the restart re-installs.
        """
        self.crashed = True
        self.version = 0
        self._cancel_timeout()
        if self._hop is not None:
            self._hop.cancel()
        if self.value is not None:
            self.value = None
            self._on_value_change()

    def restart(self) -> None:
        """Resume message processing with empty state after a crash."""
        self.crashed = False

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _forward_state(self, message: Message) -> None:
        if self._transmit_down is None:
            return
        forwarded = Message(message.kind, message.version, message.value)
        if self._hop is not None and message.kind is MessageKind.TRIGGER:
            self._hop.offer(forwarded)
        else:
            self._transmit_down(forwarded)

    def _install(self, version: int, value: int | None) -> None:
        self.version = version
        self.value = value
        self._on_value_change()
        if self.protocol.uses_state_timeout:
            self._restart_timeout()

    def _remove(self) -> None:
        self.value = None
        self._on_value_change()
        self._cancel_timeout()
        if self._hop is not None:
            self._hop.cancel()

    def _restart_timeout(self) -> None:
        self._cancel_timeout()
        self._timeout_proc = self.env.process(self._timeout_loop(), name="relay-timeout")

    def _cancel_timeout(self) -> None:
        if self._timeout_proc is not None and self._timeout_proc.is_alive:
            self._timeout_proc.interrupt("cancelled")
        self._timeout_proc = None

    def _timeout_loop(self):
        try:
            yield self.env.timeout(self._timeout_timer.draw())
        except Interrupt:
            return
        if self.value is None:
            return
        self.timeout_removals += 1
        self._remove()
        if self.protocol.removal_notification:
            self._transmit_up(Message(MessageKind.NOTIFY, self.version))
