"""The tree (multicast) simulation harness — per-edge channels.

Generalizes :mod:`repro.multihop.chain` from a relay chain to a rooted
:class:`~repro.core.multihop.topology.Topology`: the sender at the
root, one relay per non-root node, and **one independent lossy channel
pair per edge** (forward toward the leaves, reverse toward the root).
Reliable-trigger protocols run one hop-local retransmission loop *per
child edge* — a node with fan-out ``k`` retransmits independently
toward each unacknowledged child, which is exactly the per-edge
frontier the tree CTMC tracks.

Measured outputs mirror the analytic
:class:`~repro.core.multihop.tree_model.TreeSolution` metrics:
per-node inconsistency, any-leaf inconsistency (the eq. 12
generalization) and per-link transmissions per second.
"""

from __future__ import annotations

import dataclasses

from repro.core.multihop.topology import Topology
from repro.core.protocols import Protocol
from repro.faults.schedule import LinkFlap, NodeCrash
from repro.multihop.config import MultiHopSimConfig
from repro.multihop.nodes import _ReliableHop
from repro.protocols.messages import Message, MessageKind
from repro.sim.channel import Channel, ChannelConfig, GilbertElliottProcess
from repro.sim.engine import Environment, Interrupt, Process
from repro.sim.monitor import StateFractionMonitor, TimeSeriesMonitor
from repro.sim.randomness import RandomStreams, Timer
from repro.sim.stats import ReplicationSet

__all__ = [
    "TreeRelayNode",
    "TreeSender",
    "TreeSimResult",
    "TreeSimulation",
    "simulate_tree_replications",
]


@dataclasses.dataclass(frozen=True)
class TreeSimResult:
    """Measured outcome of one tree simulation run."""

    protocol: Protocol
    topology: Topology
    measured_time: float
    node_inconsistent_time: list[float]
    any_leaf_inconsistent_time: float
    link_transmissions: int
    #: Consistency indicator sampled at ``config.sample_times`` (1.0
    #: when every non-root node agreed with the sender — the tree
    #: CTMC's fully-consistent state, stricter than the leaf metric).
    consistency_samples: tuple[float, ...] = ()

    @property
    def inconsistency_ratio(self) -> float:
        """Fraction of time any leaf disagreed with the sender."""
        if self.measured_time <= 0:
            return 0.0
        return self.any_leaf_inconsistent_time / self.measured_time

    @property
    def message_rate(self) -> float:
        """Per-link transmissions per second, summed over all links."""
        if self.measured_time <= 0:
            return 0.0
        return self.link_transmissions / self.measured_time

    def node_inconsistency(self, node: int) -> float:
        """Fraction of time non-root ``node`` was inconsistent."""
        if not 1 <= node <= self.topology.num_edges:
            raise ValueError(
                f"node must be in [1, {self.topology.num_edges}], got {node}"
            )
        if self.measured_time <= 0:
            return 0.0
        return self.node_inconsistent_time[node - 1] / self.measured_time

    def leaf_profile(self) -> list[float]:
        """Per-leaf inconsistency fractions, in leaf index order."""
        return [self.node_inconsistency(leaf) for leaf in self.topology.leaves()]

    @property
    def mean_leaf_inconsistency(self) -> float:
        """Average per-leaf inconsistency."""
        profile = self.leaf_profile()
        return sum(profile) / len(profile)


class TreeSender:
    """The root: owns the value, triggers and refreshes every child edge."""

    def __init__(
        self,
        env: Environment,
        protocol: Protocol,
        refresh_timer: Timer,
        child_transmits: list,
        child_retransmission_timers: list[Timer],
        on_value_change=None,
    ) -> None:
        self.env = env
        self.protocol = protocol
        self.version = 1
        self.value: int = 1
        self._transmits = list(child_transmits)
        self._on_value_change = on_value_change or (lambda: None)
        self._refresh_timer = refresh_timer
        self._hops: list[_ReliableHop | None] = [
            _ReliableHop(env, timer, transmit) if protocol.reliable_triggers else None
            for timer, transmit in zip(child_retransmission_timers, child_transmits)
        ]
        self._refresh_proc: Process | None = None
        self._started = False

    def start(self) -> None:
        """Send the initial triggers and start the refresh flood."""
        if self._started:
            raise RuntimeError("tree sender already started")
        self._started = True
        self._send_triggers()
        if self.protocol.uses_refreshes:
            self._refresh_proc = self.env.process(
                self._refresh_loop(), name="tree-refresh"
            )

    def update(self) -> None:
        """Poisson workload: change the state value."""
        self.version += 1
        self.value = self.version
        self._on_value_change()
        self._send_triggers()

    def on_message(self, child_slot: int, message: Message) -> None:
        """Handle ACKs and NOTIFYs arriving from one child edge."""
        if message.kind is MessageKind.ACK:
            hop = self._hops[child_slot]
            if hop is not None:
                hop.on_ack(message.version)
        elif message.kind is MessageKind.NOTIFY:
            # A receiver dropped state somewhere below this child:
            # re-install by re-triggering the current value.
            self._send_triggers()
        else:
            raise ValueError(f"tree sender cannot handle {message.kind!r}")

    def _send_triggers(self) -> None:
        message = Message(MessageKind.TRIGGER, self.version, self.value)
        for slot, transmit in enumerate(self._transmits):
            hop = self._hops[slot]
            if hop is not None:
                hop.offer(message)
            else:
                transmit(message)

    def _refresh_loop(self):
        try:
            while True:
                yield self.env.timeout(self._refresh_timer.draw())
                refresh = Message(MessageKind.REFRESH, self.version, self.value)
                for transmit in self._transmits:
                    transmit(refresh)
        except Interrupt:
            return


class TreeRelayNode:
    """A non-root node: holds state, floods it to every child edge."""

    def __init__(
        self,
        env: Environment,
        protocol: Protocol,
        index: int,
        timeout_timer: Timer,
        child_transmits: list,
        child_retransmission_timers: list[Timer],
        transmit_upstream,
        on_value_change=None,
    ) -> None:
        self.env = env
        self.protocol = protocol
        self.index = index
        self.value: int | None = None
        self.version = 0
        self.crashed = False
        self.timeout_removals = 0
        self.false_signal_removals = 0
        self._timeout_timer = timeout_timer
        self._transmits = list(child_transmits)
        self._transmit_up = transmit_upstream
        self._on_value_change = on_value_change or (lambda: None)
        self._timeout_proc: Process | None = None
        self._hops: list[_ReliableHop | None] = [
            _ReliableHop(env, timer, transmit) if protocol.reliable_triggers else None
            for timer, transmit in zip(child_retransmission_timers, child_transmits)
        ]

    @property
    def is_leaf(self) -> bool:
        return not self._transmits

    # -- upstream-facing input (messages travelling toward the leaves) --

    def on_message_from_upstream(self, message: Message) -> None:
        """Handle TRIGGER / REFRESH / REMOVAL arriving from the parent."""
        if self.crashed:
            return
        if message.carries_state:
            if message.version >= self.version:
                self._install(message.version, message.value)
                if self.protocol.reliable_triggers and message.kind is MessageKind.TRIGGER:
                    self._transmit_up(Message(MessageKind.ACK, message.version))
                self._forward_state(message)
        elif message.kind is MessageKind.REMOVAL:
            # HS purge flood after an external failure signal.
            if message.version >= self.version and self.value is not None:
                self.version = max(self.version, message.version)
                self._remove()
            for transmit in self._transmits:
                transmit(message)
        else:
            raise ValueError(f"tree relay cannot handle {message.kind!r} from upstream")

    # -- downstream-facing input (messages travelling toward the root) --

    def on_message_from_child(self, child_slot: int, message: Message) -> None:
        """Handle ACK / NOTIFY arriving from one child edge."""
        if self.crashed:
            return
        if message.kind is MessageKind.ACK:
            hop = self._hops[child_slot]
            if hop is not None:
                hop.on_ack(message.version)
        elif message.kind is MessageKind.NOTIFY:
            if self.protocol is Protocol.HS:
                # Failure flood: purge local state and keep propagating
                # toward the sender, which will re-trigger.
                if self.value is not None:
                    self._remove()
                self._transmit_up(message)
            else:
                # Hop-local notification: re-install just that child.
                if self.value is not None:
                    self._forward_state(
                        Message(MessageKind.TRIGGER, self.version, self.value),
                        only_slot=child_slot,
                    )
        else:
            raise ValueError(f"tree relay cannot handle {message.kind!r} from child")

    def false_remove(self) -> None:
        """HS external failure signal fired spuriously at this node."""
        if self.crashed or self.value is None:
            return
        self.false_signal_removals += 1
        self._remove()
        self._transmit_up(Message(MessageKind.NOTIFY, self.version))
        removal = Message(MessageKind.REMOVAL, self.version)
        for transmit in self._transmits:
            transmit(removal)

    def crash(self) -> None:
        """Node failure with state loss (see :mod:`repro.faults.schedule`).

        Mirrors :meth:`repro.multihop.nodes.RelayNode.crash`: state,
        timers and per-child retransmission loops are dropped silently,
        and incoming messages are discarded until :meth:`restart`.
        """
        self.crashed = True
        self.version = 0
        self._cancel_timeout()
        for hop in self._hops:
            if hop is not None:
                hop.cancel()
        if self.value is not None:
            self.value = None
            self._on_value_change()

    def restart(self) -> None:
        """Resume message processing with empty state after a crash."""
        self.crashed = False

    # -- internals ------------------------------------------------------

    def _forward_state(self, message: Message, only_slot: int | None = None) -> None:
        slots = range(len(self._transmits)) if only_slot is None else (only_slot,)
        for slot in slots:
            forwarded = Message(message.kind, message.version, message.value)
            hop = self._hops[slot]
            if hop is not None and message.kind is MessageKind.TRIGGER:
                hop.offer(forwarded)
            else:
                self._transmits[slot](forwarded)

    def _install(self, version: int, value: int | None) -> None:
        self.version = version
        self.value = value
        self._on_value_change()
        if self.protocol.uses_state_timeout:
            self._restart_timeout()

    def _remove(self) -> None:
        self.value = None
        self._on_value_change()
        self._cancel_timeout()
        for hop in self._hops:
            if hop is not None:
                hop.cancel()

    def _restart_timeout(self) -> None:
        self._cancel_timeout()
        self._timeout_proc = self.env.process(
            self._timeout_loop(), name=f"tree-timeout-{self.index}"
        )

    def _cancel_timeout(self) -> None:
        if self._timeout_proc is not None and self._timeout_proc.is_alive:
            self._timeout_proc.interrupt("cancelled")
        self._timeout_proc = None

    def _timeout_loop(self):
        try:
            yield self.env.timeout(self._timeout_timer.draw())
        except Interrupt:
            return
        if self.value is None:
            return
        self.timeout_removals += 1
        self._remove()
        if self.protocol.removal_notification:
            self._transmit_up(Message(MessageKind.NOTIFY, self.version))


class TreeSimulation:
    """One replication of the tree simulation over a topology."""

    def __init__(self, config: MultiHopSimConfig, topology: Topology) -> None:
        if config.params.hops != topology.num_edges:
            raise ValueError(
                f"params.hops ({config.params.hops}) must equal the topology's "
                f"edge count ({topology.num_edges})"
            )
        self.config = config
        self.topology = topology
        self.env = Environment()
        params = config.params
        protocol = config.protocol
        streams = RandomStreams(config.seed)
        self._workload_rng = streams.stream("workload")
        self._signal_rng = streams.stream("external-signal")
        self.link_transmissions = 0

        channel_config = ChannelConfig(
            loss_rate=params.loss_rate,
            mean_delay=params.delay,
            delay_discipline=config.delay_discipline,
        )
        # One bursty-loss process shared by every edge channel (a single
        # tree-wide channel state, matching the product-chain models),
        # drawing from its own named stream so enabling it never shifts
        # the per-channel loss streams.
        self._loss_process = None
        if config.gilbert is not None:
            self._loss_process = GilbertElliottProcess(
                config.gilbert.loss_good,
                config.gilbert.loss_bad,
                config.gilbert.good_to_bad,
                config.gilbert.bad_to_good,
                streams.stream("gilbert-channel"),
            )

        def timer(mean: float, key: str) -> Timer:
            return Timer(mean, config.timer_discipline, streams.stream(key))

        # Per-edge channel pairs, keyed by the child node; wired after
        # the nodes exist, so transmits go through one-slot indirection.
        forward_channels: dict[int, Channel] = {}
        reverse_channels: dict[int, Channel] = {}

        def make_transmit(channels: dict[int, Channel], child: int):
            def transmit(message: Message) -> None:
                self.link_transmissions += 1
                channels[child].send(message)

            return transmit

        # Build nodes leaves-first so each node's child transmits exist.
        self.nodes: dict[int, TreeRelayNode] = {}
        for node in range(topology.num_edges, 0, -1):
            children = topology.children(node)
            self.nodes[node] = TreeRelayNode(
                self.env,
                protocol,
                index=node,
                timeout_timer=timer(params.timeout_interval, f"timeout-{node}"),
                child_transmits=[
                    make_transmit(forward_channels, child) for child in children
                ],
                child_retransmission_timers=[
                    timer(params.retransmission_interval, f"retx-{node}-{child}")
                    for child in children
                ],
                transmit_upstream=make_transmit(reverse_channels, node),
                on_value_change=self._refresh_consistency,
            )

        root_children = topology.children(0)
        self.sender = TreeSender(
            self.env,
            protocol,
            refresh_timer=timer(params.refresh_interval, "refresh"),
            child_transmits=[
                make_transmit(forward_channels, child) for child in root_children
            ],
            child_retransmission_timers=[
                timer(params.retransmission_interval, f"retx-0-{child}")
                for child in root_children
            ],
            on_value_change=self._refresh_consistency,
        )

        # Channels: edge into `child`, forward (parent -> child) and
        # reverse (child -> parent).  Reverse deliveries carry the
        # child's slot index at the parent so per-edge ACK loops stop.
        for child in range(1, topology.num_nodes):
            parent = topology.parent(child)
            node = self.nodes[child]
            forward_channels[child] = Channel(
                self.env,
                channel_config,
                streams.stream(f"fwd-{child}"),
                (lambda n: lambda d: n.on_message_from_upstream(d.payload))(node),
                name=f"edge-{child}-fwd",
                loss_process=self._loss_process,
            )
            slot = topology.children(parent).index(child)
            if parent == 0:
                handler = (
                    lambda s: lambda d: self.sender.on_message(s, d.payload)
                )(slot)
            else:
                handler = (
                    lambda p, s: lambda d: self.nodes[p].on_message_from_child(
                        s, d.payload
                    )
                )(parent, slot)
            reverse_channels[child] = Channel(
                self.env,
                channel_config,
                streams.stream(f"rev-{child}"),
                handler,
                name=f"edge-{child}-rev",
                loss_process=self._loss_process,
            )

        if config.faults is not None and not config.faults.is_empty:
            self._install_faults(forward_channels, reverse_channels)

        self._node_monitors = {
            node: StateFractionMonitor(self.env, initial=True)
            for node in range(1, topology.num_nodes)
        }
        self._any_leaf_monitor = StateFractionMonitor(self.env, initial=True)
        # Created after the fault processes so a sample scheduled at a
        # fault instant observes the post-fault state (FIFO tie-break).
        self._series_monitor = TimeSeriesMonitor(
            self.env,
            config.sample_times,
            lambda: (
                1.0
                if all(n.value == self.sender.value for n in self.nodes.values())
                else 0.0
            ),
        )
        self._leaves = topology.leaves()
        self.sender.start()
        self._refresh_consistency()

        if protocol is Protocol.HS and params.external_false_signal_rate > 0:
            for node in self.nodes.values():
                self.env.process(
                    self._false_signal_source(node), name=f"signal-{node.index}"
                )

    # -- fault injection (see repro.faults.schedule) --------------------

    def _install_faults(
        self,
        forward_channels: dict[int, Channel],
        reverse_channels: dict[int, Channel],
    ) -> None:
        faults = self.config.faults
        for flap in faults.flaps:
            channels = (forward_channels[flap.link], reverse_channels[flap.link])
            self.env.process(
                self._flap_process(flap, channels), name=f"flap-{flap.link}"
            )
        for crash in faults.crashes:
            self.env.process(
                self._crash_process(crash, self.nodes[crash.node]),
                name=f"crash-{crash.node}",
            )

    def _flap_process(self, flap: LinkFlap, channels: tuple[Channel, ...]):
        for down_at, up_at in flap.windows(self.config.horizon):
            yield self.env.timeout(down_at - self.env.now)
            for channel in channels:
                channel.down = True
            yield self.env.timeout(up_at - self.env.now)
            for channel in channels:
                channel.down = False

    def _crash_process(self, crash: NodeCrash, node: TreeRelayNode):
        yield self.env.timeout(crash.at - self.env.now)
        node.crash()
        yield self.env.timeout(crash.restart_after)
        node.restart()

    # -- wiring helpers -------------------------------------------------

    def _refresh_consistency(self) -> None:
        leaves_consistent = True
        for index, node in self.nodes.items():
            consistent = node.value == self.sender.value
            self._node_monitors[index].set(not consistent)
            if not consistent and index in self._leaves:
                leaves_consistent = False
        self._any_leaf_monitor.set(not leaves_consistent)

    def _false_signal_source(self, node: TreeRelayNode):
        rate = self.config.params.external_false_signal_rate
        while True:
            yield self.env.timeout(float(self._signal_rng.exponential(1.0 / rate)))
            node.false_remove()

    def _update_workload(self):
        rate = self.config.params.update_rate
        while True:
            yield self.env.timeout(float(self._workload_rng.exponential(1.0 / rate)))
            self.sender.update()

    # -- run ------------------------------------------------------------

    def run(self) -> TreeSimResult:
        """Simulate until the horizon; measurement starts after warmup."""
        self.env.process(self._update_workload(), name="update-workload")
        if self.config.warmup > 0:
            self.env.run(until=self.config.warmup)
        for monitor in self._node_monitors.values():
            monitor.reset()
        self._any_leaf_monitor.reset()
        transmissions_at_warmup = self.link_transmissions
        self.env.run(until=self.config.horizon)
        measured = self.config.horizon - self.config.warmup
        return TreeSimResult(
            protocol=self.config.protocol,
            topology=self.topology,
            measured_time=measured,
            node_inconsistent_time=[
                self._node_monitors[node].active_time()
                for node in range(1, self.topology.num_nodes)
            ],
            any_leaf_inconsistent_time=self._any_leaf_monitor.active_time(),
            link_transmissions=self.link_transmissions - transmissions_at_warmup,
            consistency_samples=self._series_monitor.samples(),
        )


def simulate_tree_replications(
    config: MultiHopSimConfig,
    topology: Topology,
    replications: int = 5,
) -> ReplicationSet:
    """Run independent replications; records I, message rate, mean leaf."""
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications}")
    streams = RandomStreams(config.seed)
    results = ReplicationSet()
    for index in range(replications):
        replication = config.replace(seed=streams.spawn(index).seed)
        outcome = TreeSimulation(replication, topology).run()
        results.add("inconsistency_ratio", outcome.inconsistency_ratio)
        results.add("message_rate", outcome.message_rate)
        results.add("mean_leaf_inconsistency", outcome.mean_leaf_inconsistency)
    return results
