"""The multi-hop chain simulation harness (validates §III-B).

Builds ``N`` relay nodes behind a :class:`~repro.multihop.nodes.ChainSender`,
wires them with per-hop lossy channels (forward and reverse), drives
Poisson updates, and measures:

* per-hop inconsistency — fraction of time node ``h`` disagrees with
  the sender's current value (Fig. 17);
* overall inconsistency — any hop inconsistent (Fig. 18a, eq. 12);
* per-link signaling transmissions per second (Fig. 18b).

The paper itself only simulated the single-hop system; this simulator
extends the validation to the multi-hop model.
"""

from __future__ import annotations

import dataclasses

from repro.core.protocols import Protocol
from repro.faults.schedule import LinkFlap, NodeCrash
from repro.multihop.config import MultiHopSimConfig
from repro.multihop.nodes import ChainSender, RelayNode
from repro.protocols.messages import Message
from repro.sim.channel import Channel, ChannelConfig, DeliveredMessage, GilbertElliottProcess
from repro.sim.engine import Environment
from repro.sim.monitor import StateFractionMonitor, TimeSeriesMonitor
from repro.sim.randomness import RandomStreams, Timer
from repro.sim.stats import ReplicationSet

__all__ = ["MultiHopSimResult", "MultiHopSimulation", "simulate_multihop_replications"]


@dataclasses.dataclass(frozen=True)
class MultiHopSimResult:
    """Measured outcome of one multi-hop simulation run."""

    protocol: Protocol
    hops: int
    measured_time: float
    hop_inconsistent_time: list[float]
    any_inconsistent_time: float
    link_transmissions: int
    #: Consistency indicator sampled at ``config.sample_times`` (1.0
    #: when every hop agreed with the sender at that instant).
    consistency_samples: tuple[float, ...] = ()

    @property
    def inconsistency_ratio(self) -> float:
        """Fraction of time any hop was inconsistent (eq. 12's ``I``)."""
        if self.measured_time <= 0:
            return 0.0
        return self.any_inconsistent_time / self.measured_time

    @property
    def message_rate(self) -> float:
        """Per-link transmissions per second, summed over all links."""
        if self.measured_time <= 0:
            return 0.0
        return self.link_transmissions / self.measured_time

    def hop_inconsistency(self, hop: int) -> float:
        """Fraction of time hop ``hop`` (1-based) was inconsistent."""
        if not 1 <= hop <= self.hops:
            raise ValueError(f"hop must be in [1, {self.hops}], got {hop}")
        if self.measured_time <= 0:
            return 0.0
        return self.hop_inconsistent_time[hop - 1] / self.measured_time

    def hop_profile(self) -> list[float]:
        """Per-hop inconsistency fractions, hop 1 first (Fig. 17)."""
        return [self.hop_inconsistency(h) for h in range(1, self.hops + 1)]


class MultiHopSimulation:
    """One replication of the multi-hop chain simulation."""

    def __init__(self, config: MultiHopSimConfig) -> None:
        self.config = config
        self.env = Environment()
        params = config.params
        protocol = config.protocol
        streams = RandomStreams(config.seed)
        self._workload_rng = streams.stream("workload")
        self._signal_rng = streams.stream("external-signal")
        self.link_transmissions = 0

        channel_config = ChannelConfig(
            loss_rate=params.loss_rate,
            mean_delay=params.delay,
            delay_discipline=config.delay_discipline,
        )
        # One bursty-loss process shared by every hop channel (the
        # product-chain models assume a single path-wide channel state),
        # drawing from its own named stream so enabling it never shifts
        # the per-channel loss streams.
        self._loss_process = None
        if config.gilbert is not None:
            self._loss_process = GilbertElliottProcess(
                config.gilbert.loss_good,
                config.gilbert.loss_bad,
                config.gilbert.good_to_bad,
                config.gilbert.bad_to_good,
                streams.stream("gilbert-channel"),
            )

        def timer(mean: float, key: str) -> Timer:
            return Timer(mean, config.timer_discipline, streams.stream(key))

        n = params.hops
        self.nodes: list[RelayNode] = []
        # Build back to front so each node's downstream transmit exists.
        forward_channels: list[Channel] = [None] * n  # type: ignore[list-item]
        reverse_channels: list[Channel] = [None] * n  # type: ignore[list-item]

        def make_transmit(channel_slot: list[Channel], index: int):
            def transmit(message: Message) -> None:
                self.link_transmissions += 1
                channel_slot[index].send(message)

            return transmit

        for index in range(n, 0, -1):
            is_last = index == n
            node = RelayNode(
                self.env,
                protocol,
                index=index,
                is_last=is_last,
                timeout_timer=timer(params.timeout_interval, f"timeout-{index}"),
                retransmission_timer=timer(
                    params.retransmission_interval, f"retx-{index}"
                ),
                transmit_downstream=(
                    None if is_last else make_transmit(forward_channels, index)
                ),
                transmit_upstream=make_transmit(reverse_channels, index - 1),
                on_value_change=self._make_change_hook(index),
            )
            self.nodes.insert(0, node)

        self.sender = ChainSender(
            self.env,
            protocol,
            refresh_timer=timer(params.refresh_interval, "refresh"),
            retransmission_timer=timer(params.retransmission_interval, "retx-0"),
            transmit_downstream=make_transmit(forward_channels, 0),
            on_value_change=self._on_sender_change,
        )

        # Forward channel i delivers to node i+1 (0-indexed list).
        for index in range(n):
            node = self.nodes[index]
            forward_channels[index] = Channel(
                self.env,
                channel_config,
                streams.stream(f"fwd-{index}"),
                self._make_forward_delivery(node),
                name=f"link-{index + 1}-fwd",
                loss_process=self._loss_process,
            )
            upstream_handler = (
                self.sender.on_message
                if index == 0
                else self._make_reverse_delivery(self.nodes[index - 1])
            )
            reverse_channels[index] = Channel(
                self.env,
                channel_config,
                streams.stream(f"rev-{index}"),
                (lambda handler: lambda d: handler(d.payload))(upstream_handler),
                name=f"link-{index + 1}-rev",
                loss_process=self._loss_process,
            )

        if config.faults is not None and not config.faults.is_empty:
            self._install_faults(forward_channels, reverse_channels)

        self._hop_monitors = [
            StateFractionMonitor(self.env, initial=True) for _ in range(n)
        ]
        self._any_monitor = StateFractionMonitor(self.env, initial=True)
        # Created after the fault processes so a sample scheduled at a
        # fault instant observes the post-fault state (FIFO tie-break).
        self._series_monitor = TimeSeriesMonitor(
            self.env,
            config.sample_times,
            lambda: 0.0 if self._any_monitor.active else 1.0,
        )
        self.sender.start()
        self._refresh_consistency()

        if protocol is Protocol.HS and params.external_false_signal_rate > 0:
            for node in self.nodes:
                self.env.process(
                    self._false_signal_source(node), name=f"signal-{node.index}"
                )

    # ------------------------------------------------------------------
    # Wiring helpers
    # ------------------------------------------------------------------

    def _make_forward_delivery(self, node: RelayNode):
        def deliver(delivered: DeliveredMessage) -> None:
            node.on_message_from_upstream(delivered.payload)

        return deliver

    def _make_reverse_delivery(self, node: RelayNode):
        def deliver(message: Message) -> None:
            node.on_message_from_downstream(message)

        return deliver

    def _make_change_hook(self, index: int):
        def hook() -> None:
            self._refresh_consistency()

        return hook

    # ------------------------------------------------------------------
    # Fault injection (see repro.faults.schedule)
    # ------------------------------------------------------------------

    def _install_faults(
        self,
        forward_channels: list[Channel],
        reverse_channels: list[Channel],
    ) -> None:
        faults = self.config.faults
        for flap in faults.flaps:
            channels = (
                forward_channels[flap.link - 1],
                reverse_channels[flap.link - 1],
            )
            self.env.process(
                self._flap_process(flap, channels), name=f"flap-{flap.link}"
            )
        for crash in faults.crashes:
            self.env.process(
                self._crash_process(crash, self.nodes[crash.node - 1]),
                name=f"crash-{crash.node}",
            )

    def _flap_process(self, flap: LinkFlap, channels: tuple[Channel, ...]):
        for down_at, up_at in flap.windows(self.config.horizon):
            yield self.env.timeout(down_at - self.env.now)
            for channel in channels:
                channel.down = True
            yield self.env.timeout(up_at - self.env.now)
            for channel in channels:
                channel.down = False

    def _crash_process(self, crash: NodeCrash, node: RelayNode):
        yield self.env.timeout(crash.at - self.env.now)
        node.crash()
        yield self.env.timeout(crash.restart_after)
        node.restart()

    def _on_sender_change(self) -> None:
        self._refresh_consistency()

    def _refresh_consistency(self) -> None:
        all_consistent = True
        for hop_index, node in enumerate(self.nodes):
            consistent = node.value == self.sender.value
            self._hop_monitors[hop_index].set(not consistent)
            if not consistent:
                all_consistent = False
        self._any_monitor.set(not all_consistent)

    def _false_signal_source(self, node: RelayNode):
        rate = self.config.params.external_false_signal_rate
        while True:
            yield self.env.timeout(float(self._signal_rng.exponential(1.0 / rate)))
            node.false_remove()

    def _update_workload(self):
        rate = self.config.params.update_rate
        while True:
            yield self.env.timeout(float(self._workload_rng.exponential(1.0 / rate)))
            self.sender.update()

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------

    def run(self) -> MultiHopSimResult:
        """Simulate until the horizon; measurement starts after warmup."""
        self.env.process(self._update_workload(), name="update-workload")
        if self.config.warmup > 0:
            self.env.run(until=self.config.warmup)
        for monitor in self._hop_monitors:
            monitor.reset()
        self._any_monitor.reset()
        transmissions_at_warmup = self.link_transmissions
        self.env.run(until=self.config.horizon)
        measured = self.config.horizon - self.config.warmup
        return MultiHopSimResult(
            protocol=self.config.protocol,
            hops=self.config.params.hops,
            measured_time=measured,
            hop_inconsistent_time=[m.active_time() for m in self._hop_monitors],
            any_inconsistent_time=self._any_monitor.active_time(),
            link_transmissions=self.link_transmissions - transmissions_at_warmup,
            consistency_samples=self._series_monitor.samples(),
        )


def simulate_multihop_replications(
    config: MultiHopSimConfig,
    replications: int = 5,
) -> ReplicationSet:
    """Run independent replications; records I, message rate, worst hop."""
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications}")
    streams = RandomStreams(config.seed)
    results = ReplicationSet()
    for index in range(replications):
        replication = config.replace(seed=streams.spawn(index).seed)
        outcome = MultiHopSimulation(replication).run()
        results.add("inconsistency_ratio", outcome.inconsistency_ratio)
        results.add("message_rate", outcome.message_rate)
        results.add("last_hop_inconsistency", outcome.hop_inconsistency(config.params.hops))
    return results
