"""Multi-hop chain simulation (extends the paper's validation to §III-B)."""

from repro.multihop.chain import (
    MultiHopSimResult,
    MultiHopSimulation,
    simulate_multihop_replications,
)
from repro.multihop.config import MultiHopSimConfig
from repro.multihop.nodes import ChainSender, RelayNode

__all__ = [
    "ChainSender",
    "MultiHopSimConfig",
    "MultiHopSimResult",
    "MultiHopSimulation",
    "RelayNode",
    "simulate_multihop_replications",
]
