"""Multi-hop chain and tree simulation (extends the paper's validation
to §III-B and to multicast distribution trees)."""

from repro.multihop.chain import (
    MultiHopSimResult,
    MultiHopSimulation,
    simulate_multihop_replications,
)
from repro.multihop.config import MultiHopSimConfig
from repro.multihop.nodes import ChainSender, RelayNode
from repro.multihop.tree import (
    TreeRelayNode,
    TreeSender,
    TreeSimResult,
    TreeSimulation,
    simulate_tree_replications,
)

__all__ = [
    "ChainSender",
    "MultiHopSimConfig",
    "MultiHopSimResult",
    "MultiHopSimulation",
    "RelayNode",
    "TreeRelayNode",
    "TreeSender",
    "TreeSimResult",
    "TreeSimulation",
    "simulate_tree_replications",
    "simulate_multihop_replications",
]
