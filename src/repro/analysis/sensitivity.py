"""Sensitivity of the paper's conclusions to parameter decoding.

The published PDF's parameter digits are glyph-garbled (DESIGN.md §5
documents the decoding).  This module re-checks the paper's qualitative
claims across a neighborhood of plausible decodings, so EXPERIMENTS.md
can state that no conclusion hinges on a contested digit.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Sequence

from repro.core.parameters import SignalingParameters, kazaa_defaults
from repro.core.protocols import Protocol
from repro.experiments.spec import apply_overrides
from repro.runtime import solve_singlehop_batch

__all__ = ["ClaimCheck", "check_claims", "default_claims", "plausible_decodings"]


@dataclasses.dataclass(frozen=True)
class ClaimCheck:
    """Outcome of one qualitative claim on one parameterization."""

    claim: str
    params: SignalingParameters
    holds: bool
    detail: str


def plausible_decodings() -> tuple[SignalingParameters, ...]:
    """Parameter sets spanning the ambiguous digits of the paper.

    Varies the contested values: update interval (20/30/60/90 s),
    retransmission multiple (K = 4*Delta or 5*Delta) and delay
    (30/50 ms); the uncontested values stay at their decoded defaults.
    """
    candidates = []
    for update_interval in (20.0, 30.0, 60.0, 90.0):
        for retx_multiple in (4.0, 5.0):
            for delay in (0.03, 0.05):
                # Routed through the scenario API's override validation
                # so the decoding grid and CLI `--set` share one path.
                candidates.append(
                    apply_overrides(
                        kazaa_defaults(),
                        {
                            "update_rate": 1.0 / update_interval,
                            "retransmission_interval": retx_multiple * delay,
                            "delay": delay,
                        },
                    )
                )
    return tuple(candidates)


def default_claims() -> dict[str, Callable[[dict[Protocol, object]], tuple[bool, str]]]:
    """The paper's headline qualitative claims as checkable predicates."""

    def inconsistency(solutions, protocol):
        return solutions[protocol].inconsistency_ratio

    def message_rate(solutions, protocol):
        return solutions[protocol].normalized_message_rate

    def claim_er_improves(solutions):
        ss = inconsistency(solutions, Protocol.SS)
        er = inconsistency(solutions, Protocol.SS_ER)
        return er < ss, f"I(SS+ER)={er:.4g} < I(SS)={ss:.4g}"

    def claim_er_cheap(solutions):
        ss = message_rate(solutions, Protocol.SS)
        er = message_rate(solutions, Protocol.SS_ER)
        overhead = (er - ss) / ss if ss > 0 else float("inf")
        return overhead < 0.05, f"M overhead of ER over SS = {overhead:.2%}"

    def claim_rtr_comparable_hs(solutions):
        rtr = inconsistency(solutions, Protocol.SS_RTR)
        hs = inconsistency(solutions, Protocol.HS)
        ratio = rtr / hs if hs > 0 else float("inf")
        return ratio < 1.5, f"I(SS+RTR)/I(HS) = {ratio:.3g}"

    def claim_rt_costs_more(solutions):
        ss = message_rate(solutions, Protocol.SS)
        rt = message_rate(solutions, Protocol.SS_RT)
        return rt > ss, f"M(SS+RT)={rt:.4g} > M(SS)={ss:.4g}"

    def claim_hs_cheapest(solutions):
        hs = message_rate(solutions, Protocol.HS)
        others = min(
            message_rate(solutions, p) for p in Protocol if p is not Protocol.HS
        )
        return hs < others, f"M(HS)={hs:.4g} < min(others)={others:.4g}"

    return {
        "explicit removal improves consistency": claim_er_improves,
        "explicit removal adds <5% message overhead": claim_er_cheap,
        "SS+RTR achieves HS-comparable consistency": claim_rtr_comparable_hs,
        "reliable triggers cost extra messages": claim_rt_costs_more,
        "HS has the lowest message overhead": claim_hs_cheapest,
    }


def check_claims(
    parameterizations: Sequence[SignalingParameters] | None = None,
    claims: dict[str, Callable] | None = None,
    jobs: int | None = None,
) -> list[ClaimCheck]:
    """Evaluate every claim on every parameterization.

    The whole grid is one flat batch of ``(protocol, params)`` points:
    the runtime dedupes repeats through the memo cache and solves the
    misses through the compiled-template fast path (fanned across
    workers when ``jobs > 1``).  The (cheap, unpicklable) claim
    predicates run in the parent, in grid order, so the report is
    deterministic.
    """
    parameterizations = tuple(parameterizations or plausible_decodings())
    claims = claims or default_claims()
    protocols = tuple(Protocol)
    tasks = [
        (protocol, params) for params in parameterizations for protocol in protocols
    ]
    solutions = solve_singlehop_batch(tasks, jobs=jobs)
    suites = [
        dict(zip(protocols, solutions[i * len(protocols) : (i + 1) * len(protocols)]))
        for i in range(len(parameterizations))
    ]
    checks: list[ClaimCheck] = []
    for params, solutions in zip(parameterizations, suites):
        for name, predicate in claims.items():
            holds, detail = predicate(solutions)
            checks.append(ClaimCheck(claim=name, params=params, holds=holds, detail=detail))
    return checks


def robustness_report(
    checks: Sequence[ClaimCheck] | None = None, jobs: int | None = None
) -> str:
    """Summarize how many parameterizations support each claim."""
    checks = checks if checks is not None else check_claims(jobs=jobs)
    by_claim: dict[str, list[ClaimCheck]] = {}
    for check in checks:
        by_claim.setdefault(check.claim, []).append(check)
    lines = ["Claim robustness across plausible parameter decodings:"]
    for claim, group in by_claim.items():
        supported = sum(1 for c in group if c.holds)
        lines.append(f"  {supported}/{len(group)}  {claim}")
        for failing in (c for c in group if not c.holds):
            lines.append(
                f"      fails at 1/lambda_u={1 / failing.params.update_rate:.0f}s, "
                f"K={failing.params.retransmission_interval:.2f}s, "
                f"Delta={failing.params.delay * 1000:.0f}ms: {failing.detail}"
            )
    return "\n".join(lines)
