"""Extensions beyond the paper's figures: optimization, sensitivity, NACK."""

from repro.analysis.nack import (
    NackSimulation,
    equivalent_ss_rt_params,
    simulate_nack_replications,
)
from repro.analysis.optimizer import (
    OptimalTimers,
    optimize_refresh_timer,
    optimize_timers_jointly,
)
from repro.analysis.sensitivity import (
    ClaimCheck,
    check_claims,
    default_claims,
    plausible_decodings,
    robustness_report,
)
from repro.analysis.staged_timers import (
    StagedRefreshConfig,
    StagedRefreshSimulation,
    compare_staged_refresh,
)

__all__ = [
    "ClaimCheck",
    "NackSimulation",
    "OptimalTimers",
    "StagedRefreshConfig",
    "StagedRefreshSimulation",
    "check_claims",
    "compare_staged_refresh",
    "default_claims",
    "equivalent_ss_rt_params",
    "optimize_refresh_timer",
    "optimize_timers_jointly",
    "plausible_decodings",
    "robustness_report",
    "simulate_nack_replications",
]
