"""Timer optimization: find the cost-optimal operating point.

Fig. 7 of the paper shows that SS and SS+RT have "relatively sensitive
optimal operating points" in the refresh timer.  This module makes the
optimum a first-class object: golden-section search (scipy) over
``log R`` for the integrated cost ``C = w*I + M``, plus a joint
``(R, T)`` grid refinement for protocols whose timeout matters.
"""

from __future__ import annotations

import dataclasses
import math

from scipy import optimize as _scipy_optimize

from repro.core.parameters import SignalingParameters
from repro.core.protocols import Protocol
from repro.core.singlehop import SingleHopModel

__all__ = ["OptimalTimers", "optimize_refresh_timer", "optimize_timers_jointly"]


@dataclasses.dataclass(frozen=True)
class OptimalTimers:
    """Result of a timer optimization."""

    protocol: Protocol
    refresh_interval: float
    timeout_interval: float
    cost: float
    weight: float

    @property
    def timeout_multiple(self) -> float:
        """``T / R`` at the optimum."""
        return self.timeout_interval / self.refresh_interval


def _cost_at(
    protocol: Protocol,
    params: SignalingParameters,
    refresh: float,
    timeout_multiple: float,
    weight: float,
) -> float:
    candidate = params.replace(
        refresh_interval=refresh, timeout_interval=timeout_multiple * refresh
    )
    return SingleHopModel(protocol, candidate).solve().integrated_cost(weight)


def optimize_refresh_timer(
    protocol: Protocol,
    params: SignalingParameters,
    weight: float = 10.0,
    timeout_multiple: float = 3.0,
    bounds: tuple[float, float] = (0.05, 500.0),
) -> OptimalTimers:
    """Minimize ``C(R)`` with ``T = timeout_multiple * R`` fixed.

    The search runs in log space (the cost surface spans decades).
    """
    if bounds[0] <= 0 or bounds[1] <= bounds[0]:
        raise ValueError(f"invalid bounds {bounds!r}")
    log_bounds = (math.log(bounds[0]), math.log(bounds[1]))

    def objective(log_refresh: float) -> float:
        return _cost_at(protocol, params, math.exp(log_refresh), timeout_multiple, weight)

    outcome = _scipy_optimize.minimize_scalar(
        objective, bounds=log_bounds, method="bounded"
    )
    refresh = float(math.exp(outcome.x))
    # Guard against boundary optima (HS is flat in R, for instance):
    # compare against the bound endpoints explicitly.
    candidates = [refresh, bounds[0], bounds[1]]
    best = min(
        candidates,
        key=lambda r: _cost_at(protocol, params, r, timeout_multiple, weight),
    )
    return OptimalTimers(
        protocol=protocol,
        refresh_interval=best,
        timeout_interval=timeout_multiple * best,
        cost=_cost_at(protocol, params, best, timeout_multiple, weight),
        weight=weight,
    )


def optimize_timers_jointly(
    protocol: Protocol,
    params: SignalingParameters,
    weight: float = 10.0,
    refresh_bounds: tuple[float, float] = (0.05, 500.0),
    multiple_candidates: tuple[float, ...] = (1.25, 1.5, 2.0, 3.0, 5.0, 10.0, 30.0),
) -> OptimalTimers:
    """Optimize ``R`` for each candidate ``T/R`` and keep the best pair.

    Captures the paper's Fig. 8(a) observations: SS/SS+ER prefer
    ``T ~ 2R``, SS+RT prefers ``T`` just above ``R``, SS+RTR prefers
    long timeouts.
    """
    best: OptimalTimers | None = None
    for multiple in multiple_candidates:
        candidate = optimize_refresh_timer(
            protocol, params, weight, timeout_multiple=multiple, bounds=refresh_bounds
        )
        if best is None or candidate.cost < best.cost:
            best = candidate
    assert best is not None  # multiple_candidates is never empty
    return best
