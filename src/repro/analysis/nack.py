"""SS+NACK — the Raman & McCanne style receiver-driven reliability.

Related work (paper §IV) discusses Raman & McCanne's soft-state
framework in which "a NACK message is sent by the receiver when a
signaling message is detected to be lost", with the idealization that
the receiver learns of the loss immediately.  The paper maps that
design onto its SS+RT protocol.  This module implements the NACK
variant directly on our simulator so the mapping can be *measured*
rather than asserted:

* the lossy channel exposes a loss-detection hook (the idealized
  "receiver knows a message was lost" signal, delivered one channel
  delay after the drop);
* on detection, the receiver NACKs; the sender answers by resending
  its current state (trigger) or removal;
* everything else is pure SS.

Expectation (tested): SS+NACK behaves like SS+RT with an effective
retransmission timer ``K ~ 2*Delta`` — one delay for the loss signal,
one for the NACK trip — so its inconsistency falls between SS+RT with
``K = 2*Delta`` and SS.
"""

from __future__ import annotations

import dataclasses

from repro.core.parameters import SignalingParameters
from repro.core.protocols import Protocol
from repro.protocols.config import SingleHopSimConfig
from repro.protocols.messages import Message, MessageKind
from repro.protocols.session import SingleHopSimResult, SingleHopSimulation
from repro.sim.randomness import RandomStreams
from repro.sim.stats import ReplicationSet

__all__ = ["NackSimulation", "equivalent_ss_rt_params", "simulate_nack_replications"]


def equivalent_ss_rt_params(params: SignalingParameters) -> SignalingParameters:
    """The SS+RT parameterization the paper equates with SS+NACK.

    The NACK loop detects a loss after ``Delta`` and repairs it one
    round trip later, so the matching SS+RT retransmission timer is
    ``K = 2*Delta``.
    """
    return params.replace(retransmission_interval=2.0 * params.delay)


class NackSimulation(SingleHopSimulation):
    """Pure soft state plus receiver-driven NACK repair."""

    def __init__(self, config: SingleHopSimConfig) -> None:
        if config.protocol is not Protocol.SS:
            raise ValueError("the NACK extension augments the pure SS protocol")
        super().__init__(config)
        self.nacks_sent = 0
        self.nack_repairs = 0
        # Attach the idealized loss-detection hook to the forward channel.
        self._forward._on_loss = self._on_forward_loss

    def _on_forward_loss(self, lost_message: Message) -> None:
        # The receiver has just learned that a state-carrying or removal
        # message never arrived; ask the sender to repeat itself.
        self.nacks_sent += 1
        self._transmit(self._reverse, Message(MessageKind.NOTIFY, lost_message.version))

    def _deliver_to_sender(self, delivered) -> None:  # type: ignore[override]
        message = delivered.payload
        if message.kind is MessageKind.NOTIFY:
            # NACK: repeat current intent instead of the normal NOTIFY
            # handling (SS has no removal-notification machinery).
            self.nack_repairs += 1
            if self.sender.value is not None:
                self._transmit(
                    self._forward,
                    Message(
                        MessageKind.TRIGGER,
                        self.sender.version,
                        self.sender.value,
                        retransmission=True,
                    ),
                )
            # A lost removal needs no repair under SS: the receiver's
            # state-timeout clears it, exactly as in the base protocol.
            return
        super()._deliver_to_sender(delivered)


@dataclasses.dataclass(frozen=True)
class NackRunSummary:
    """Replicated SS+NACK results alongside the base-SS comparison."""

    nack: ReplicationSet
    base_ss: ReplicationSet

    def improvement(self) -> float:
        """Relative reduction in inconsistency over pure SS."""
        base = self.base_ss.mean("inconsistency_ratio")
        nack = self.nack.mean("inconsistency_ratio")
        if base == 0:
            return 0.0
        return (base - nack) / base


def simulate_nack_replications(
    params: SignalingParameters,
    sessions: int = 200,
    replications: int = 5,
    seed: int = 1999,
) -> NackRunSummary:
    """Run SS+NACK and pure SS side by side (shared seeds)."""
    streams = RandomStreams(seed)
    nack_set = ReplicationSet()
    ss_set = ReplicationSet()
    for index in range(replications):
        config = SingleHopSimConfig(
            protocol=Protocol.SS,
            params=params,
            sessions=sessions,
            seed=streams.spawn(index).seed,
        )
        nack_result: SingleHopSimResult = NackSimulation(config).run()
        ss_result = SingleHopSimulation(config).run()
        for target, outcome in ((nack_set, nack_result), (ss_set, ss_result)):
            target.add("inconsistency_ratio", outcome.inconsistency_ratio)
            target.add(
                "normalized_message_rate",
                outcome.normalized_message_rate(params.removal_rate),
            )
    return NackRunSummary(nack=nack_set, base_ss=ss_set)
