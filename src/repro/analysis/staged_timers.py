"""Staged refresh timers (Pan & Schulzrinne, related work [12]).

The paper's §IV cites a scheme that "use[s] different soft-state timers
for trigger and refresh messages": right after a trigger, refreshes are
sent on a short stage-one timer (so a lost trigger is repaired fast),
then the sender backs off to the normal refresh interval once the state
has presumably been delivered.  This recovers much of SS+RT's
trigger-loss protection *without* ACKs or receiver changes.

This module implements the staged sender on the simulator and a
side-by-side evaluation against pure SS and SS+RT.
"""

from __future__ import annotations

import dataclasses

from repro.core.parameters import SignalingParameters
from repro.core.protocols import Protocol
from repro.protocols.config import SingleHopSimConfig
from repro.protocols.messages import Message, MessageKind
from repro.protocols.sender import SignalingSender
from repro.protocols.session import SingleHopSimulation
from repro.sim.engine import Interrupt
from repro.sim.randomness import RandomStreams
from repro.sim.stats import ReplicationSet

__all__ = [
    "StagedRefreshConfig",
    "StagedRefreshSender",
    "StagedRefreshSimulation",
    "compare_staged_refresh",
]


@dataclasses.dataclass(frozen=True)
class StagedRefreshConfig:
    """Stage-one (post-trigger) refresh behavior."""

    fast_interval: float
    fast_count: int = 2

    def __post_init__(self) -> None:
        if self.fast_interval <= 0:
            raise ValueError(f"fast_interval must be positive, got {self.fast_interval}")
        if self.fast_count < 1:
            raise ValueError(f"fast_count must be >= 1, got {self.fast_count}")


class StagedRefreshSender(SignalingSender):
    """SS sender whose first refreshes after a trigger run on a fast timer."""

    def __init__(self, *args, staged: StagedRefreshConfig, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.staged = staged

    def _refresh_loop(self):
        try:
            stage_one_remaining = self.staged.fast_count
            while self.value is not None:
                if stage_one_remaining > 0:
                    yield self.env.timeout(self.staged.fast_interval)
                    stage_one_remaining -= 1
                else:
                    yield self.env.timeout(self._refresh_timer.draw())
                if self.value is None:
                    return
                self._transmit(Message(MessageKind.REFRESH, self.version, self.value))
        except Interrupt:
            return


class StagedRefreshSimulation(SingleHopSimulation):
    """The single-hop harness with the staged sender swapped in.

    The receiver is unchanged — staging is sender-only, which is the
    scheme's deployment appeal.
    """

    def __init__(self, config: SingleHopSimConfig, staged: StagedRefreshConfig) -> None:
        if config.protocol is not Protocol.SS:
            raise ValueError("staged refresh augments the pure SS protocol")
        super().__init__(config)
        # Rebuild the sender as the staged variant, reusing the wiring.
        base = self.sender
        self.sender = StagedRefreshSender(
            self.env,
            config.protocol,
            config.params,
            refresh_timer=base._refresh_timer,
            retransmission_timer=base._retx_timer,
            transmit=base._transmit,
            on_value_change=self._update_consistency,
            staged=staged,
        )


@dataclasses.dataclass(frozen=True)
class StagedComparison:
    """Replicated results of staged SS vs its neighbors on the spectrum."""

    staged: ReplicationSet
    plain_ss: ReplicationSet

    def inconsistency_improvement(self) -> float:
        """Relative inconsistency reduction of staging over plain SS."""
        base = self.plain_ss.mean("inconsistency_ratio")
        if base == 0:
            return 0.0
        return (base - self.staged.mean("inconsistency_ratio")) / base

    def overhead_increase(self) -> float:
        """Relative message-rate increase of staging over plain SS."""
        base = self.plain_ss.mean("normalized_message_rate")
        if base == 0:
            return 0.0
        return (self.staged.mean("normalized_message_rate") - base) / base


def compare_staged_refresh(
    params: SignalingParameters,
    staged: StagedRefreshConfig | None = None,
    sessions: int = 200,
    replications: int = 4,
    seed: int = 1203,
) -> StagedComparison:
    """Run staged SS and plain SS with shared seeds."""
    staged = staged or StagedRefreshConfig(fast_interval=2.0 * params.delay)
    streams = RandomStreams(seed)
    staged_set = ReplicationSet()
    plain_set = ReplicationSet()
    for index in range(replications):
        config = SingleHopSimConfig(
            protocol=Protocol.SS,
            params=params,
            sessions=sessions,
            seed=streams.spawn(index).seed,
        )
        staged_result = StagedRefreshSimulation(config, staged).run()
        plain_result = SingleHopSimulation(config).run()
        for target, outcome in ((staged_set, staged_result), (plain_set, plain_result)):
            target.add("inconsistency_ratio", outcome.inconsistency_ratio)
            target.add(
                "normalized_message_rate",
                outcome.normalized_message_rate(params.removal_rate),
            )
    return StagedComparison(staged=staged_set, plain_ss=plain_set)
