"""Public library facade.

The stable, importable surface for driving the reproduction as a
library — scenario execution, ad-hoc parameter sweeps, single solves
and validation — without reaching into the experiment/runtime
internals:

>>> import repro.api as api
>>> result = api.run_scenario("fig4", fidelity="smoke")
>>> result.provenance.fidelity
'smoke'

Everything routes through the :mod:`repro.runtime` batch path, so
results are memo-cached, solved through compiled chain templates and
(with ``jobs``) fanned across worker processes.  The re-exported
:class:`~repro.core.multihop.topology.Topology` builds the rooted
trees that :func:`solve_tree` and the tree scenarios consume.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.core.multihop import MultiHopSolution
from repro.core.multihop.topology import Topology
from repro.core.multihop.tree_model import TreeSolution
from repro.core.parameters import (
    MultiHopParameters,
    SignalingParameters,
    kazaa_defaults,
    reservation_defaults,
)
from repro.core.protocols import Protocol
from repro.core.singlehop import SingleHopSolution
from repro.experiments import run_scenario
from repro.experiments.common import (
    ALL_PROTOCOLS,
    MULTIHOP_PROTOCOLS,
    multihop_metric_series,
    singlehop_metric_series,
)
from repro.experiments.runner import ExperimentResult, Series  # noqa: F401 - re-export
from repro.experiments.spec import (
    ScenarioSpec,
    apply_overrides,
    metric as _metric,
    parse_protocols,
    scenario_ids,
    scenarios,
)
from repro.runtime import solve_multihop_batch, solve_singlehop_batch, solve_tree_batch
from repro.validation import ValidationReport  # noqa: F401 - re-export
from repro.validation import validate_scenario as _validate_scenario

__all__ = [
    "Topology",
    "list_scenarios",
    "run_scenario",
    "solve_multihop",
    "solve_singlehop",
    "solve_tree",
    "sweep",
    "validate_scenario",
]


def list_scenarios() -> tuple[ScenarioSpec, ...]:
    """Every registered scenario spec, sorted by id.

    The registry holds one spec per paper artifact — ``fig4`` ...
    ``fig12``, ``fig17`` ... ``fig19``, ``table1`` — plus the
    beyond-the-paper studies: ``scaling`` (heterogeneous chains up to
    128 hops), the tree-topology scenarios ``tree_depth``,
    ``tree_fanout``, ``tree_deep`` and ``tree_wide`` (multicast
    fan-out over star/broom/binary/ternary/skewed trees; the latter
    two reach past the direct enumeration cap via the lumped and
    iterative backends), and the fault-injection scenarios ``burst_loss``,
    ``burst_loss_hops`` and ``link_flap`` (Gilbert-Elliott bursty loss
    and link churn; see ``docs/robustness.md``), and the transient
    recovery scenarios ``time_to_consistency``, ``recovery_flap`` and
    ``recovery_crash`` (uniformization-based consistency-over-time
    curves; see ``docs/transient.md``).  The same ids drive the CLI's
    ``run``/``validate`` verbs and ``repro-signaling all``, so
    registry, docs and CLI stay consistent:

    >>> import repro.api as api
    >>> [spec.scenario_id for spec in api.list_scenarios()]
    ... # doctest: +NORMALIZE_WHITESPACE
    ['burst_loss', 'burst_loss_hops', 'fig10', 'fig11', 'fig12',
     'fig17', 'fig18', 'fig19', 'fig4', 'fig5', 'fig6', 'fig7',
     'fig8', 'fig9', 'link_flap', 'recovery_crash', 'recovery_flap',
     'scaling', 'table1', 'time_to_consistency',
     'tree_deep', 'tree_depth', 'tree_fanout', 'tree_wide']
    >>> api.list_scenarios()[0].fidelity_names()
    ('full', 'fast', 'smoke')
    """
    registry = scenarios()
    return tuple(registry[scenario_id] for scenario_id in scenario_ids())


def validate_scenario(
    scenario: str | ScenarioSpec,
    fidelity: str = "smoke",
    *,
    jobs: int | None = None,
    seed: int | None = None,
) -> ValidationReport:
    """Run one scenario's validation plan and return the report.

    The plan is derived from the scenario spec (see
    :mod:`repro.validation`): artifact round-trip and finiteness
    checks, base-point invariants, the backend parity matrix for the
    scenario's model family, and — for scenarios with a
    :class:`~repro.experiments.spec.SimPlan` — Student-t equivalence of
    the replicated simulations against the analytic predictions.
    ``report.passed`` aggregates every check;
    ``report.to_json()``/``to_text()`` render the artifact:

    >>> import repro.api as api
    >>> report = api.validate_scenario("tree_fanout", fidelity="smoke")
    >>> report.passed
    True
    >>> report.check("tree SS: unary==chain").kind
    'parity'
    """
    return _validate_scenario(scenario, fidelity, jobs=jobs, seed=seed)


def solve_singlehop(
    protocol: Protocol | str,
    params: SignalingParameters | None = None,
    **overrides: float,
) -> SingleHopSolution:
    """Solve one single-hop point on the Kazaa defaults.

    ``overrides`` replace preset fields (validated), e.g.
    ``solve_singlehop("ss+er", loss_rate=0.05)``:

    >>> import repro.api as api
    >>> solution = api.solve_singlehop("ss+er", loss_rate=0.05)
    >>> 0.0 < solution.inconsistency_ratio < 1.0
    True
    >>> solution.expected_receiver_lifetime > 0.0
    True
    """
    (protocol,) = parse_protocols([protocol])
    base = params if params is not None else kazaa_defaults()
    if overrides:
        base = apply_overrides(base, overrides)
    return solve_singlehop_batch([(protocol, base)])[0]


def solve_multihop(
    protocol: Protocol | str,
    params: MultiHopParameters | None = None,
    **overrides: float,
) -> MultiHopSolution:
    """Solve one multi-hop point on the reservation defaults.

    ``overrides`` replace preset fields (validated), e.g.
    ``solve_multihop("hs", hops=30)``:

    >>> import repro.api as api
    >>> solution = api.solve_multihop("hs", hops=30)
    >>> solution.params.hops
    30
    >>> len(solution.hop_profile())
    30
    """
    (protocol,) = parse_protocols([protocol])
    base = params if params is not None else reservation_defaults()
    if overrides:
        base = apply_overrides(base, overrides)
    return solve_multihop_batch([(protocol, base)])[0]


def solve_tree(
    protocol: Protocol | str,
    topology: Topology,
    params: MultiHopParameters | None = None,
    backend: str = "auto",
    **overrides: float,
) -> TreeSolution:
    """Solve one tree (multicast) point on the reservation defaults.

    ``topology`` is a rooted :class:`Topology` (``Topology.chain``,
    ``star``, ``kary``, ``broom``, ``skewed``); ``params.hops`` is
    bound to its edge count automatically.  ``backend`` picks the solve
    path — ``"auto"`` (route by projected state count), ``"direct"``
    (exact enumeration, bit-parity class), ``"lumped"`` (exact orbit
    lumping of isomorphic sibling subtrees) or ``"iterative"``
    (ILU/GMRES on the raw space); symmetric topologies far beyond the
    direct cap, e.g. ``Topology.kary(2, 3)`` with 15129 raw states,
    solve exactly through the lumped route.  ``overrides`` replace the
    remaining preset fields:

    >>> import repro.api as api
    >>> solution = api.solve_tree("ss", api.Topology.kary(2, 2))
    >>> len(solution.leaf_profile())
    4
    >>> 0.0 < solution.fanout_weighted_inconsistency < 1.0
    True

    A fan-out-1 (chain) topology reproduces :func:`solve_multihop`
    bit for bit:

    >>> tree = api.solve_tree("ss", api.Topology.chain(5))
    >>> tree.inconsistency_ratio == api.solve_multihop("ss", hops=5).inconsistency_ratio
    True
    """
    (protocol,) = parse_protocols([protocol])
    base = params if params is not None else reservation_defaults()
    if overrides:
        base = apply_overrides(base, overrides)
    base = base.replace(hops=topology.num_edges)
    return solve_tree_batch([(protocol, base, topology, backend)])[0]


def sweep(
    param: str,
    values: Sequence[float],
    *,
    metric: str | Callable = "inconsistency_ratio",
    protocols: Sequence[Protocol | str] | str | None = None,
    base: SignalingParameters | MultiHopParameters | None = None,
    multihop: bool = False,
    jobs: int | None = None,
) -> list[Series]:
    """Sweep one parameter field; one series per protocol.

    ``param`` names a field of the base preset (validated per point, so
    typos and out-of-range values fail loudly); ``metric`` is a
    registered metric name or a ``solution -> float`` callable.  Set
    ``multihop=True`` to sweep the multi-hop model on the reservation
    defaults instead of the single-hop Kazaa defaults:

    >>> import repro.api as api
    >>> series = api.sweep("loss_rate", (0.0, 0.05, 0.1), protocols="ss,hs")
    >>> [s.label for s in series]
    ['SS', 'HS']
    >>> series[0].x
    (0.0, 0.05, 0.1)
    """
    if base is None:
        base = reservation_defaults() if multihop else kazaa_defaults()
    if protocols is None:
        selected = MULTIHOP_PROTOCOLS if multihop else ALL_PROTOCOLS
    else:
        selected = parse_protocols(protocols)
    metric_fn = _metric(metric) if isinstance(metric, str) else metric
    make = lambda x: apply_overrides(base, {param: x})  # noqa: E731
    series_fn = multihop_metric_series if multihop else singlehop_metric_series
    return series_fn(tuple(values), make, metric_fn, protocols=selected, jobs=jobs)
