"""Transient analysis: how fast does consistency establish after setup?

The paper reports only stationary quantities.  This extension computes
the *time-dependent* state distribution of the single-hop chain,
answering questions the stationary metrics cannot:

* the probability the receiver is consistent ``t`` seconds after a
  setup or update;
* the time to reach a target consistency probability (e.g. "when is
  the state 99% likely to be installed?") — the signaling analogue of
  a convergence-time SLO.

The numerics run through the uniformization kernel
(:mod:`repro.core.uniformization`): one Poisson-weighted power
iteration covers the whole time grid, works on the sparse generator,
and detects steady state early — unlike the original implementation,
which built one dense ``expm(Q t)`` per grid point.  ``expm`` remains
the oracle these results are tested against (see
``tests/core/test_uniformization.py`` and the tolerance classification
in ``docs/architecture.md``).
"""

from __future__ import annotations

import bisect
from collections.abc import Sequence

import numpy as np

from repro.core.markov import ContinuousTimeMarkovChain
from repro.core.singlehop.model import SingleHopModel
from repro.core.singlehop.states import SingleHopState as S
from repro.core.uniformization import uniformized_transient

__all__ = [
    "consistency_probability",
    "time_to_consistency",
    "transient_distribution",
]


def transient_distribution(
    chain: ContinuousTimeMarkovChain,
    start,
    times: Sequence[float],
) -> list[dict]:
    """State distribution at each time, starting deterministically.

    Returns one ``{state: probability}`` dict per entry of ``times``.
    """
    if any(t < 0 for t in times):
        raise ValueError("times must be non-negative")
    states = chain.states
    if start not in states:
        raise ValueError(f"unknown start state {start!r}")
    initial = np.zeros(len(states))
    initial[states.index(start)] = 1.0
    result = uniformized_transient(chain, initial, times)
    return [
        {state: float(p) for state, p in zip(states, row)}
        for row in result.probabilities
    ]


def consistency_probability(
    model: SingleHopModel,
    times: Sequence[float],
) -> list[float]:
    """P(sender and receiver consistent at time t after state setup).

    Uses the transient (absorbing) chain started at ``(1,0)_1`` — the
    moment the first trigger leaves the sender.
    """
    distributions = transient_distribution(
        model.transient_chain(), S.S10_FAST, times
    )
    return [d[S.CONSISTENT] for d in distributions]


def time_to_consistency(
    model: SingleHopModel,
    target: float = 0.99,
    horizon: float | None = None,
    resolution: int = 512,
) -> float:
    """Earliest time at which P(consistent) first reaches ``target``.

    Searches a geometric time grid up to ``horizon`` (default: ten
    refresh intervals past the mean setup delay) and refines by
    bisection on the winning interval.  Returns ``inf`` when the target
    is never reached on the horizon — which happens for aggressive
    targets, since consistency probability is bounded away from 1 by
    updates and removals.
    """
    if not 0.0 < target < 1.0:
        raise ValueError(f"target must be in (0, 1), got {target}")
    params = model.params
    if horizon is None:
        horizon = params.delay + 10.0 * params.refresh_interval
    grid = np.geomspace(params.delay / 10.0, horizon, resolution)
    probabilities = consistency_probability(model, list(grid))
    index = bisect.bisect_left(
        [0 if p < target else 1 for p in probabilities], 1
    )
    if index >= len(grid):
        return float("inf")
    if index == 0:
        return float(grid[0])
    # Bisection refinement between the bracketing grid points.
    low, high = float(grid[index - 1]), float(grid[index])
    for _ in range(30):
        mid = 0.5 * (low + high)
        if consistency_probability(model, [mid])[0] >= target:
            high = mid
        else:
            low = mid
    return high
