"""Uniformization: transient CTMC distributions without ``expm``.

Uniformization (Jensen's method) rewrites the transient solution of a
CTMC with generator ``Q`` as a Poisson-weighted power series of the
discrete-time operator ``P = I + Q / Lambda``:

.. math::

   \\pi(t) = \\sum_{k \\ge 0} e^{-\\Lambda t}
             \\frac{(\\Lambda t)^k}{k!} \\; \\pi(0) P^k

where ``Lambda`` is any rate no smaller than the largest exit rate, so
``P`` is a proper stochastic matrix.  Two properties make this the
right engine for recovery curves:

* **one pass covers a whole time grid** — the vectors ``pi(0) P^k``
  are shared by every ``t``; only the Poisson weights differ, so a
  curve over ``|times|`` points costs one power iteration, not
  ``|times|`` matrix exponentials;
* **it never materializes** ``expm(Q t)`` — the iteration is plain
  vector-matrix products, so it runs on the sparse CSR generator
  above :data:`~repro.core.markov.SPARSE_STATE_THRESHOLD` states.

The truncation point adapts to the grid: the series stops once the
accumulated Poisson mass reaches ``1 - rel_tol`` for every requested
time.  Independently, a **steady-state detector** watches the power
iteration itself: once ``pi(0) P^k`` stops moving (L1 change below
``steady_state_tol``), every remaining term equals the fixed point, so
the unaccumulated tail mass is assigned in closed form and the
iteration exits early — the largest win on grids whose horizon spans
many mixing times.

Poisson weights are evaluated in log space
(``exp(k ln(Lambda t) - Lambda t - ln k!)``) so large ``Lambda t``
never underflows the leading terms.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Sequence

import numpy as np
from scipy.special import gammaln as _gammaln

from repro.core.markov import (
    SPARSE_STATE_THRESHOLD,
    ContinuousTimeMarkovChain,
    _sparse_modules,
)

__all__ = [
    "DEFAULT_REL_TOL",
    "DEFAULT_STEADY_STATE_TOL",
    "UniformizedTransient",
    "uniformized_transient",
]

#: Poisson tail mass left untruncated by default (per grid time).
DEFAULT_REL_TOL = 1e-12

#: L1 movement of ``pi(0) P^k`` below which the power iteration is
#: declared stationary and the remaining tail assigned in closed form.
DEFAULT_STEADY_STATE_TOL = 1e-12


@dataclasses.dataclass(frozen=True)
class UniformizedTransient:
    """The kernel's output: row-per-time distributions plus diagnostics.

    ``probabilities[i]`` is the state distribution at ``times[i]`` in
    the chain's state order, clipped to ``[0, 1]`` and renormalized.
    ``iterations`` counts the powers of ``P`` actually formed;
    ``steady_state_detected`` records whether the early exit fired.
    """

    times: tuple[float, ...]
    probabilities: np.ndarray
    iterations: int
    steady_state_detected: bool
    uniformization_rate: float


def _poisson_weights(k: int, rate_times: np.ndarray, log_rate_times: np.ndarray) -> np.ndarray:
    """``Poisson(Lambda t; k)`` for every grid time, in log space.

    ``rate_times`` entries of 0 get weight 1 at ``k=0`` and 0 beyond
    (the distribution at ``t=0`` is exactly the initial vector).
    """
    positive = rate_times > 0.0
    weights = np.zeros_like(rate_times)
    if k == 0:
        weights[~positive] = 1.0
    weights[positive] = np.exp(
        k * log_rate_times[positive] - rate_times[positive] - _gammaln(k + 1)
    )
    return weights


def _transition_operator(chain: ContinuousTimeMarkovChain, rate: float):
    """``P^T = (I + Q/Lambda)^T`` as a dense array or CSR matrix.

    The transpose lets the power iteration run as ``P^T v`` (a plain
    matrix-vector product) instead of the row-vector form ``v P``.
    """
    n = len(chain.states)
    sparse = n >= SPARSE_STATE_THRESHOLD and _sparse_modules() is not None
    if sparse:
        sparse_mod, _ = _sparse_modules()
        q = chain.sparse_generator_matrix()
        operator = (sparse_mod.identity(n, format="csr") + q / rate).transpose()
        return operator.tocsr()
    return (np.eye(n) + chain.generator_matrix() / rate).T


def uniformized_transient(
    chain: ContinuousTimeMarkovChain,
    initial: np.ndarray,
    times: Sequence[float],
    rel_tol: float = DEFAULT_REL_TOL,
    steady_state_tol: float = DEFAULT_STEADY_STATE_TOL,
) -> UniformizedTransient:
    """Transient distributions of ``chain`` on a whole time grid.

    ``initial`` is a probability vector over ``chain.states`` (summing
    to 1).  Returns one distribution row per entry of ``times``; the
    grid need not be sorted and may repeat values.
    """
    n = len(chain.states)
    initial = np.asarray(initial, dtype=float)
    if initial.shape != (n,):
        raise ValueError(
            f"initial distribution has shape {initial.shape}, expected ({n},)"
        )
    if np.any(initial < 0) or not math.isclose(float(initial.sum()), 1.0, abs_tol=1e-9):
        raise ValueError("initial must be a probability distribution over the states")
    times_array = np.asarray(list(times), dtype=float)
    if times_array.size and (np.any(times_array < 0) or not np.all(np.isfinite(times_array))):
        raise ValueError("times must be finite and non-negative")
    if not 0.0 < rel_tol < 1.0:
        raise ValueError(f"rel_tol must be in (0, 1), got {rel_tol}")

    rate = max(chain._exit_rates, default=0.0)
    if times_array.size == 0:
        return UniformizedTransient(
            times=(),
            probabilities=np.zeros((0, n)),
            iterations=0,
            steady_state_detected=False,
            uniformization_rate=rate,
        )
    if rate == 0.0:
        # No transitions anywhere: the distribution never moves.
        return UniformizedTransient(
            times=tuple(float(t) for t in times_array),
            probabilities=np.tile(initial, (times_array.size, 1)),
            iterations=0,
            steady_state_detected=True,
            uniformization_rate=rate,
        )

    operator = _transition_operator(chain, rate)
    rate_times = rate * times_array
    with np.errstate(divide="ignore"):
        log_rate_times = np.log(rate_times)

    output = np.zeros((times_array.size, n))
    accumulated = np.zeros(times_array.size)
    # Truncation backstop: the Poisson mass criterion fires well inside
    # Lambda*t_max + O(sqrt(Lambda*t_max)) terms; the cap only guards
    # against a misconfigured tolerance spinning forever.
    max_rate_time = float(rate_times.max())
    cap = int(max_rate_time + 12.0 * math.sqrt(max_rate_time + 1.0) + 64.0)

    vector = initial
    iterations = 0
    steady_state = False
    for k in range(cap + 1):
        weights = _poisson_weights(k, rate_times, log_rate_times)
        output += weights[:, None] * vector
        accumulated += weights
        if np.all(accumulated >= 1.0 - rel_tol):
            break
        advanced = operator @ vector
        iterations += 1
        if float(np.abs(advanced - vector).sum()) < steady_state_tol:
            # The power iteration reached its fixed point: every later
            # term contributes the same vector, so the whole Poisson
            # tail collapses into one closed-form update.
            output += (1.0 - accumulated)[:, None] * advanced
            accumulated[:] = 1.0
            steady_state = True
            break
        vector = advanced

    output = np.clip(output, 0.0, None)
    output /= output.sum(axis=1, keepdims=True)
    return UniformizedTransient(
        times=tuple(float(t) for t in times_array),
        probabilities=output,
        iterations=iterations,
        steady_state_detected=steady_state,
        uniformization_rate=rate,
    )
