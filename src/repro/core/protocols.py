"""The five abstract signaling protocols of the paper (§II)."""

from __future__ import annotations

import enum

__all__ = ["Protocol"]


class Protocol(str, enum.Enum):
    """A point on the hard-state/soft-state spectrum.

    ===========  ==================================================
    ``SS``       pure soft state: best-effort triggers + refreshes,
                 removal only by state timeout.
    ``SS_ER``    soft state + best-effort explicit removal message.
    ``SS_RT``    soft state + reliable (ACK/retransmit) triggers and
                 a notification that lets the sender repair false
                 removals.
    ``SS_RTR``   soft state + reliable triggers *and* reliable
                 explicit removal.
    ``HS``       pure hard state: reliable explicit setup/update/
                 removal, no refreshes, no state timeout; orphan
                 removal relies on an external failure signal.
    ===========  ==================================================
    """

    SS = "SS"
    SS_ER = "SS+ER"
    SS_RT = "SS+RT"
    SS_RTR = "SS+RTR"
    HS = "HS"

    @property
    def uses_refreshes(self) -> bool:
        """Whether the protocol sends periodic refresh messages."""
        return self is not Protocol.HS

    @property
    def uses_state_timeout(self) -> bool:
        """Whether receiver state expires when not refreshed."""
        return self is not Protocol.HS

    @property
    def reliable_triggers(self) -> bool:
        """Whether trigger (setup/update) messages are ACKed and retransmitted."""
        return self in (Protocol.SS_RT, Protocol.SS_RTR, Protocol.HS)

    @property
    def explicit_removal(self) -> bool:
        """Whether the sender transmits an explicit state-removal message."""
        return self in (Protocol.SS_ER, Protocol.SS_RTR, Protocol.HS)

    @property
    def reliable_removal(self) -> bool:
        """Whether removal messages are ACKed and retransmitted."""
        return self in (Protocol.SS_RTR, Protocol.HS)

    @property
    def removal_notification(self) -> bool:
        """Whether the receiver notifies the sender of timeout removals.

        SS+RT, SS+RTR and HS let the sender recover from false removal
        by re-triggering (paper §II).
        """
        return self in (Protocol.SS_RT, Protocol.SS_RTR, Protocol.HS)

    @classmethod
    def soft_state_family(cls) -> tuple["Protocol", ...]:
        """The four protocols that use refresh/timeout machinery."""
        return (cls.SS, cls.SS_ER, cls.SS_RT, cls.SS_RTR)

    @classmethod
    def multihop_family(cls) -> tuple["Protocol", ...]:
        """The protocols modeled in the multi-hop analysis (§III-B)."""
        return (cls.SS, cls.SS_RT, cls.HS)
