"""Rooted-tree topologies: the multicast generalization of the chain.

The paper's multi-hop analysis (§III-B) models a *linear* chain of
relays.  Gossip-style soft-state dissemination (PAPERS.md, Femminella
et al.) distributes the same signaling state down a multicast tree: the
sender at the root, receivers at the leaves, and every edge an
independent lossy hop.  :class:`Topology` describes such a rooted tree;
the chain is the degenerate unary tree (:meth:`Topology.chain`), and
the tree state/transition construction in
:mod:`repro.core.multihop.tree_states` /
:mod:`repro.core.multihop.tree_transitions` reduces *bit-identically*
to the Fig. 15/16 chain model on it.

Nodes are integers: node 0 is the root (the sender); node ``v >= 1``
hangs below ``parents[v - 1] < v``, so the node order is topological
(parents before children) and every shape has one canonical encoding
per labeling.
"""

from __future__ import annotations

import dataclasses
import functools

__all__ = ["Topology"]


@dataclasses.dataclass(frozen=True)
class Topology:
    """A rooted tree given by the parent of each non-root node.

    ``parents[i]`` is the parent of node ``i + 1`` and must be a node
    index strictly below ``i + 1`` (the root is node 0).  Use the
    shape constructors for the common cases:

    >>> Topology.chain(3).parents          # 0 - 1 - 2 - 3
    (0, 1, 2)
    >>> Topology.star(3).parents           # three leaves under the root
    (0, 0, 0)
    >>> Topology.kary(2, 2).num_leaves     # complete binary, depth 2
    4
    >>> Topology.chain(5).is_chain
    True
    """

    parents: tuple[int, ...]

    def __post_init__(self) -> None:
        parents = tuple(int(p) for p in self.parents)
        object.__setattr__(self, "parents", parents)
        if not parents:
            raise ValueError("a topology needs at least one edge")
        for child0, parent in enumerate(parents):
            if not 0 <= parent <= child0:
                raise ValueError(
                    f"node {child0 + 1} has parent {parent}; parents must be "
                    "existing lower-numbered nodes (root is 0)"
                )

    # -- sizes ----------------------------------------------------------

    @property
    def num_edges(self) -> int:
        """Edge count — also the number of non-root nodes (receivers)."""
        return len(self.parents)

    @property
    def num_nodes(self) -> int:
        """Node count, root included."""
        return len(self.parents) + 1

    @property
    def num_leaves(self) -> int:
        """Number of leaf nodes."""
        return len(self.leaves())

    # -- structure ------------------------------------------------------

    def parent(self, node: int) -> int:
        """The parent of a non-root node."""
        if not 1 <= node <= self.num_edges:
            raise ValueError(f"node must be in [1, {self.num_edges}], got {node}")
        return self.parents[node - 1]

    @functools.cached_property
    def _children(self) -> tuple[tuple[int, ...], ...]:
        table: list[list[int]] = [[] for _ in range(self.num_nodes)]
        for child0, parent in enumerate(self.parents):
            table[parent].append(child0 + 1)
        return tuple(tuple(children) for children in table)

    def children(self, node: int) -> tuple[int, ...]:
        """The children of ``node``, in index order."""
        return self._children[node]

    def fanout(self, node: int) -> int:
        """The number of children of ``node``."""
        return len(self._children[node])

    @functools.cached_property
    def _depths(self) -> tuple[int, ...]:
        depths = [0] * self.num_nodes
        for child0, parent in enumerate(self.parents):
            depths[child0 + 1] = depths[parent] + 1
        return tuple(depths)

    def depth(self, node: int) -> int:
        """Hops from the root to ``node`` (the root has depth 0)."""
        return self._depths[node]

    @property
    def max_depth(self) -> int:
        """The depth of the deepest node."""
        return max(self._depths)

    def leaves(self) -> tuple[int, ...]:
        """All childless nodes, in index order."""
        return tuple(
            node for node in range(self.num_nodes) if not self._children[node]
        )

    def subtree(self, node: int) -> tuple[int, ...]:
        """``node`` and every descendant, in index order."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node must be in [0, {self.num_nodes}), got {node}")
        members = {node}
        # Topological node order: one forward pass finds all descendants.
        for child0, parent in enumerate(self.parents):
            if parent in members:
                members.add(child0 + 1)
        return tuple(sorted(members))

    @property
    def is_chain(self) -> bool:
        """Whether this tree is the degenerate unary chain."""
        return self.parents == tuple(range(self.num_edges))

    # -- shape constructors ---------------------------------------------

    @classmethod
    def chain(cls, hops: int) -> "Topology":
        """The paper's linear chain of ``hops`` links."""
        if hops < 1:
            raise ValueError(f"hops must be >= 1, got {hops}")
        return cls(tuple(range(hops)))

    @classmethod
    def star(cls, leaves: int) -> "Topology":
        """``leaves`` receivers directly under the root (fan-out N)."""
        if leaves < 1:
            raise ValueError(f"leaves must be >= 1, got {leaves}")
        return cls((0,) * leaves)

    @classmethod
    def broom(cls, handle: int, leaves: int) -> "Topology":
        """A chain of ``handle`` links ending in a ``leaves``-way fan-out.

        Models an access path followed by a replication point — the
        minimal shape mixing depth and fan-out.
        """
        if handle < 1:
            raise ValueError(f"handle must be >= 1, got {handle}")
        if leaves < 1:
            raise ValueError(f"leaves must be >= 1, got {leaves}")
        parents = list(range(handle))
        parents.extend([handle] * leaves)
        return cls(tuple(parents))

    @classmethod
    def kary(cls, fanout: int, depth: int) -> "Topology":
        """The complete ``fanout``-ary tree of the given edge depth.

        ``kary(1, d)`` is the ``d``-hop chain; ``kary(2, d)`` the
        complete binary tree.
        """
        if fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {fanout}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        parents: list[int] = []
        frontier = [0]
        next_node = 1
        for _ in range(depth):
            next_frontier: list[int] = []
            for node in frontier:
                for _ in range(fanout):
                    parents.append(node)
                    next_frontier.append(next_node)
                    next_node += 1
            frontier = next_frontier
        return cls(tuple(parents))

    @classmethod
    def skewed(cls, depth: int) -> "Topology":
        """A caterpillar: a ``depth``-link backbone with one extra leaf
        at every internal backbone node.

        The maximally unbalanced binary shape — one long path plus
        shallow side leaves — contrasting the complete ``kary(2, d)``
        tree at equal depth.  ``skewed(1)`` is the single-hop chain.
        """
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        parents: list[int] = []
        backbone = 0
        next_node = 1
        for level in range(depth):
            parents.append(backbone)
            child = next_node
            next_node += 1
            if level < depth - 1:
                # A side leaf under the *new* backbone node.
                parents.append(child)
                next_node += 1
            backbone = child
        return cls(tuple(parents))

    # -- rendering ------------------------------------------------------

    def describe(self) -> str:
        """ASCII rendering of the tree (for docs and debugging)."""
        lines: list[str] = []

        def render(node: int, prefix: str, tail: bool) -> None:
            label = "sender" if node == 0 else f"node {node}"
            if node == 0:
                lines.append(label)
            else:
                lines.append(f"{prefix}{'`-- ' if tail else '|-- '}{label}")
            children = self._children[node]
            child_prefix = prefix if node == 0 else prefix + ("    " if tail else "|   ")
            for i, child in enumerate(children):
                render(child, child_prefix, i == len(children) - 1)

        render(0, "", True)
        return "\n".join(lines)
