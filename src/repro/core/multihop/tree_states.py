"""States of the tree (multicast) signaling Markov model.

The chain model tracks a single installation frontier — ``(i, s)``:
``i`` consistent hops, fast or slow path.  On a tree the frontier is a
*set* of edges: the nodes holding the sender's current value always
form a downward-closed subtree ``S`` containing the root (a node can
only have received the value through its parent), and each *frontier*
node — a node outside ``S`` whose parent is inside — is reached either
by an in-flight message (fast) or waits for a refresh/retransmission
after a loss (slow).

:class:`TreeState` records ``(consistent, slow)``: the non-root members
of ``S`` and the slow subset of the frontier (the fast frontier is
implied).  On a unary chain this reduces exactly to the paper's state
space — ``(i, 0)`` is ``consistent = (1..i), slow = ()`` and ``(i, 1)``
is ``consistent = (1..i), slow = (i+1,)`` — and
:func:`tree_state_space` orders states so the unary enumeration matches
:func:`~repro.core.multihop.states.multihop_state_space` position by
position, which is what makes unary-tree solves *bit-identical* to the
chain model.  Hard-state trees reuse the chain's
:data:`~repro.core.multihop.states.RECOVERY` singleton.

State counts are exponential in fan-out × depth, so enumeration is
guarded: :func:`projected_tree_states` computes the exact count
*multiplicatively* — cheap integer arithmetic, no intermediate lists —
and an overflow raises :class:`StateSpaceLimitError` (a ``ValueError``
subclass carrying the topology signature and the projected count)
*before* any cross-product materializes.  The scale backends
(:mod:`repro.core.multihop.lumping`, the iterative sparse solver)
catch the typed error to reroute instead of string-matching.
"""

from __future__ import annotations

import dataclasses
import functools

from repro.core.multihop.states import RECOVERY
from repro.core.multihop.topology import Topology

__all__ = [
    "MAX_ENUMERATED_TREE_STATES",
    "MAX_TREE_STATES",
    "StateSpaceLimitError",
    "TreeState",
    "projected_tree_states",
    "tree_state_space",
]

#: Refuse to enumerate beyond this many states on the *direct* solve
#: path.  The tree state count is exponential in fan-out x depth (a
#: complete binary tree of depth 3 already has 15129 states), and
#: beyond a few thousand states the tree generator's LU fill-in makes
#: even the sparse direct solve impractical (the depth-3 binary system
#: factors into ~10^8 nonzeros).  Larger topologies must go through
#: the lumping or iterative backends (see
#: :func:`repro.core.multihop.lumping.select_tree_backend`).
MAX_TREE_STATES = 4096

#: Absolute enumeration ceiling for the iterative (ILU/GMRES) backend,
#: which never factorizes the generator exactly and therefore tolerates
#: much larger raw state spaces than the direct path.  Beyond this even
#: building the Python-level transition structure is the bottleneck.
MAX_ENUMERATED_TREE_STATES = 65536


class StateSpaceLimitError(ValueError):
    """A tree state space exceeds the requested enumeration cap.

    Subclasses ``ValueError`` so legacy ``except ValueError`` callers
    keep working; the scale-backend routing catches *this* type and
    reads the structured fields instead of parsing the message.

    Attributes
    ----------
    topology:
        The offending :class:`Topology` (its ``parents`` tuple is the
        topology signature).
    projected:
        The exact state count the enumeration would have produced,
        computed multiplicatively before any materialization.
    limit:
        The cap that was exceeded.
    """

    def __init__(self, topology: Topology, projected: int, limit: int) -> None:
        self.topology = topology
        self.projected = projected
        self.limit = limit
        super().__init__(
            f"tree state space for topology {topology.parents} exceeds "
            f"{limit} states (projected {projected}); reduce the "
            "topology's fan-out or depth, or solve through the lumped or "
            "iterative backend"
        )


@dataclasses.dataclass(frozen=True, order=True)
class TreeState:
    """``(consistent, slow)``: the consistent subtree and its slow frontier.

    ``consistent`` lists the non-root nodes holding the sender's current
    value (sorted); ``slow`` lists the frontier nodes whose installation
    message was lost and that now wait for the slow path (sorted).
    Frontier nodes not in ``slow`` have a message in flight.
    """

    consistent: tuple[int, ...]
    slow: tuple[int, ...]

    def __str__(self) -> str:
        consistent = ",".join(str(v) for v in self.consistent) or "-"
        slow = ",".join(str(v) for v in self.slow) or "-"
        return f"({{{consistent}}};{{{slow}}})"


@functools.lru_cache(maxsize=1024)
def _projected_edge_configurations(topology: Topology, node: int) -> int:
    """Exact configuration count of the edge into ``node``: fast, slow,
    or crossed with every child-edge combination below."""
    crossed = 1
    for child in topology.children(node):
        crossed *= _projected_edge_configurations(topology, child)
    return 2 + crossed


@functools.lru_cache(maxsize=1024)
def projected_tree_states(topology: Topology) -> int:
    """The exact tree state count, computed without materializing it.

    Pure integer arithmetic over the recursion
    ``f(v) = 2 + prod(f(children))``, so pathological fan-outs are
    rejected in microseconds instead of after building multi-GB
    intermediate cross-product lists.  Excludes the HS ``RECOVERY``
    extra state.
    """
    total = 1
    for child in topology.children(0):
        total *= _projected_edge_configurations(topology, child)
    return total


def _edge_configurations(
    topology: Topology, node: int
) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
    """All ``(consistent, slow)`` contributions of the edge into ``node``.

    Assumes the parent of ``node`` is consistent, so the edge is live:
    it is fast (in flight), slow (lost), or crossed — and once crossed,
    each child edge of ``node`` contributes independently.
    """
    results: list[tuple[tuple[int, ...], tuple[int, ...]]] = [
        ((), ()),  # fast frontier: nothing below node is consistent
        ((), (node,)),  # slow frontier
    ]
    crossed: list[tuple[tuple[int, ...], tuple[int, ...]]] = [((node,), ())]
    for child in topology.children(node):
        child_configurations = _edge_configurations(topology, child)
        crossed = [
            (consistent + child_consistent, slow + child_slow)
            for consistent, slow in crossed
            for child_consistent, child_slow in child_configurations
        ]
    results.extend(crossed)
    return results


@functools.lru_cache(maxsize=256)
def tree_state_space(
    topology: Topology, with_recovery: bool, max_states: int | None = None
) -> tuple[object, ...]:
    """All states of the tree model, in the canonical order.

    States are sorted by (slow-frontier size, consistent-subtree size,
    consistent tuple, slow tuple); hard-state trees append ``RECOVERY``
    last.  On a unary chain this reproduces the
    :func:`~repro.core.multihop.states.multihop_state_space` order
    exactly: the all-fast states ``(0,0)..(N,0)`` by consistent count,
    then the slow states ``(0,1)..(N-1,1)``, then ``RECOVERY``.

    ``max_states`` overrides the default :data:`MAX_TREE_STATES` cap
    (the iterative backend enumerates up to
    :data:`MAX_ENUMERATED_TREE_STATES`).  The cap is checked against
    :func:`projected_tree_states` *before* anything materializes;
    an overflow raises :class:`StateSpaceLimitError`.
    """
    limit = MAX_TREE_STATES if max_states is None else max_states
    projected = projected_tree_states(topology)
    if projected > limit:
        raise StateSpaceLimitError(topology, projected, limit)
    configurations: list[tuple[tuple[int, ...], tuple[int, ...]]] = [((), ())]
    for child in topology.children(0):
        child_configurations = _edge_configurations(topology, child)
        configurations = [
            (consistent + child_consistent, slow + child_slow)
            for consistent, slow in configurations
            for child_consistent, child_slow in child_configurations
        ]
    tree_states = sorted(
        TreeState(tuple(sorted(consistent)), tuple(sorted(slow)))
        for consistent, slow in configurations
    )
    tree_states.sort(key=lambda s: (len(s.slow), len(s.consistent)))
    states: list[object] = list(tree_states)
    if with_recovery:
        states.append(RECOVERY)
    return tuple(states)
