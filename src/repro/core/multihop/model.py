"""The multi-hop analytic model and its metrics (paper §III-B).

:class:`MultiHopModel` covers the stationary-update regime: state lives
forever at the sender (``mu_r -> 0``) and Poisson updates at rate
``lambda_u`` must propagate down a homogeneous chain of ``N`` hops.
Metrics:

* ``inconsistency_ratio`` — eq. (12): ``I = 1 - pi_(N,0)``;
* ``hop_inconsistency(h)`` — Fig. 17's per-hop view: hop ``h`` is
  inconsistent whenever fewer than ``h`` hops are consistent (and
  during HS recovery);
* ``message_rate`` — per-link transmissions per second (eqs. 13-17).
"""

from __future__ import annotations

import dataclasses

from repro.core.markov import ContinuousTimeMarkovChain
from repro.core.multihop.messages import multihop_message_components
from repro.core.multihop.states import RECOVERY, HopState, multihop_state_space
from repro.core.multihop.transitions import build_multihop_rates, supported_protocols
from repro.core.parameters import MultiHopParameters
from repro.core.protocols import Protocol

__all__ = ["MultiHopModel", "MultiHopSolution"]


@dataclasses.dataclass(frozen=True)
class MultiHopSolution:
    """Solved metrics of one protocol on one multi-hop configuration."""

    protocol: Protocol
    params: MultiHopParameters
    stationary: dict[object, float]
    message_breakdown: dict[str, float]

    @property
    def inconsistency_ratio(self) -> float:
        """``I = 1 - pi_(N,0)`` — any hop inconsistent (eq. 12)."""
        return 1.0 - self.stationary.get(HopState(self.params.hops, False), 0.0)

    @property
    def message_rate(self) -> float:
        """Total per-link transmissions per second."""
        return sum(self.message_breakdown.values())

    def hop_inconsistency(self, hop: int) -> float:
        """Fraction of time hop ``hop`` (1-based) is inconsistent (Fig. 17).

        Hop ``h`` is inconsistent in state ``(k, s)`` iff ``k < h``; the
        HS recovery state counts as inconsistent for every hop.
        """
        if not 1 <= hop <= self.params.hops:
            raise ValueError(f"hop must be in [1, {self.params.hops}], got {hop}")
        total = 0.0
        for state, probability in self.stationary.items():
            if state is RECOVERY:
                total += probability
            elif isinstance(state, HopState) and state.consistent_hops < hop:
                total += probability
        return total

    def hop_profile(self) -> list[float]:
        """``[hop_inconsistency(1), ..., hop_inconsistency(N)]``."""
        return [self.hop_inconsistency(h) for h in range(1, self.params.hops + 1)]

    def integrated_cost(self, weight: float = 10.0) -> float:
        """``weight * I + message_rate`` — the eq. (8) cost in this regime."""
        if weight < 0:
            raise ValueError(f"weight must be non-negative, got {weight}")
        return weight * self.inconsistency_ratio + self.message_rate


class MultiHopModel:
    """The Fig. 15/16 chain for SS, SS+RT or HS over ``N`` hops."""

    def __init__(self, protocol: Protocol, params: MultiHopParameters) -> None:
        protocol = Protocol(protocol)
        if protocol not in supported_protocols():
            raise ValueError(
                f"{protocol.value} is not modeled in the multi-hop analysis; "
                f"use one of {[p.value for p in supported_protocols()]}"
            )
        self.protocol = protocol
        self.params = params
        self._rates = build_multihop_rates(protocol, params)
        self._states = multihop_state_space(
            params.hops, with_recovery=protocol is Protocol.HS
        )

    def chain(self) -> ContinuousTimeMarkovChain:
        """The recurrent multi-hop CTMC."""
        return ContinuousTimeMarkovChain(self._states, self._rates)

    def transition_rates(self) -> dict[tuple[object, object], float]:
        """A copy of the chain's transition rates."""
        return dict(self._rates)

    def solve(self) -> MultiHopSolution:
        """Compute the stationary distribution and message rates."""
        stationary = self.chain().stationary_distribution()
        breakdown = multihop_message_components(self.protocol, self.params, stationary)
        return MultiHopSolution(
            protocol=self.protocol,
            params=self.params,
            stationary=stationary,
            message_breakdown=breakdown,
        )


def solve_all_multihop(
    params: MultiHopParameters,
    protocols: tuple[Protocol, ...] | None = None,
) -> dict[Protocol, MultiHopSolution]:
    """Solve every multi-hop protocol under one parameter set."""
    chosen = protocols if protocols is not None else supported_protocols()
    return {protocol: MultiHopModel(protocol, params).solve() for protocol in chosen}
