"""Transition rates of the multi-hop chains (paper §III-B.1, eqs. 9-11).

The three modeled protocols share the fast-path/update structure and
differ in slow-path recovery and in how state is (falsely) removed:

* **SS** — recovery only by end-to-end refreshes, which must cross all
  ``i`` hops (rate ``(1-p)^i / R``); state-timeout cascades model false
  removal (eq. 9).
* **SS+RT** — adds hop-by-hop reliable triggers: a hop-local
  retransmission can also repair the slow path (eq. 10).
* **HS** — retransmissions only (eq. 11); no timeouts.  False removals
  come from each receiver's external failure detector (rate
  ``lambda_x`` each); the chain then visits the ``RECOVERY`` state
  until the sender learns of the removal and re-triggers.
"""

from __future__ import annotations

from repro.core.multihop.states import RECOVERY, HopState, multihop_state_space
from repro.core.parameters import MultiHopParameters
from repro.core.protocols import Protocol

__all__ = [
    "build_multihop_rates",
    "first_timeout_rate",
    "slow_path_recovery_rate",
    "supported_protocols",
]

Rates = dict[tuple[object, object], float]


def supported_protocols() -> tuple[Protocol, ...]:
    """Protocols covered by the multi-hop analysis (§III-B)."""
    return Protocol.multihop_family()


def slow_path_recovery_rate(
    protocol: Protocol,
    params: MultiHopParameters,
    target_hops: int,
) -> float:
    """Rate of ``(i-1, 1) -> (i, 0)`` where ``i = target_hops``.

    A refresh repairs the slow path only if it survives all ``i`` hops
    from the sender; a hop-by-hop retransmission must survive just the
    one broken hop.
    """
    if target_hops < 1:
        raise ValueError(f"target_hops must be >= 1, got {target_hops}")
    success = 1.0 - params.loss_rate
    refresh_term = (success**target_hops) / params.refresh_interval
    retransmit_term = success / params.retransmission_interval
    if protocol is Protocol.SS:
        return refresh_term
    if protocol is Protocol.SS_RT:
        return refresh_term + retransmit_term  # eq. 10
    if protocol is Protocol.HS:
        return retransmit_term  # eq. 11
    raise ValueError(f"{protocol} is not part of the multi-hop analysis")


def first_timeout_rate(params: MultiHopParameters, surviving_hops: int) -> float:
    """Rate of the *first* state timeout occurring at hop ``j+1`` (eq. 9).

    ``surviving_hops`` is ``j`` — the number of hops left consistent
    after the cascade (the timeout at hop ``j+1`` starves every hop
    behind it of refreshes too).  A timeout at hop ``h`` needs all
    ``T/R`` refreshes of a timeout window to miss hop ``h``
    (each arrives with probability ``(1-p)^h``), so

    ``rate(j) = [ (1 - (1-p)^(j+1))^(T/R) - (1 - (1-p)^j)^(T/R) ] / T``.
    """
    if surviving_hops < 0:
        raise ValueError(f"surviving_hops must be >= 0, got {surviving_hops}")
    p = params.loss_rate
    if p == 0.0:
        return 0.0
    exponent = params.timeout_interval / params.refresh_interval
    success = 1.0 - p
    miss_at = lambda hop: 1.0 - success**hop  # noqa: E731 - tiny local alias
    probability = miss_at(surviving_hops + 1) ** exponent - miss_at(surviving_hops) ** exponent
    return max(probability, 0.0) / params.timeout_interval


def build_multihop_rates(protocol: Protocol, params: MultiHopParameters) -> Rates:
    """All transition rates of the Fig. 15/16 chain for ``protocol``."""
    if protocol not in supported_protocols():
        raise ValueError(f"{protocol} is not part of the multi-hop analysis")
    n = params.hops
    p = params.loss_rate
    success = 1.0 - p
    delta = params.delay
    lam_u = params.update_rate
    start = HopState(0, False)
    states = multihop_state_space(n, with_recovery=protocol is Protocol.HS)

    rates: Rates = {}

    def add(origin: object, destination: object, rate: float) -> None:
        if rate > 0.0 and origin != destination:
            key = (origin, destination)
            rates[key] = rates.get(key, 0.0) + rate

    # Sender-side updates restart installation from hop 0 (all protocols).
    for state in states:
        add(state, start, lam_u)

    for i in range(n):
        fast = HopState(i, False)
        slow = HopState(i, True)
        # Fast path: the in-flight message crosses hop i+1 or is lost there.
        add(fast, HopState(i + 1, False), success / delta)
        add(fast, slow, p / delta)
        # Slow path: refresh/retransmission repairs hop i+1.
        add(slow, HopState(i + 1, False), slow_path_recovery_rate(protocol, params, i + 1))

    if protocol is not Protocol.HS:
        # State-timeout cascades: first expiry at hop j+1 leaves j hops.
        for state in states:
            if not isinstance(state, HopState):
                continue
            for j in range(state.consistent_hops):
                add(state, HopState(j, True), first_timeout_rate(params, j))
    else:
        # External false signals: any of the N receivers may fire; the
        # system recovers once the sender is notified and re-triggers.
        lam_x = params.external_false_signal_rate
        for state in states:
            if state is not RECOVERY:
                add(state, RECOVERY, n * lam_x)
        add(RECOVERY, start, 1.0 / (2.0 * n * delta))

    return rates
