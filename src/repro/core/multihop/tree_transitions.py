"""Transitions of the tree signaling model — shared with the templates.

The transition *structure* (which state goes where, tagged with the
kind of event) is generated once by :func:`tree_transition_specs` and
consumed by two paths that must stay bit-identical:

* :func:`build_tree_rates` maps each tag to its rate value and builds
  the reference rate dict (what :class:`TreeModel` solves);
* :class:`repro.core.templates.TreeTemplate` maps each tag to a
  derived-feature index and scatters per-point rate vectors into the
  compiled COO structure.

Both therefore agree edge for edge, in the same accumulation order.
The per-tag rate expressions reuse the chain modules' own helpers —
``slow_path_recovery_rate`` at the repaired node's depth,
``first_timeout_rate`` at depth - 1 — so a unary tree produces the
exact floats of :func:`~repro.core.multihop.transitions.build_multihop_rates`:

* an in-flight message crosses its edge at ``(1-p)/Delta`` or is lost
  at ``p/Delta``, independently per frontier edge;
* a slow frontier node at depth ``d`` is repaired at the chain's
  ``d``-hop slow-path rate (refreshes must survive the whole root
  path; hop-local retransmissions just the broken edge);
* soft-state timeouts fire *first* at a consistent node ``v`` at the
  chain's first-timeout rate for depth ``d(v)``, detaching ``v``'s
  whole subtree (downstream nodes are starved of refreshes too) and
  leaving the edge into ``v`` slow;
* hard state replaces timeouts with external false signals — any of
  the ``E`` receivers fires at ``lambda_x`` — and a recovery state
  whose exit mirrors the chain's sender-notification round trip.
"""

from __future__ import annotations

import functools

from repro.core.multihop.states import RECOVERY
from repro.core.multihop.topology import Topology
from repro.core.multihop.transitions import (
    first_timeout_rate,
    slow_path_recovery_rate,
    supported_protocols,
)
from repro.core.multihop.tree_states import TreeState, tree_state_space
from repro.core.parameters import MultiHopParameters
from repro.core.protocols import Protocol

__all__ = ["build_tree_rates", "tree_tag_rate", "tree_transition_specs"]

Rates = dict[tuple[object, object], float]

#: Transition tags: ("update",), ("advance",), ("lose",),
#: ("recover", depth), ("timeout", depth), ("to_recovery",),
#: ("from_recovery",).
Tag = tuple


def _advance(state: TreeState, node: int) -> TreeState:
    """``node``'s frontier edge is crossed: it joins the consistent set
    (its children implicitly become fast frontier edges)."""
    return TreeState(
        tuple(sorted(state.consistent + (node,))),
        tuple(v for v in state.slow if v != node),
    )


def _mark_slow(state: TreeState, node: int) -> TreeState:
    """``node``'s in-flight message is lost: the edge turns slow."""
    return TreeState(state.consistent, tuple(sorted(state.slow + (node,))))


def _timeout(state: TreeState, node: int, topology: Topology) -> TreeState:
    """First state-timeout at consistent ``node``: its whole subtree
    detaches (refresh starvation cascades) and its edge turns slow."""
    removed = set(topology.subtree(node))
    consistent = tuple(v for v in state.consistent if v not in removed)
    slow = tuple(
        sorted(
            [v for v in state.slow if topology.parent(v) not in removed] + [node]
        )
    )
    return TreeState(consistent, slow)


@functools.lru_cache(maxsize=256)
def tree_transition_specs(
    protocol: Protocol, topology: Topology, max_states: int | None = None
) -> tuple[tuple[object, object, Tag], ...]:
    """``(origin, destination, tag)`` triples, in canonical build order.

    The order is load-bearing: both the reference rate dict and the
    compiled template accumulate parallel edges (hard state's update
    and recovery exits into the start state) in this sequence, keeping
    the two paths bit-identical.  Updates come first (every state
    restarts installation at the root), then each state's frontier and
    timeout events in node order, then the recovery exit.

    ``max_states`` raises the enumeration cap for the iterative
    backend; the default keeps the direct path's
    :data:`~repro.core.multihop.tree_states.MAX_TREE_STATES` guard.
    """
    protocol = Protocol(protocol)
    if protocol not in supported_protocols():
        raise ValueError(f"{protocol} is not part of the multi-hop analysis")
    with_recovery = protocol is Protocol.HS
    states = tree_state_space(topology, with_recovery, max_states)
    start = states[0]
    specs: list[tuple[object, object, Tag]] = []

    # Sender-side updates restart installation from the root.
    for state in states[1:]:
        specs.append((state, start, ("update",)))

    for state in states:
        if state is RECOVERY:
            continue
        in_consistent = set(state.consistent)
        in_slow = set(state.slow)
        frontier = [
            node
            for node in range(1, topology.num_nodes)
            if node not in in_consistent
            and (topology.parent(node) == 0 or topology.parent(node) in in_consistent)
        ]
        for node in frontier:
            if node in in_slow:
                specs.append(
                    (
                        state,
                        _advance(state, node),
                        ("recover", topology.depth(node)),
                    )
                )
            else:
                specs.append((state, _advance(state, node), ("advance",)))
                specs.append((state, _mark_slow(state, node), ("lose",)))
        if protocol is not Protocol.HS:
            for node in state.consistent:
                specs.append(
                    (
                        state,
                        _timeout(state, node, topology),
                        ("timeout", topology.depth(node)),
                    )
                )
        else:
            specs.append((state, RECOVERY, ("to_recovery",)))
    if with_recovery:
        specs.append((RECOVERY, start, ("from_recovery",)))
    return tuple(specs)


def tree_tag_rate(
    protocol: Protocol, params: MultiHopParameters, topology: Topology, tag: Tag
) -> float:
    """The rate of one transition tag, via the chain helpers."""
    success = 1.0 - params.loss_rate
    if tag[0] == "update":
        return params.update_rate
    if tag[0] == "advance":
        return success / params.delay
    if tag[0] == "lose":
        return params.loss_rate / params.delay
    if tag[0] == "recover":
        return slow_path_recovery_rate(protocol, params, tag[1])
    if tag[0] == "timeout":
        return first_timeout_rate(params, tag[1] - 1)
    n = topology.num_edges
    if tag[0] == "to_recovery":
        return n * params.external_false_signal_rate
    if tag[0] == "from_recovery":
        return 1.0 / (2.0 * n * params.delay)
    raise ValueError(f"unknown transition tag {tag!r}")


def build_tree_rates(
    protocol: Protocol,
    params: MultiHopParameters,
    topology: Topology,
    max_states: int | None = None,
) -> Rates:
    """All transition rates of the tree chain for ``protocol``.

    On ``Topology.chain(N)`` the result carries exactly the floats of
    :func:`~repro.core.multihop.transitions.build_multihop_rates`, key
    for key (modulo the state encoding), in the same accumulation
    order.
    """
    rates: Rates = {}
    for origin, destination, tag in tree_transition_specs(protocol, topology, max_states):
        rate = tree_tag_rate(protocol, params, topology, tag)
        if rate > 0.0 and origin != destination:
            key = (origin, destination)
            rates[key] = rates.get(key, 0.0) + rate
    return rates
