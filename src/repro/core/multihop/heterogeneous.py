"""Heterogeneous multi-hop chains — an extension beyond the paper.

Paper §III-B assumes homogeneous hops ("identical channel loss rate and
mean channel delay").  Real paths are not homogeneous: a reservation
often crosses one congested peering link among many clean ones.  This
module generalizes the multi-hop Markov model to per-hop loss and delay
vectors, reusing the same state space (the chain's structure does not
depend on homogeneity — only its rates do).

The homogeneous model is recovered exactly when every hop is identical
(tested), which also serves as a cross-check of both implementations.

The per-hop rate math is factored into pure profile functions
(:func:`reach_profile`, :func:`recovery_rate_profile`,
:func:`first_timeout_profile`, :func:`heterogeneous_message_components`)
shared with the compiled-template fast path in
:mod:`repro.core.templates`; the model class is the reference
implementation that the templates are parity-tested against.  All
profiles are built on a single prefix-product pass over the hop vector,
so rate construction is O(n) bookkeeping on top of the O(n²) edge set
instead of the old O(n) ``math.prod`` per edge.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping, Sequence

from repro.core.markov import ContinuousTimeMarkovChain
from repro.core.multihop.model import MultiHopSolution
from repro.core.multihop.states import RECOVERY, HopState, multihop_state_space
from repro.core.parameters import MultiHopParameters
from repro.core.protocols import Protocol

__all__ = [
    "HeterogeneousHop",
    "HeterogeneousMultiHopModel",
    "expected_link_crossings_heterogeneous",
    "first_timeout_profile",
    "heterogeneous_message_components",
    "hops_from_parameters",
    "reach_profile",
    "recovery_rate_profile",
]


@dataclasses.dataclass(frozen=True)
class HeterogeneousHop:
    """Loss and delay of one link in the chain."""

    loss_rate: float
    delay: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {self.loss_rate}")
        if self.delay <= 0:
            raise ValueError(f"delay must be positive, got {self.delay}")


def hops_from_parameters(params: MultiHopParameters) -> tuple[HeterogeneousHop, ...]:
    """The homogeneous hop vector implied by ``params``."""
    return tuple(
        HeterogeneousHop(params.loss_rate, params.delay) for _ in range(params.hops)
    )


def reach_profile(hops: Sequence[HeterogeneousHop]) -> tuple[float, ...]:
    """Prefix products ``reach[k] = P(message survives the first k links)``.

    ``reach[0] = 1`` and ``reach[n]`` is the end-to-end delivery
    probability.  One O(n) pass replaces the per-call O(n)
    ``math.prod`` the rate builders previously recomputed per edge.
    """
    profile = [1.0]
    survive = 1.0
    for hop in hops:
        survive *= 1.0 - hop.loss_rate
        profile.append(survive)
    return tuple(profile)


def recovery_rate_profile(
    protocol: Protocol,
    params: MultiHopParameters,
    hops: Sequence[HeterogeneousHop],
    reach: Sequence[float],
) -> tuple[float, ...]:
    """Entry ``i``: the rate of ``(i,1) -> (i+1,0)`` (slow-path repair).

    A refresh must survive hops ``1..i+1`` end to end; a hop-local
    retransmission must survive only the broken hop ``i+1``.
    """
    rates = []
    for i, hop in enumerate(hops):
        refresh = reach[i + 1] / params.refresh_interval
        retransmit = (1.0 - hop.loss_rate) / params.retransmission_interval
        if protocol is Protocol.SS:
            rates.append(refresh)
        elif protocol is Protocol.SS_RT:
            rates.append(refresh + retransmit)
        else:  # HS
            rates.append(retransmit)
    return tuple(rates)


def first_timeout_profile(
    params: MultiHopParameters, reach: Sequence[float]
) -> tuple[float, ...]:
    """Entry ``j``: rate of the first state timeout leaving ``j`` hops.

    Eq. 9 with per-hop reach probabilities: the first expiry happens at
    hop ``j+1`` when every refresh of a timeout window misses hop
    ``j+1`` but not hop ``j``.
    """
    exponent = params.timeout_interval / params.refresh_interval
    rates = []
    for j in range(len(reach) - 1):
        probability = (1.0 - reach[j + 1]) ** exponent - (1.0 - reach[j]) ** exponent
        rates.append(max(probability, 0.0) / params.timeout_interval)
    return tuple(rates)


def expected_link_crossings_heterogeneous(
    hops: Sequence[HeterogeneousHop], reach: Sequence[float] | None = None
) -> float:
    """Mean links crossed by one end-to-end message (heterogeneous eq. 14)."""
    if reach is None:
        reach = reach_profile(hops)
    return sum(reach[k] for k in range(len(hops)))


def heterogeneous_message_components(
    protocol: Protocol,
    params: MultiHopParameters,
    hops: Sequence[HeterogeneousHop],
    stationary: Mapping[object, float],
    reach: Sequence[float] | None = None,
) -> dict[str, float]:
    """Per-kind per-link-transmission rates under per-hop loss/delay.

    The heterogeneous counterpart of
    :func:`repro.core.multihop.messages.multihop_message_components`,
    shared between :class:`HeterogeneousMultiHopModel` and the
    compiled-template fast path.
    """
    if reach is None:
        reach = reach_profile(hops)
    n = params.hops
    retransmit = 1.0 / params.retransmission_interval
    fast_rate = 0.0
    slow_total = 0.0
    ack_rate = 0.0
    for state, probability in stationary.items():
        if not isinstance(state, HopState):
            continue
        if not state.slow and state.consistent_hops < n:
            hop = hops[state.consistent_hops]
            fast_rate += probability / hop.delay
            ack_rate += probability * (1.0 - hop.loss_rate) / hop.delay
        elif state.slow:
            slow_total += probability
            hop = hops[min(state.consistent_hops, n - 1)]
            ack_rate += probability * (1.0 - hop.loss_rate) * retransmit
    breakdown = {
        "trigger_hops": fast_rate,
        "refresh_hops": 0.0,
        "retransmissions": 0.0,
        "acks": 0.0,
        "recovery_traffic": 0.0,
    }
    if protocol.uses_refreshes:
        breakdown["refresh_hops"] = (
            expected_link_crossings_heterogeneous(hops, reach) / params.refresh_interval
        )
    if protocol.reliable_triggers:
        breakdown["retransmissions"] = retransmit * slow_total
        breakdown["acks"] = ack_rate
    if protocol is Protocol.HS:
        mean_delay = sum(h.delay for h in hops) / n
        breakdown["recovery_traffic"] = stationary.get(RECOVERY, 0.0) / mean_delay
    return breakdown


class HeterogeneousMultiHopModel:
    """The §III-B chain with per-hop loss/delay (SS, SS+RT, HS)."""

    def __init__(
        self,
        protocol: Protocol,
        params: MultiHopParameters,
        hops: Sequence[HeterogeneousHop],
    ) -> None:
        protocol = Protocol(protocol)
        if protocol not in Protocol.multihop_family():
            raise ValueError(f"{protocol.value} is not part of the multi-hop analysis")
        if len(hops) != params.hops:
            raise ValueError(
                f"hop vector length {len(hops)} != params.hops {params.hops}"
            )
        self.protocol = protocol
        self.params = params
        self.hops = tuple(hops)
        self._reach = reach_profile(self.hops)
        self._states = multihop_state_space(
            params.hops, with_recovery=protocol is Protocol.HS
        )
        self._rates = self._build_rates()

    # ------------------------------------------------------------------
    # Per-hop rate helpers
    # ------------------------------------------------------------------

    def reach_probability(self, hop_count: int) -> float:
        """Probability an end-to-end message survives the first ``hop_count`` links."""
        if not 0 <= hop_count <= len(self.hops):
            raise ValueError(f"hop_count out of range: {hop_count}")
        return self._reach[hop_count]

    def _build_rates(self) -> dict:
        params = self.params
        n = params.hops
        start = HopState(0, False)
        rates: dict = {}

        def add(origin, destination, rate: float) -> None:
            if rate > 0.0 and origin != destination:
                key = (origin, destination)
                rates[key] = rates.get(key, 0.0) + rate

        for state in self._states:
            add(state, start, params.update_rate)

        recovery = recovery_rate_profile(self.protocol, params, self.hops, self._reach)
        for i in range(n):
            hop = self.hops[i]
            fast = HopState(i, False)
            slow = HopState(i, True)
            add(fast, HopState(i + 1, False), (1.0 - hop.loss_rate) / hop.delay)
            add(fast, slow, hop.loss_rate / hop.delay)
            add(slow, HopState(i + 1, False), recovery[i])

        if self.protocol is not Protocol.HS:
            timeout = first_timeout_profile(params, self._reach)
            for state in self._states:
                if not isinstance(state, HopState):
                    continue
                for j in range(state.consistent_hops):
                    add(state, HopState(j, True), timeout[j])
        else:
            lam_x = params.external_false_signal_rate
            mean_delay = sum(h.delay for h in self.hops) / n
            for state in self._states:
                if state is not RECOVERY:
                    add(state, RECOVERY, n * lam_x)
            add(RECOVERY, start, 1.0 / (2.0 * n * mean_delay))
        return rates

    # ------------------------------------------------------------------
    # Solution
    # ------------------------------------------------------------------

    def chain(self) -> ContinuousTimeMarkovChain:
        """The heterogeneous multi-hop CTMC."""
        return ContinuousTimeMarkovChain(self._states, self._rates)

    def solve(self) -> MultiHopSolution:
        """Stationary distribution + message rates (per-link counting)."""
        stationary = self.chain().stationary_distribution()
        breakdown = heterogeneous_message_components(
            self.protocol, self.params, self.hops, stationary, self._reach
        )
        return MultiHopSolution(
            protocol=self.protocol,
            params=self.params,
            stationary=stationary,
            message_breakdown=breakdown,
        )
