"""Heterogeneous multi-hop chains — an extension beyond the paper.

Paper §III-B assumes homogeneous hops ("identical channel loss rate and
mean channel delay").  Real paths are not homogeneous: a reservation
often crosses one congested peering link among many clean ones.  This
module generalizes the multi-hop Markov model to per-hop loss and delay
vectors, reusing the same state space (the chain's structure does not
depend on homogeneity — only its rates do).

The homogeneous model is recovered exactly when every hop is identical
(tested), which also serves as a cross-check of both implementations.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Sequence

from repro.core.markov import ContinuousTimeMarkovChain
from repro.core.multihop.model import MultiHopSolution
from repro.core.multihop.states import RECOVERY, HopState, multihop_state_space
from repro.core.parameters import MultiHopParameters
from repro.core.protocols import Protocol

__all__ = ["HeterogeneousHop", "HeterogeneousMultiHopModel", "hops_from_parameters"]


@dataclasses.dataclass(frozen=True)
class HeterogeneousHop:
    """Loss and delay of one link in the chain."""

    loss_rate: float
    delay: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {self.loss_rate}")
        if self.delay <= 0:
            raise ValueError(f"delay must be positive, got {self.delay}")


def hops_from_parameters(params: MultiHopParameters) -> tuple[HeterogeneousHop, ...]:
    """The homogeneous hop vector implied by ``params``."""
    return tuple(
        HeterogeneousHop(params.loss_rate, params.delay) for _ in range(params.hops)
    )


class HeterogeneousMultiHopModel:
    """The §III-B chain with per-hop loss/delay (SS, SS+RT, HS)."""

    def __init__(
        self,
        protocol: Protocol,
        params: MultiHopParameters,
        hops: Sequence[HeterogeneousHop],
    ) -> None:
        protocol = Protocol(protocol)
        if protocol not in Protocol.multihop_family():
            raise ValueError(f"{protocol.value} is not part of the multi-hop analysis")
        if len(hops) != params.hops:
            raise ValueError(
                f"hop vector length {len(hops)} != params.hops {params.hops}"
            )
        self.protocol = protocol
        self.params = params
        self.hops = tuple(hops)
        self._states = multihop_state_space(
            params.hops, with_recovery=protocol is Protocol.HS
        )
        self._rates = self._build_rates()

    # ------------------------------------------------------------------
    # Per-hop rate helpers
    # ------------------------------------------------------------------

    def reach_probability(self, hop_count: int) -> float:
        """Probability an end-to-end message survives the first ``hop_count`` links."""
        if not 0 <= hop_count <= len(self.hops):
            raise ValueError(f"hop_count out of range: {hop_count}")
        return math.prod(1.0 - h.loss_rate for h in self.hops[:hop_count])

    def _recovery_rate(self, target_hops: int) -> float:
        """Rate of ``(i-1,1) -> (i,0)`` with ``i = target_hops``."""
        refresh = self.reach_probability(target_hops) / self.params.refresh_interval
        hop = self.hops[target_hops - 1]
        retransmit = (1.0 - hop.loss_rate) / self.params.retransmission_interval
        if self.protocol is Protocol.SS:
            return refresh
        if self.protocol is Protocol.SS_RT:
            return refresh + retransmit
        return retransmit  # HS

    def _first_timeout_rate(self, surviving_hops: int) -> float:
        """Eq. 9 with per-hop reach probabilities."""
        exponent = self.params.timeout_interval / self.params.refresh_interval
        miss_through = lambda k: 1.0 - self.reach_probability(k)  # noqa: E731
        probability = (
            miss_through(surviving_hops + 1) ** exponent
            - miss_through(surviving_hops) ** exponent
        )
        return max(probability, 0.0) / self.params.timeout_interval

    def _build_rates(self) -> dict:
        params = self.params
        n = params.hops
        start = HopState(0, False)
        rates: dict = {}

        def add(origin, destination, rate: float) -> None:
            if rate > 0.0 and origin != destination:
                key = (origin, destination)
                rates[key] = rates.get(key, 0.0) + rate

        for state in self._states:
            add(state, start, params.update_rate)

        for i in range(n):
            hop = self.hops[i]
            fast = HopState(i, False)
            slow = HopState(i, True)
            add(fast, HopState(i + 1, False), (1.0 - hop.loss_rate) / hop.delay)
            add(fast, slow, hop.loss_rate / hop.delay)
            add(slow, HopState(i + 1, False), self._recovery_rate(i + 1))

        if self.protocol is not Protocol.HS:
            for state in self._states:
                if not isinstance(state, HopState):
                    continue
                for j in range(state.consistent_hops):
                    add(state, HopState(j, True), self._first_timeout_rate(j))
        else:
            lam_x = params.external_false_signal_rate
            mean_delay = sum(h.delay for h in self.hops) / n
            for state in self._states:
                if state is not RECOVERY:
                    add(state, RECOVERY, n * lam_x)
            add(RECOVERY, start, 1.0 / (2.0 * n * mean_delay))
        return rates

    # ------------------------------------------------------------------
    # Solution
    # ------------------------------------------------------------------

    def chain(self) -> ContinuousTimeMarkovChain:
        """The heterogeneous multi-hop CTMC."""
        return ContinuousTimeMarkovChain(self._states, self._rates)

    def _expected_link_crossings(self) -> float:
        return sum(self.reach_probability(k) for k in range(len(self.hops)))

    def solve(self) -> MultiHopSolution:
        """Stationary distribution + message rates (per-link counting)."""
        stationary = self.chain().stationary_distribution()
        n = self.params.hops
        retransmit = 1.0 / self.params.retransmission_interval
        fast_rate = 0.0
        slow_total = 0.0
        ack_rate = 0.0
        for state, probability in stationary.items():
            if not isinstance(state, HopState):
                continue
            if not state.slow and state.consistent_hops < n:
                hop = self.hops[state.consistent_hops]
                fast_rate += probability / hop.delay
                ack_rate += probability * (1.0 - hop.loss_rate) / hop.delay
            elif state.slow:
                slow_total += probability
                hop = self.hops[min(state.consistent_hops, n - 1)]
                ack_rate += probability * (1.0 - hop.loss_rate) * retransmit
        breakdown = {
            "trigger_hops": fast_rate,
            "refresh_hops": 0.0,
            "retransmissions": 0.0,
            "acks": 0.0,
            "recovery_traffic": 0.0,
        }
        if self.protocol.uses_refreshes:
            breakdown["refresh_hops"] = (
                self._expected_link_crossings() / self.params.refresh_interval
            )
        if self.protocol.reliable_triggers:
            breakdown["retransmissions"] = retransmit * slow_total
            breakdown["acks"] = ack_rate
        if self.protocol is Protocol.HS:
            mean_delay = sum(h.delay for h in self.hops) / n
            breakdown["recovery_traffic"] = stationary.get(RECOVERY, 0.0) / mean_delay
        return MultiHopSolution(
            protocol=self.protocol,
            params=self.params,
            stationary=stationary,
            message_breakdown=breakdown,
        )
