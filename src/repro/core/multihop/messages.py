"""Multi-hop signaling message rates (paper eqs. 13-17).

Multi-hop overhead counts **per-link transmissions**: a message that
crosses ``k`` links costs ``k``.  An end-to-end message over ``N``
lossy links crosses

``E_N = sum_{k=1..N} (1-p)^(k-1) = (1 - (1-p)^N) / p``

links in expectation (it is transmitted on link ``k`` iff it survived
links ``1..k-1``); the paper's eqs. (14)-(15) algebraically reduce to
this.  Components:

* fast-path trigger propagation: rate ``1/Delta`` in every fast-path
  state ``(i,0)`` with ``i < N`` (one link-crossing per hop advance);
* refreshes (SS, SS+RT): generated at ``1/R`` regardless of chain
  state, each costing ``E_N`` link-crossings;
* hop-local retransmissions (SS+RT, HS): rate ``1/K`` in slow-path
  states, one link each, plus one hop-local ACK per successful reliable
  delivery;
* HS recovery traffic: one receiver->everyone notification sweep plus
  the re-trigger — approximately ``2N`` link-crossings per recovery.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.multihop.states import RECOVERY, HopState
from repro.core.parameters import MultiHopParameters
from repro.core.protocols import Protocol

__all__ = [
    "expected_link_crossings",
    "multihop_message_components",
    "multihop_total_message_rate",
]


def expected_link_crossings(params: MultiHopParameters) -> float:
    """``E_N`` — mean links crossed by one end-to-end message (eqs. 14-15)."""
    p = params.loss_rate
    n = params.hops
    if p == 0.0:
        return float(n)
    return (1.0 - (1.0 - p) ** n) / p


def multihop_message_components(
    protocol: Protocol,
    params: MultiHopParameters,
    stationary: Mapping[object, float],
) -> dict[str, float]:
    """Per-kind per-link-transmission rates for the multi-hop chain."""
    if protocol not in Protocol.multihop_family():
        raise ValueError(f"{protocol} is not part of the multi-hop analysis")
    n = params.hops
    p = params.loss_rate
    success = 1.0 - p
    delta = params.delay
    retransmit = 1.0 / params.retransmission_interval

    fast_below_top = sum(
        probability
        for state, probability in stationary.items()
        if isinstance(state, HopState) and not state.slow and state.consistent_hops < n
    )
    slow_total = sum(
        probability
        for state, probability in stationary.items()
        if isinstance(state, HopState) and state.slow
    )
    recovery = stationary.get(RECOVERY, 0.0)

    components = {
        "trigger_hops": fast_below_top / delta,
        "refresh_hops": 0.0,
        "retransmissions": 0.0,
        "acks": 0.0,
        "recovery_traffic": 0.0,
    }
    if protocol.uses_refreshes:
        components["refresh_hops"] = expected_link_crossings(params) / params.refresh_interval
    if protocol.reliable_triggers:
        components["retransmissions"] = retransmit * slow_total
        components["acks"] = (
            success * fast_below_top / delta + success * retransmit * slow_total
        )
    if protocol is Protocol.HS:
        # Leaving RECOVERY costs ~2N link-crossings (notification sweep
        # plus the sender's reinstallation trigger): rate-out * 2N
        # = pi_F * (1/(2*N*Delta)) * 2N = pi_F / Delta.
        components["recovery_traffic"] = recovery / delta
    return components


def multihop_total_message_rate(
    protocol: Protocol,
    params: MultiHopParameters,
    stationary: Mapping[object, float],
) -> float:
    """Total per-link-transmission rate (eqs. 13, 16, 17)."""
    return sum(multihop_message_components(protocol, params, stationary).values())
