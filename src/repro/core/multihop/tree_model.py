"""The tree (multicast) analytic model and its leaf metrics.

:class:`TreeModel` generalizes :class:`~repro.core.multihop.model.MultiHopModel`
from linear chains to arbitrary rooted trees (:class:`Topology`): the
sender at the root floods state updates toward every leaf over
independent lossy edges.  The regime is the same stationary one —
state lives forever at the sender, Poisson updates at ``lambda_u``.

Metrics aggregate over leaves instead of "the last hop":

* ``inconsistency_ratio`` — *any* node inconsistent (``1 - pi(full)``,
  the all-leaf consistency complement; eq. 12 on a chain);
* ``leaf_inconsistency`` / ``leaf_reach`` — per-leaf views;
* ``mean_leaf_inconsistency`` — the average receiver's experience;
* ``fanout_weighted_inconsistency`` — leaves weighted by their parent's
  fan-out, emphasizing hot replication points (one lost trigger at a
  wide splitter starves many receivers);
* ``message_rate`` — per-link transmissions per second.

On ``Topology.chain(N)`` every number is **bit-identical** to the
chain model: the state order, rate floats and metric summation orders
all reduce to the Fig. 15/16 construction (enforced by
``repro.validation.parity.tree_parity_checks``).
"""

from __future__ import annotations

import dataclasses

from repro.core.markov import ContinuousTimeMarkovChain
from repro.core.multihop.states import RECOVERY
from repro.core.multihop.topology import Topology
from repro.core.multihop.transitions import supported_protocols
from repro.core.multihop.tree_messages import tree_message_components
from repro.core.multihop.tree_states import TreeState, tree_state_space
from repro.core.multihop.tree_transitions import build_tree_rates
from repro.core.parameters import MultiHopParameters
from repro.core.protocols import Protocol

__all__ = ["TreeModel", "TreeSolution", "solve_all_tree"]


@dataclasses.dataclass(frozen=True)
class TreeSolution:
    """Solved metrics of one protocol on one tree configuration."""

    protocol: Protocol
    params: MultiHopParameters
    topology: Topology
    stationary: dict[object, float]
    message_breakdown: dict[str, float]

    @property
    def inconsistency_ratio(self) -> float:
        """Any node inconsistent: ``1 - pi(full tree consistent)``.

        Because the consistent set is downward-closed, "every leaf
        consistent" and "every node consistent" are the same event, so
        this is exactly the all-leaf consistency complement.
        """
        full = TreeState(tuple(range(1, self.topology.num_nodes)), ())
        return 1.0 - self.stationary.get(full, 0.0)

    @property
    def message_rate(self) -> float:
        """Total per-link transmissions per second."""
        return sum(self.message_breakdown.values())

    def node_inconsistency(self, node: int) -> float:
        """Fraction of time non-root ``node`` is inconsistent.

        A node is inconsistent whenever it is outside the consistent
        subtree; the HS recovery state counts for every node.  On a
        chain this is the paper's per-hop view (Fig. 17).
        """
        if not 1 <= node <= self.topology.num_edges:
            raise ValueError(
                f"node must be in [1, {self.topology.num_edges}], got {node}"
            )
        total = 0.0
        for state, probability in self.stationary.items():
            if state is RECOVERY:
                total += probability
            elif isinstance(state, TreeState) and node not in state.consistent:
                total += probability
        return total

    def leaf_inconsistency(self, leaf: int) -> float:
        """Fraction of time the given leaf is inconsistent."""
        if leaf not in self.topology.leaves():
            raise ValueError(f"{leaf} is not a leaf of the topology")
        return self.node_inconsistency(leaf)

    def leaf_reach(self, leaf: int) -> float:
        """Fraction of time the given leaf holds the current value."""
        return 1.0 - self.leaf_inconsistency(leaf)

    def leaf_profile(self) -> list[float]:
        """Per-leaf inconsistency, in leaf index order."""
        return [self.leaf_inconsistency(leaf) for leaf in self.topology.leaves()]

    def reach_profile(self) -> list[float]:
        """Per-leaf reach, in leaf index order."""
        return [1.0 - value for value in self.leaf_profile()]

    @property
    def mean_leaf_inconsistency(self) -> float:
        """Average per-leaf inconsistency (each receiver equal weight)."""
        profile = self.leaf_profile()
        return sum(profile) / len(profile)

    @property
    def fanout_weighted_inconsistency(self) -> float:
        """Leaf inconsistency weighted by the parent's fan-out.

        A leaf behind a ``k``-way replication point counts ``k`` times:
        the metric surfaces the cost of losing state at hot splitters,
        which uniform leaf averaging dilutes.  On a chain (all weights
        1) it equals the last hop's inconsistency.
        """
        leaves = self.topology.leaves()
        weights = [float(self.topology.fanout(self.topology.parent(leaf))) for leaf in leaves]
        weighted = sum(
            weight * self.leaf_inconsistency(leaf)
            for weight, leaf in zip(weights, leaves)
        )
        return weighted / sum(weights)

    def integrated_cost(self, weight: float = 10.0) -> float:
        """``weight * I + message_rate`` — the eq. (8) cost shape."""
        if weight < 0:
            raise ValueError(f"weight must be non-negative, got {weight}")
        return weight * self.inconsistency_ratio + self.message_rate


class TreeModel:
    """SS, SS+RT or HS signaling down one rooted tree.

    ``max_states`` raises the direct-enumeration cap (the iterative
    backend solves raw spaces up to
    :data:`~repro.core.multihop.tree_states.MAX_ENUMERATED_TREE_STATES`);
    ``solver`` picks the chain's linear-algebra backend (``"auto"``,
    ``"dense"``, ``"sparse"`` or ``"iterative"``).
    """

    def __init__(
        self,
        protocol: Protocol,
        params: MultiHopParameters,
        topology: Topology,
        max_states: int | None = None,
        solver: str = "auto",
    ) -> None:
        protocol = Protocol(protocol)
        if protocol not in supported_protocols():
            raise ValueError(
                f"{protocol.value} is not modeled in the multi-hop analysis; "
                f"use one of {[p.value for p in supported_protocols()]}"
            )
        if params.hops != topology.num_edges:
            raise ValueError(
                f"params.hops ({params.hops}) must equal the topology's edge "
                f"count ({topology.num_edges}); bind them together when sweeping"
            )
        self.protocol = protocol
        self.params = params
        self.topology = topology
        self.solver = solver
        self._rates = build_tree_rates(protocol, params, topology, max_states)
        self._states = tree_state_space(
            topology, protocol is Protocol.HS, max_states
        )

    def chain(self) -> ContinuousTimeMarkovChain:
        """The recurrent tree CTMC."""
        return ContinuousTimeMarkovChain(self._states, self._rates, solver=self.solver)

    def transition_rates(self) -> dict[tuple[object, object], float]:
        """A copy of the chain's transition rates."""
        return dict(self._rates)

    def solution_from_stationary(
        self, stationary: dict[object, float]
    ) -> TreeSolution:
        """Wrap an externally computed stationary distribution.

        The runtime's hardened solve path (``solve_chain_stationary``
        with its logged fallback chain) computes the distribution
        itself and hands it back here for the message accounting.
        """
        breakdown = tree_message_components(
            self.protocol, self.params, self.topology, stationary
        )
        return TreeSolution(
            protocol=self.protocol,
            params=self.params,
            topology=self.topology,
            stationary=stationary,
            message_breakdown=breakdown,
        )

    def solve(self) -> TreeSolution:
        """Compute the stationary distribution and message rates."""
        return self.solution_from_stationary(self.chain().stationary_distribution())


def solve_all_tree(
    params: MultiHopParameters,
    topology: Topology,
    protocols: tuple[Protocol, ...] | None = None,
) -> dict[Protocol, TreeSolution]:
    """Solve every tree protocol on one ``(params, topology)`` point."""
    chosen = protocols if protocols is not None else supported_protocols()
    return {
        protocol: TreeModel(protocol, params, topology).solve()
        for protocol in chosen
    }
