"""Exact lumping of isomorphic sibling subtrees — the tree-scale path.

The tree model's state space is the cross product of independent edge
configurations, so it explodes combinatorially: a complete binary tree
of depth 3 has 15129 raw states and its generator's LU factorization
~10^8 nonzeros.  But the chain is highly symmetric: permuting two
sibling subtrees with the *same shape* maps the transition graph onto
itself and preserves every rate (rates depend only on a node's depth,
never its identity).  The orbits of that automorphism group are
therefore a **strongly lumpable** partition — the aggregated process is
itself Markov, with

    q_hat(O, O') = sum over y in O' of q(x, y)    for any x in O,

and solving the lumped chain is *exact*: the stationary probability of
an orbit equals the summed raw probability of its members (proved in
exact rational arithmetic by ``tests/core/test_tree_lumping.py``).
Symmetric shapes collapse combinatorially — a ``k``-leaf star's ``3^k``
raw states become ``C(k+2, 2)`` multisets, the depth-3 binary tree's
15129 become 741 — which is what breaks the old
:data:`~repro.core.multihop.tree_states.MAX_TREE_STATES` wall.

A lumped state replaces each group of same-shape sibling edges with a
sorted *multiset* of member configurations, recursively:

* ``("F",)`` — fast frontier edge (message in flight);
* ``("S",)`` — slow frontier edge (waiting for the slow path);
* ``("C", below)`` — crossed edge whose node is consistent; ``below``
  holds one sorted multiset of child-edge configurations per sibling
  group (groups ordered by canonical subtree shape).

A transition's lumped rate is the raw tag rate times the *multiplicity*
— the number of identical members the event could have fired at — so
every rate float is ``tree_tag_rate(...) * m`` with integer ``m``, and
the reference dict and the compiled template accumulate the exact same
floats in the same order (the usual template bit-parity discipline,
applied within the lumped family).

Asymmetric trees (chains, caterpillars) have trivial orbits and gain
nothing; :func:`select_tree_backend` routes them to the direct path
below the cap and to the iterative sparse backend above it.
"""

from __future__ import annotations

import dataclasses
import functools
import itertools
import math

from repro.core.markov import ContinuousTimeMarkovChain
from repro.core.multihop.states import RECOVERY
from repro.core.multihop.topology import Topology
from repro.core.multihop.transitions import supported_protocols
from repro.core.multihop.tree_messages import tree_expected_link_crossings
from repro.core.multihop.tree_model import TreeSolution
from repro.core.multihop.tree_states import (
    MAX_ENUMERATED_TREE_STATES,
    MAX_TREE_STATES,
    StateSpaceLimitError,
    TreeState,
    projected_tree_states,
)
from repro.core.multihop.tree_transitions import tree_tag_rate
from repro.core.parameters import MultiHopParameters
from repro.core.protocols import Protocol

__all__ = [
    "MAX_LUMPED_TREE_STATES",
    "TREE_BACKENDS",
    "LumpedTreeModel",
    "LumpedTreeSolution",
    "LumpedTreeState",
    "build_lumped_rates",
    "lump_tree_state",
    "lumped_message_components",
    "lumped_state_space",
    "lumped_transition_specs",
    "projected_lumped_states",
    "select_tree_backend",
]

#: Cap on the *lumped* state count.  Lumped chains stay sparse and are
#: solved through the standard splu/iterative machinery, so the ceiling
#: is far above the raw-enumeration wall; beyond it even the orbit
#: enumeration itself is the bottleneck.
MAX_LUMPED_TREE_STATES = 32768

#: Solve backends a tree task can request; ``"auto"`` routes by the
#: projected state counts (:func:`select_tree_backend`).
TREE_BACKENDS = ("auto", "direct", "lumped", "iterative")

#: Edge-configuration atoms.  Tuples (not bare strings) so mixed
#: configurations compare with plain tuple ordering: ``"C" < "F" < "S"``
#: puts crossed before fast before slow everywhere a multiset is sorted.
FAST = ("F",)
SLOW = ("S",)

Config = tuple
Tag = tuple


@dataclasses.dataclass(frozen=True, order=True)
class LumpedTreeState:
    """One orbit of tree states under sibling-subtree permutation.

    ``groups`` holds, per sibling group of the root (canonical shape
    order), the sorted multiset of member edge configurations.
    """

    groups: tuple[tuple[Config, ...], ...]

    def __str__(self) -> str:
        def render(config: Config) -> str:
            if config == FAST:
                return "F"
            if config == SLOW:
                return "S"
            return "C(" + render_groups(config[1]) + ")"

        def render_groups(groups: tuple[tuple[Config, ...], ...]) -> str:
            return "|".join(
                ",".join(render(member) for member in group) for group in groups
            )

        return "[" + render_groups(self.groups) + "]"


@functools.lru_cache(maxsize=4096)
def _shape(topology: Topology, node: int) -> tuple:
    """Canonical shape of the subtree rooted at ``node`` (sorted nested
    tuples): two subtrees are isomorphic iff their shapes are equal."""
    return tuple(sorted(_shape(topology, child) for child in topology.children(node)))


@functools.lru_cache(maxsize=4096)
def _sibling_groups(topology: Topology, node: int) -> tuple[tuple[int, ...], ...]:
    """``node``'s children partitioned into same-shape groups.

    Each group is a tuple of child ids; groups (and members within a
    group) are ordered by ``(shape, node id)``, fixing the canonical
    group order every lumped structure uses.
    """
    children = sorted(
        topology.children(node), key=lambda child: (_shape(topology, child), child)
    )
    groups: list[list[int]] = []
    for child in children:
        if groups and _shape(topology, groups[-1][0]) == _shape(topology, child):
            groups[-1].append(child)
        else:
            groups.append([child])
    return tuple(tuple(group) for group in groups)


def _group_index(topology: Topology, parent: int, child: int) -> int:
    """The index of the sibling group of ``parent`` containing ``child``."""
    for position, group in enumerate(_sibling_groups(topology, parent)):
        if child in group:
            return position
    raise ValueError(f"{child} is not a child of {parent}")


@functools.lru_cache(maxsize=4096)
def _projected_lumped_configs(topology: Topology, node: int) -> int:
    """Exact lumped configuration count of the edge into ``node``:
    ``2 + prod over groups of C(g + count - 1, count)`` (multisets)."""
    crossed = 1
    for group in _sibling_groups(topology, node):
        member_count = _projected_lumped_configs(topology, group[0])
        crossed *= math.comb(member_count + len(group) - 1, len(group))
    return 2 + crossed


@functools.lru_cache(maxsize=1024)
def projected_lumped_states(topology: Topology) -> int:
    """The exact lumped state count, computed without enumerating.

    Excludes the HS ``RECOVERY`` extra state.  Equals
    :func:`~repro.core.multihop.tree_states.projected_tree_states` on
    asymmetric trees (trivial orbits) and collapses combinatorially on
    symmetric ones (``C(k+2, 2)`` for a ``k``-leaf star).
    """
    total = 1
    for group in _sibling_groups(topology, 0):
        member_count = _projected_lumped_configs(topology, group[0])
        total *= math.comb(member_count + len(group) - 1, len(group))
    return total


def select_tree_backend(topology: Topology) -> str:
    """Route one topology to its solve backend by projected size.

    Below :data:`~repro.core.multihop.tree_states.MAX_TREE_STATES` the
    direct path keeps the bit-parity contract.  Above it, lumping is
    chosen when the orbit space either fits the direct-solve regime or
    compresses the raw space at least 4x (an asymmetric tree's identity
    lumping would just re-create the LU fill-in wall under another
    name); otherwise the iterative backend enumerates the raw space up
    to :data:`~repro.core.multihop.tree_states.MAX_ENUMERATED_TREE_STATES`.
    Raises :class:`StateSpaceLimitError` when nothing fits.
    """
    raw = projected_tree_states(topology)
    if raw <= MAX_TREE_STATES:
        return "direct"
    lumped = projected_lumped_states(topology)
    if lumped <= MAX_TREE_STATES or (
        lumped <= MAX_LUMPED_TREE_STATES and lumped * 4 <= raw
    ):
        return "lumped"
    if raw <= MAX_ENUMERATED_TREE_STATES:
        return "iterative"
    raise StateSpaceLimitError(topology, raw, MAX_ENUMERATED_TREE_STATES)


@functools.lru_cache(maxsize=4096)
def _edge_lumped_configs(topology: Topology, node: int) -> tuple[Config, ...]:
    """All lumped configurations of the edge into ``node``, sorted.

    The sorted order is load-bearing twice over: multisets are
    enumerated as ``combinations_with_replacement`` over it (producing
    ascending member tuples), and transition successors re-sort their
    multisets, so both spell every orbit the same way.
    """
    belows: list[tuple[tuple[Config, ...], ...]] = [()]
    for group in _sibling_groups(topology, node):
        member_configs = _edge_lumped_configs(topology, group[0])
        multisets = list(
            itertools.combinations_with_replacement(member_configs, len(group))
        )
        belows = [below + (multiset,) for below in belows for multiset in multisets]
    return tuple(sorted([FAST, SLOW] + [("C", below) for below in belows]))


def _crossed(topology: Topology, node: int) -> Config:
    """Fresh crossed configuration of ``node``'s edge: every child edge
    becomes a fast frontier edge."""
    return (
        "C",
        tuple(
            (FAST,) * len(group) for group in _sibling_groups(topology, node)
        ),
    )


@functools.lru_cache(maxsize=1024)
def _full_state(topology: Topology) -> LumpedTreeState:
    """The everything-consistent orbit (``pi`` complement of eq. 12)."""

    def full_config(node: int) -> Config:
        return (
            "C",
            tuple(
                tuple(full_config(group[0]) for _ in group)
                for group in _sibling_groups(topology, node)
            ),
        )

    return LumpedTreeState(
        tuple(
            tuple(full_config(group[0]) for _ in group)
            for group in _sibling_groups(topology, 0)
        )
    )


def _lifted_events(
    topology: Topology,
    node: int,
    below: tuple[tuple[Config, ...], ...],
    with_timeouts: bool,
):
    """Events of the child-edge multisets of consistent ``node``.

    Yields ``(tag, multiplicity, successor_below)``: each *distinct*
    member configuration of each group fires once, with multiplicity
    equal to its occurrence count — exactly the orbit-aggregated rate
    ``q_hat(O, O') = sum over y in O' of q(x, y)``.
    """
    for position, group in enumerate(_sibling_groups(topology, node)):
        members = below[position]
        handled: set[Config] = set()
        for member_index, member in enumerate(members):
            if member in handled:
                continue
            handled.add(member)
            multiplicity = members.count(member)
            rest = members[:member_index] + members[member_index + 1 :]
            for tag, mult, successor in _config_events(
                topology, group[0], member, with_timeouts
            ):
                new_members = tuple(sorted(rest + (successor,)))
                yield (
                    tag,
                    multiplicity * mult,
                    below[:position] + (new_members,) + below[position + 1 :],
                )


def _config_events(
    topology: Topology, node: int, config: Config, with_timeouts: bool
):
    """Events of one edge configuration (edge from the parent into
    ``node``), mirroring the raw model's per-edge transitions."""
    if config == FAST:
        yield (("advance",), 1, _crossed(topology, node))
        yield (("lose",), 1, SLOW)
        return
    depth = topology.depth(node)
    if config == SLOW:
        yield (("recover", depth), 1, _crossed(topology, node))
        return
    # Crossed: the node's own soft-state timeout detaches its whole
    # subtree (the edge turns slow, everything below vanishes), and
    # every child-edge event lifts through the multisets.
    if with_timeouts:
        yield (("timeout", depth), 1, SLOW)
    for tag, mult, new_below in _lifted_events(
        topology, node, config[1], with_timeouts
    ):
        yield (tag, mult, ("C", new_below))


def _state_sort_key(state: LumpedTreeState) -> tuple:
    slow, consistent = 0, 0
    for group in state.groups:
        for member in group:
            member_consistent, _, member_slow = _config_counts(member)
            slow += member_slow
            consistent += member_consistent
    return (slow, consistent, state.groups)


@functools.lru_cache(maxsize=65536)
def _config_counts(config: Config) -> tuple[int, int, int]:
    """``(consistent_edges, fast_edges, slow_edges)`` of one config."""
    if config == FAST:
        return (0, 1, 0)
    if config == SLOW:
        return (0, 0, 1)
    consistent, fast, slow = 1, 0, 0
    for group in config[1]:
        for member in group:
            member_consistent, member_fast, member_slow = _config_counts(member)
            consistent += member_consistent
            fast += member_fast
            slow += member_slow
    return (consistent, fast, slow)


def _state_counts(state: LumpedTreeState) -> tuple[int, int, int]:
    """``(consistent_edges, fast_edges, slow_edges)`` of one orbit."""
    consistent, fast, slow = 0, 0, 0
    for group in state.groups:
        for member in group:
            member_consistent, member_fast, member_slow = _config_counts(member)
            consistent += member_consistent
            fast += member_fast
            slow += member_slow
    return (consistent, fast, slow)


@functools.lru_cache(maxsize=128)
def lumped_state_space(
    topology: Topology, with_recovery: bool
) -> tuple[object, ...]:
    """All orbits of the tree model, in the canonical order.

    Mirrors :func:`~repro.core.multihop.tree_states.tree_state_space`:
    sorted by (slow-edge count, consistent-edge count, structure), the
    all-fast start orbit first, ``RECOVERY`` appended for hard state.
    Raises :class:`StateSpaceLimitError` (checked multiplicatively via
    :func:`projected_lumped_states` before enumerating) beyond
    :data:`MAX_LUMPED_TREE_STATES`.
    """
    projected = projected_lumped_states(topology)
    if projected > MAX_LUMPED_TREE_STATES:
        raise StateSpaceLimitError(topology, projected, MAX_LUMPED_TREE_STATES)
    belows: list[tuple[tuple[Config, ...], ...]] = [()]
    for group in _sibling_groups(topology, 0):
        member_configs = _edge_lumped_configs(topology, group[0])
        multisets = list(
            itertools.combinations_with_replacement(member_configs, len(group))
        )
        belows = [below + (multiset,) for below in belows for multiset in multisets]
    lumped = sorted(
        (LumpedTreeState(below) for below in belows), key=_state_sort_key
    )
    states: list[object] = list(lumped)
    if with_recovery:
        states.append(RECOVERY)
    return tuple(states)


@functools.lru_cache(maxsize=128)
def lumped_transition_specs(
    protocol: Protocol, topology: Topology
) -> tuple[tuple[object, object, Tag, int], ...]:
    """``(origin, destination, tag, multiplicity)`` in canonical order.

    The build order mirrors
    :func:`~repro.core.multihop.tree_transitions.tree_transition_specs`
    — updates first, then each orbit's lifted edge events, then the
    recovery exit — so the reference rate dict and the compiled lumped
    template accumulate identical floats in identical order.
    """
    protocol = Protocol(protocol)
    if protocol not in supported_protocols():
        raise ValueError(f"{protocol} is not part of the multi-hop analysis")
    with_recovery = protocol is Protocol.HS
    states = lumped_state_space(topology, with_recovery)
    start = states[0]
    specs: list[tuple[object, object, Tag, int]] = []

    for state in states[1:]:
        specs.append((state, start, ("update",), 1))

    for state in states:
        if state is RECOVERY:
            continue
        for tag, multiplicity, below in _lifted_events(
            topology, 0, state.groups, protocol is not Protocol.HS
        ):
            specs.append((state, LumpedTreeState(below), tag, multiplicity))
        if protocol is Protocol.HS:
            specs.append((state, RECOVERY, ("to_recovery",), 1))
    if with_recovery:
        specs.append((RECOVERY, start, ("from_recovery",), 1))
    return tuple(specs)


def build_lumped_rates(
    protocol: Protocol, params: MultiHopParameters, topology: Topology
) -> dict[tuple[object, object], float]:
    """All transition rates of the lumped chain for ``protocol``.

    Each rate is ``tree_tag_rate(tag) * multiplicity`` — the same float
    product, in the same spec order, the lumped template scatters.
    """
    rates: dict[tuple[object, object], float] = {}
    for origin, destination, tag, multiplicity in lumped_transition_specs(
        protocol, topology
    ):
        rate = tree_tag_rate(protocol, params, topology, tag) * multiplicity
        if rate > 0.0 and origin != destination:
            key = (origin, destination)
            rates[key] = rates.get(key, 0.0) + rate
    return rates


def lump_tree_state(topology: Topology, state: object) -> object:
    """Project one raw :class:`TreeState` onto its orbit.

    The exactness tests use this to compare ``pi_hat(orbit)`` against
    the summed raw probabilities of its members.
    """
    if state is RECOVERY:
        return RECOVERY
    if not isinstance(state, TreeState):
        raise TypeError(f"cannot lump {state!r}")
    consistent = set(state.consistent)
    slow = set(state.slow)

    def config(node: int) -> Config:
        if node in slow:
            return SLOW
        if node not in consistent:
            return FAST
        return ("C", below(node))

    def below(node: int) -> tuple[tuple[Config, ...], ...]:
        return tuple(
            tuple(sorted(config(child) for child in group))
            for group in _sibling_groups(topology, node)
        )

    return LumpedTreeState(below(0))


@functools.lru_cache(maxsize=65536)
def _leaf_stats(topology: Topology, node: int, config: Config) -> tuple[int, float]:
    """``(consistent_leaves, fanout_weighted_consistent_leaves)`` below
    (and including) the edge into ``node``."""
    if config == FAST or config == SLOW:
        return (0, 0.0)
    groups = _sibling_groups(topology, node)
    if not groups:
        return (1, float(topology.fanout(topology.parent(node))))
    leaves, weighted = 0, 0.0
    for position, group in enumerate(groups):
        for member in config[1][position]:
            member_leaves, member_weighted = _leaf_stats(topology, group[0], member)
            leaves += member_leaves
            weighted += member_weighted
    return (leaves, weighted)


def _state_leaf_stats(
    topology: Topology, state: LumpedTreeState
) -> tuple[int, float]:
    leaves, weighted = 0, 0.0
    for position, group in enumerate(_sibling_groups(topology, 0)):
        for member in state.groups[position]:
            member_leaves, member_weighted = _leaf_stats(topology, group[0], member)
            leaves += member_leaves
            weighted += member_weighted
    return (leaves, weighted)


@functools.lru_cache(maxsize=1024)
def _node_path(topology: Topology, node: int) -> tuple[int, ...]:
    """Group indices along the root path to ``node`` (orbit marginals
    are identical for every node sharing this path)."""
    path: list[int] = []
    current = node
    while current != 0:
        parent = topology.parent(current)
        path.append(_group_index(topology, parent, current))
        current = parent
    return tuple(reversed(path))


@functools.lru_cache(maxsize=65536)
def _consistent_fraction(
    groups: tuple[tuple[Config, ...], ...], path: tuple[int, ...]
) -> float:
    """P(the node addressed by ``path`` is consistent | this orbit).

    Members of a sibling group are exchangeable within the orbit, so
    the node sits at each member slot with equal probability; the
    marginal is the nested average of crossed-member fractions.
    """
    members = groups[path[0]]
    rest = path[1:]
    total = 0.0
    handled: set[Config] = set()
    for member in members:
        if member in handled:
            continue
        handled.add(member)
        if member == FAST or member == SLOW:
            continue
        fraction = members.count(member) / len(members)
        if rest:
            total += fraction * _consistent_fraction(member[1], rest)
        else:
            total += fraction
    return total


def lumped_message_components(
    protocol: Protocol,
    params: MultiHopParameters,
    topology: Topology,
    stationary: dict[object, float],
) -> dict[str, float]:
    """Per-kind per-link-transmission rates from a lumped distribution.

    The same eqs. 13-17 accounting as
    :func:`~repro.core.multihop.tree_messages.tree_message_components`,
    with the expected fast/slow frontier edge counts read off the orbit
    structure (each ``("F",)``/``("S",)`` member *is* one frontier
    edge).
    """
    if protocol not in Protocol.multihop_family():
        raise ValueError(f"{protocol} is not part of the multi-hop analysis")
    success = 1.0 - params.loss_rate
    delta = params.delay
    retransmit = 1.0 / params.retransmission_interval

    fast_edges = 0.0
    slow_edges = 0.0
    for state, probability in stationary.items():
        if not isinstance(state, LumpedTreeState):
            continue
        _, fast, slow = _state_counts(state)
        if fast:
            fast_edges += probability * fast
        if slow:
            slow_edges += probability * slow
    recovery = stationary.get(RECOVERY, 0.0)

    components = {
        "trigger_hops": fast_edges / delta,
        "refresh_hops": 0.0,
        "retransmissions": 0.0,
        "acks": 0.0,
        "recovery_traffic": 0.0,
    }
    if protocol.uses_refreshes:
        components["refresh_hops"] = (
            tree_expected_link_crossings(topology, params) / params.refresh_interval
        )
    if protocol.reliable_triggers:
        components["retransmissions"] = retransmit * slow_edges
        components["acks"] = (
            success * fast_edges / delta + success * retransmit * slow_edges
        )
    if protocol is Protocol.HS:
        components["recovery_traffic"] = recovery / delta
    return components


@dataclasses.dataclass(frozen=True)
class LumpedTreeSolution(TreeSolution):
    """Tree metrics computed on the orbit (lumped) state space.

    Same metric surface as :class:`TreeSolution`; the stationary keys
    are :class:`LumpedTreeState` orbits, so the per-node views marginal
    through the orbit structure instead of filtering raw states.
    """

    @property
    def inconsistency_ratio(self) -> float:
        """Any node inconsistent: ``1 - pi(full tree consistent)``."""
        return 1.0 - self.stationary.get(_full_state(self.topology), 0.0)

    def node_inconsistency(self, node: int) -> float:
        """Fraction of time non-root ``node`` is inconsistent."""
        if not 1 <= node <= self.topology.num_edges:
            raise ValueError(
                f"node must be in [1, {self.topology.num_edges}], got {node}"
            )
        path = _node_path(self.topology, node)
        reach = 0.0
        for state, probability in self.stationary.items():
            if isinstance(state, LumpedTreeState):
                reach += probability * _consistent_fraction(state.groups, path)
        return 1.0 - reach

    @property
    def mean_leaf_inconsistency(self) -> float:
        """Average per-leaf inconsistency via expected consistent-leaf
        counts (one pass over the orbits instead of one per leaf)."""
        total_leaves = len(self.topology.leaves())
        reach = 0.0
        for state, probability in self.stationary.items():
            if isinstance(state, LumpedTreeState):
                leaves, _ = _state_leaf_stats(self.topology, state)
                if leaves:
                    reach += probability * leaves
        return 1.0 - reach / total_leaves

    @property
    def fanout_weighted_inconsistency(self) -> float:
        """Fan-out-weighted leaf inconsistency from orbit leaf stats."""
        leaves = self.topology.leaves()
        total_weight = sum(
            float(self.topology.fanout(self.topology.parent(leaf))) for leaf in leaves
        )
        reach = 0.0
        for state, probability in self.stationary.items():
            if isinstance(state, LumpedTreeState):
                _, weighted = _state_leaf_stats(self.topology, state)
                if weighted:
                    reach += probability * weighted
        return 1.0 - reach / total_weight


class LumpedTreeModel:
    """SS, SS+RT or HS signaling on the orbit (lumped) state space."""

    def __init__(
        self,
        protocol: Protocol,
        params: MultiHopParameters,
        topology: Topology,
        solver: str = "auto",
    ) -> None:
        protocol = Protocol(protocol)
        if protocol not in supported_protocols():
            raise ValueError(
                f"{protocol.value} is not modeled in the multi-hop analysis; "
                f"use one of {[p.value for p in supported_protocols()]}"
            )
        if params.hops != topology.num_edges:
            raise ValueError(
                f"params.hops ({params.hops}) must equal the topology's edge "
                f"count ({topology.num_edges}); bind them together when sweeping"
            )
        self.protocol = protocol
        self.params = params
        self.topology = topology
        self.solver = solver
        self._rates = build_lumped_rates(protocol, params, topology)
        self._states = lumped_state_space(topology, protocol is Protocol.HS)

    def chain(self) -> ContinuousTimeMarkovChain:
        """The recurrent lumped tree CTMC."""
        return ContinuousTimeMarkovChain(self._states, self._rates, solver=self.solver)

    def transition_rates(self) -> dict[tuple[object, object], float]:
        """A copy of the chain's transition rates."""
        return dict(self._rates)

    def solution_from_stationary(
        self, stationary: dict[object, float]
    ) -> LumpedTreeSolution:
        """Wrap an externally computed stationary distribution."""
        breakdown = lumped_message_components(
            self.protocol, self.params, self.topology, stationary
        )
        return LumpedTreeSolution(
            protocol=self.protocol,
            params=self.params,
            topology=self.topology,
            stationary=stationary,
            message_breakdown=breakdown,
        )

    def solve(self) -> LumpedTreeSolution:
        """Compute the stationary distribution and message rates."""
        return self.solution_from_stationary(self.chain().stationary_distribution())
