"""States of the multi-hop Markov model (paper Figs. 15-16).

A state ``HopState(consistent_hops=i, slow=s)`` says the first ``i``
links of the chain have consistent endpoints; ``slow`` distinguishes a
trigger in flight toward hop ``i+1`` (fast path) from "the trigger was
lost; waiting for a refresh/retransmission" (slow path).  Hard-state
signaling adds a ``RECOVERY`` pseudo-state for the interval between a
false removal and the sender restarting installation.
"""

from __future__ import annotations

import dataclasses
import enum

__all__ = ["HopState", "Recovery", "RECOVERY", "multihop_state_space"]


@dataclasses.dataclass(frozen=True, order=True)
class HopState:
    """``(i, s)`` of §III-B.1: ``i`` consistent hops, fast/slow path."""

    consistent_hops: int
    slow: bool

    def __post_init__(self) -> None:
        if self.consistent_hops < 0:
            raise ValueError(f"consistent_hops must be >= 0, got {self.consistent_hops}")

    def __str__(self) -> str:
        return f"({self.consistent_hops},{1 if self.slow else 0})"


class Recovery(enum.Enum):
    """Singleton recovery state ``F`` of the hard-state model (Fig. 16)."""

    RECOVERY = "F"

    def __str__(self) -> str:
        return "F"


RECOVERY = Recovery.RECOVERY


def multihop_state_space(hops: int, with_recovery: bool) -> tuple[object, ...]:
    """All states for an ``hops``-link chain.

    Fast-path states ``(i,0)`` exist for ``i = 0..N``; slow-path states
    ``(i,1)`` for ``i = 0..N-1`` (with all hops consistent there is no
    message left to wait for, so ``(N,1)`` does not exist).
    """
    if hops < 1:
        raise ValueError(f"hops must be >= 1, got {hops}")
    states: list[object] = [HopState(i, False) for i in range(hops + 1)]
    states.extend(HopState(i, True) for i in range(hops))
    if with_recovery:
        states.append(RECOVERY)
    return tuple(states)
