"""Tree signaling message rates — the eqs. 13-17 accounting on a tree.

Overhead still counts **per-link transmissions**; the tree differences
are that several frontier edges can carry in-flight messages at once
and that a refresh is *flooded*: forwarded down every branch, so its
expected link-crossing count sums reach probabilities over all edges
rather than along one path.

On a unary chain every expression collapses to the chain formula and
reproduces :func:`~repro.core.multihop.messages.multihop_message_components`
bit for bit: the per-state fast/slow frontier counts are exactly 0 or
1, and :func:`tree_expected_link_crossings` returns the chain's
closed form (the geometric-series sum it generalizes).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.multihop.messages import expected_link_crossings
from repro.core.multihop.states import RECOVERY
from repro.core.multihop.topology import Topology
from repro.core.multihop.tree_states import TreeState
from repro.core.parameters import MultiHopParameters
from repro.core.protocols import Protocol

__all__ = [
    "tree_expected_link_crossings",
    "tree_message_components",
    "tree_total_message_rate",
]


def tree_expected_link_crossings(
    topology: Topology, params: MultiHopParameters
) -> float:
    """Mean links crossed by one flooded end-to-end message.

    An edge into a node at depth ``d`` carries the message iff it
    survived the ``d - 1`` ancestor edges:
    ``E = sum_v (1-p)^(depth(v) - 1)``.  On a chain this is the
    geometric series of eqs. 14-15, so the chain's closed form is used
    there (same value, and bit-identical to the chain module).
    """
    if topology.is_chain:
        return expected_link_crossings(params)
    success = 1.0 - params.loss_rate
    return sum(
        success ** (topology.depth(node) - 1)
        for node in range(1, topology.num_nodes)
    )


def tree_message_components(
    protocol: Protocol,
    params: MultiHopParameters,
    topology: Topology,
    stationary: Mapping[object, float],
) -> dict[str, float]:
    """Per-kind per-link-transmission rates for the tree chain."""
    if protocol not in Protocol.multihop_family():
        raise ValueError(f"{protocol} is not part of the multi-hop analysis")
    success = 1.0 - params.loss_rate
    delta = params.delay
    retransmit = 1.0 / params.retransmission_interval
    consistent_count = topology.num_edges

    def frontier_fast_count(state: TreeState) -> int:
        in_consistent = set(state.consistent)
        in_slow = set(state.slow)
        return sum(
            1
            for node in range(1, topology.num_nodes)
            if node not in in_consistent
            and node not in in_slow
            and (topology.parent(node) == 0 or topology.parent(node) in in_consistent)
        )

    # Mean in-flight (fast frontier) and waiting (slow frontier) edge
    # counts, iterated in state order.  On a chain both counts are 0/1,
    # so the sums equal the chain module's filtered probability sums.
    fast_edges = sum(
        probability * count
        for state, probability in stationary.items()
        if isinstance(state, TreeState)
        and len(state.consistent) < consistent_count
        and (count := frontier_fast_count(state))
    )
    slow_edges = sum(
        probability * len(state.slow)
        for state, probability in stationary.items()
        if isinstance(state, TreeState) and state.slow
    )
    recovery = stationary.get(RECOVERY, 0.0)

    components = {
        "trigger_hops": fast_edges / delta,
        "refresh_hops": 0.0,
        "retransmissions": 0.0,
        "acks": 0.0,
        "recovery_traffic": 0.0,
    }
    if protocol.uses_refreshes:
        components["refresh_hops"] = (
            tree_expected_link_crossings(topology, params) / params.refresh_interval
        )
    if protocol.reliable_triggers:
        components["retransmissions"] = retransmit * slow_edges
        components["acks"] = (
            success * fast_edges / delta + success * retransmit * slow_edges
        )
    if protocol is Protocol.HS:
        # Leaving RECOVERY costs ~2E link-crossings (notification sweep
        # plus the reinstallation flood): rate-out * 2E = pi_F / Delta.
        components["recovery_traffic"] = recovery / delta
    return components


def tree_total_message_rate(
    protocol: Protocol,
    params: MultiHopParameters,
    topology: Topology,
    stationary: Mapping[object, float],
) -> float:
    """Total per-link-transmission rate of the tree chain."""
    return sum(
        tree_message_components(protocol, params, topology, stationary).values()
    )
