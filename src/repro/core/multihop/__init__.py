"""Multi-hop analytic models (paper §III-B)."""

from repro.core.multihop.messages import (
    expected_link_crossings,
    multihop_message_components,
    multihop_total_message_rate,
)
from repro.core.multihop.heterogeneous import (
    HeterogeneousHop,
    HeterogeneousMultiHopModel,
    hops_from_parameters,
)
from repro.core.multihop.lumping import (
    LumpedTreeModel,
    LumpedTreeSolution,
    LumpedTreeState,
    build_lumped_rates,
    lump_tree_state,
    lumped_state_space,
    lumped_transition_specs,
    projected_lumped_states,
    select_tree_backend,
)
from repro.core.multihop.model import MultiHopModel, MultiHopSolution, solve_all_multihop
from repro.core.multihop.states import RECOVERY, HopState, Recovery, multihop_state_space
from repro.core.multihop.topology import Topology
from repro.core.multihop.transitions import (
    build_multihop_rates,
    first_timeout_rate,
    slow_path_recovery_rate,
    supported_protocols,
)
from repro.core.multihop.tree_messages import (
    tree_expected_link_crossings,
    tree_message_components,
    tree_total_message_rate,
)
from repro.core.multihop.tree_model import TreeModel, TreeSolution, solve_all_tree
from repro.core.multihop.tree_states import (
    StateSpaceLimitError,
    TreeState,
    projected_tree_states,
    tree_state_space,
)
from repro.core.multihop.tree_transitions import (
    build_tree_rates,
    tree_transition_specs,
)

__all__ = [
    "HeterogeneousHop",
    "HeterogeneousMultiHopModel",
    "HopState",
    "hops_from_parameters",
    "LumpedTreeModel",
    "LumpedTreeSolution",
    "LumpedTreeState",
    "MultiHopModel",
    "MultiHopSolution",
    "RECOVERY",
    "Recovery",
    "StateSpaceLimitError",
    "Topology",
    "TreeModel",
    "TreeSolution",
    "TreeState",
    "build_lumped_rates",
    "build_multihop_rates",
    "build_tree_rates",
    "expected_link_crossings",
    "first_timeout_rate",
    "lump_tree_state",
    "lumped_state_space",
    "lumped_transition_specs",
    "multihop_message_components",
    "multihop_state_space",
    "multihop_total_message_rate",
    "projected_lumped_states",
    "projected_tree_states",
    "select_tree_backend",
    "slow_path_recovery_rate",
    "solve_all_multihop",
    "solve_all_tree",
    "supported_protocols",
    "tree_expected_link_crossings",
    "tree_message_components",
    "tree_state_space",
    "tree_total_message_rate",
    "tree_transition_specs",
]
