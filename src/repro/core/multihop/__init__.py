"""Multi-hop analytic models (paper §III-B)."""

from repro.core.multihop.messages import (
    expected_link_crossings,
    multihop_message_components,
    multihop_total_message_rate,
)
from repro.core.multihop.heterogeneous import (
    HeterogeneousHop,
    HeterogeneousMultiHopModel,
    hops_from_parameters,
)
from repro.core.multihop.model import MultiHopModel, MultiHopSolution, solve_all_multihop
from repro.core.multihop.states import RECOVERY, HopState, Recovery, multihop_state_space
from repro.core.multihop.transitions import (
    build_multihop_rates,
    first_timeout_rate,
    slow_path_recovery_rate,
    supported_protocols,
)

__all__ = [
    "HeterogeneousHop",
    "HeterogeneousMultiHopModel",
    "HopState",
    "hops_from_parameters",
    "MultiHopModel",
    "MultiHopSolution",
    "RECOVERY",
    "Recovery",
    "build_multihop_rates",
    "expected_link_crossings",
    "first_timeout_rate",
    "multihop_message_components",
    "multihop_state_space",
    "multihop_total_message_rate",
    "slow_path_recovery_rate",
    "solve_all_multihop",
    "supported_protocols",
]
