"""Analytic core: the paper's unified Markov models and metrics."""

from repro.core.markov import ContinuousTimeMarkovChain
from repro.core.parameters import (
    MultiHopParameters,
    SignalingParameters,
    kazaa_defaults,
    reservation_defaults,
)
from repro.core.protocols import Protocol
from repro.core.singlehop import SingleHopModel, SingleHopSolution, SingleHopState, solve_all
from repro.core.templates import (
    MultiHopTemplate,
    SingleHopTemplate,
    multihop_template,
    singlehop_template,
)

__all__ = [
    "ContinuousTimeMarkovChain",
    "MultiHopParameters",
    "MultiHopTemplate",
    "Protocol",
    "SignalingParameters",
    "SingleHopModel",
    "SingleHopSolution",
    "SingleHopState",
    "SingleHopTemplate",
    "kazaa_defaults",
    "multihop_template",
    "reservation_defaults",
    "singlehop_template",
    "solve_all",
]
