"""Analytic core: the paper's unified Markov models and metrics."""

from repro.core.markov import ContinuousTimeMarkovChain
from repro.core.parameters import (
    MultiHopParameters,
    SignalingParameters,
    kazaa_defaults,
    reservation_defaults,
)
from repro.core.protocols import Protocol
from repro.core.singlehop import SingleHopModel, SingleHopSolution, SingleHopState, solve_all

__all__ = [
    "ContinuousTimeMarkovChain",
    "MultiHopParameters",
    "Protocol",
    "SignalingParameters",
    "SingleHopModel",
    "SingleHopSolution",
    "SingleHopState",
    "kazaa_defaults",
    "reservation_defaults",
    "solve_all",
]
