"""Compiled chain templates: structure-cached, batched CTMC solves.

Every figure in the paper sweeps parameters over a chain whose
*structure* — state space and transition graph — is fixed by
``(protocol, hop count)`` while only the rates vary.  The per-point
model classes (:class:`~repro.core.singlehop.model.SingleHopModel`,
:class:`~repro.core.multihop.model.MultiHopModel`,
:class:`~repro.core.multihop.heterogeneous.HeterogeneousMultiHopModel`)
rebuild that structure from Python dicts of hashable states at every
sweep point.  A template compiles it once:

* integer COO index arrays (``rows``, ``cols``) over the fixed state
  order, plus a per-edge *feature* index;
* a rate evaluator mapping each parameter point to a derived-feature
  vector, assembled into the ``(K, E)`` edge-rate matrix by numpy
  fancy-indexing — no per-point dict churn.

The derived features themselves are computed with the *reference
modules' own helper functions* (``slow_path_recovery_rate``,
``first_timeout_rate``, ``reach_profile``, …), so every edge rate is
bit-identical to what the reference model builds; combined with stacked
LAPACK solves (one ``numpy.linalg.solve`` call for all K points) the
dense fast path reproduces the per-point dense results **bit for bit**,
not merely within tolerance.

Small chains (every single-hop figure, multi-hop below
:data:`~repro.core.markov.SPARSE_STATE_THRESHOLD` states) solve all K
points in one batched dense call.  Large chains keep the template's
fixed sparsity pattern: the CSC symbolic structure (indices/indptr and
the COO→CSC scatter) is computed once at compile time, each point only
refreshes the ``.data`` vector and runs ``splu`` (scipy exposes no
symbolic-only re-factorization, so the numeric factorization is the one
per-point cost left).

Any point the batched path cannot certify (singular matrix, residual
check, non-finite result) falls back to the reference model for that
point, so failure diagnostics are exactly the reference's.
"""

from __future__ import annotations

import functools
import logging
from collections.abc import Sequence

import numpy as np

from repro.core import markov as _markov
from repro.core.gilbert.model import (
    GilbertMultiHopModel,
    GilbertMultiHopSolution,
    GilbertSingleHopModel,
    GilbertSingleHopSolution,
    degenerate_multihop_solution,
    degenerate_singlehop_solution,
    multihop_solution_from_stationary,
    singlehop_solution_from_stationary,
)
from repro.core.gilbert.transitions import (
    check_multihop_coverage,
    check_singlehop_coverage,
    gilbert_multihop_specs,
    gilbert_multihop_states,
    gilbert_multihop_tag_rate,
    gilbert_singlehop_specs,
    gilbert_singlehop_states,
    gilbert_singlehop_tag_rate,
)
from repro.core.markov import (
    batched_absorption_times_dense,
    batched_stationary_chain,
    batched_stationary_dense,
)
from repro.core.multihop.heterogeneous import (
    HeterogeneousHop,
    HeterogeneousMultiHopModel,
    first_timeout_profile,
    heterogeneous_message_components,
    reach_profile,
    recovery_rate_profile,
)
from repro.core.multihop.lumping import (
    LumpedTreeModel,
    LumpedTreeSolution,
    lumped_message_components,
    lumped_state_space,
    lumped_transition_specs,
)
from repro.core.multihop.messages import multihop_message_components
from repro.core.multihop.model import MultiHopModel, MultiHopSolution
from repro.core.multihop.states import multihop_state_space
from repro.core.multihop.topology import Topology
from repro.core.multihop.transitions import (
    first_timeout_rate,
    slow_path_recovery_rate,
)
from repro.core.multihop.tree_messages import tree_message_components
from repro.core.multihop.tree_model import TreeModel, TreeSolution
from repro.core.multihop.tree_states import (
    MAX_ENUMERATED_TREE_STATES,
    tree_state_space,
)
from repro.core.multihop.tree_transitions import (
    tree_tag_rate,
    tree_transition_specs,
)
from repro.core.parameters import MultiHopParameters, SignalingParameters
from repro.core.protocols import Protocol
from repro.core.singlehop.messages import message_rate_components
from repro.core.singlehop.model import SingleHopModel, SingleHopSolution
from repro.core.singlehop.states import SingleHopState as S
from repro.core.singlehop.transitions import (
    effective_false_removal_rate,
    slow_path_recovery_rate as singlehop_recovery_rate,
    state_space,
)
from repro.faults.gilbert import GilbertElliottParameters

__all__ = [
    "CHAIN_BACKENDS",
    "GilbertMultiHopTemplate",
    "GilbertSingleHopTemplate",
    "LumpedTreeTemplate",
    "MultiHopTemplate",
    "SingleHopTemplate",
    "TreeTemplate",
    "gilbert_multihop_template",
    "gilbert_singlehop_template",
    "iterative_tree_template",
    "lumped_tree_template",
    "multihop_template",
    "select_chain_backend",
    "singlehop_template",
    "solve_gilbert_multihop_tasks",
    "solve_gilbert_singlehop_tasks",
    "solve_heterogeneous_structured_tasks",
    "solve_heterogeneous_tasks",
    "solve_multihop_structured_tasks",
    "solve_multihop_tasks",
    "solve_singlehop_tasks",
    "solve_tree_iterative_tasks",
    "solve_tree_lumped_tasks",
    "solve_tree_tasks",
    "tree_template",
]


_LOGGER = logging.getLogger(__name__)


def _sparse_batch(
    pattern: "_SparseStationaryPattern", rates: np.ndarray, label: str
) -> tuple[np.ndarray, np.ndarray]:
    """Per-point sparse solves; failed points are flagged and logged.

    A flagged point falls back to the reference model downstream — the
    fallback must never be silent (see docs/robustness.md).
    """
    k = rates.shape[0]
    pi = np.zeros((k, pattern.n))
    bad = np.zeros(k, dtype=bool)
    for point in range(k):
        solved = pattern.stationary(rates[point])
        if solved is None:
            _LOGGER.warning(
                "sparse template solve failed for %s point %d of %d; "
                "falling back to the reference model",
                label,
                point,
                k,
            )
            bad[point] = True
        else:
            pi[point] = solved
    return pi, bad


def _iterative_batch(
    pattern: "_SparseStationaryPattern", rates: np.ndarray, label: str
) -> tuple[np.ndarray, np.ndarray]:
    """Per-point ILU/GMRES solves; failed points fall back downstream."""
    k = rates.shape[0]
    pi = np.zeros((k, pattern.n))
    bad = np.zeros(k, dtype=bool)
    for point in range(k):
        solved = pattern.stationary_iterative(rates[point])
        if solved is None:
            _LOGGER.warning(
                "iterative template solve failed for %s point %d of %d; "
                "falling back to the reference model",
                label,
                point,
                k,
            )
            bad[point] = True
        else:
            pi[point] = solved
    return pi, bad


def _assemble_dense(
    flat: np.ndarray, weights: np.ndarray, n: int
) -> np.ndarray:
    """Scatter ``(K, E)`` edge rates into ``(K, n, n)`` dense matrices.

    ``flat`` holds the flattened ``row * n + col`` position of each
    edge; duplicate positions accumulate (parallel edges merged exactly
    as the reference dict accumulation does).
    """
    k = weights.shape[0]
    out = np.zeros((k, n * n))
    for point in range(k):
        out[point] = np.bincount(flat, weights=weights[point], minlength=n * n)
    return out.reshape(k, n, n)


def _fill_generator_diagonal(q: np.ndarray) -> np.ndarray:
    """Set each diagonal to minus the row sum (rows then sum to zero)."""
    n = q.shape[1]
    idx = np.arange(n)
    q[:, idx, idx] = 0.0
    q[:, idx, idx] = -q.sum(axis=2)
    return q


class _SparseStationaryPattern:
    """Fixed CSC structure for the sparse stationary system of a template.

    The linear system is the same one
    :meth:`ContinuousTimeMarkovChain._stationary_sparse` builds —
    ``A = Q^T`` with the last balance row replaced by the normalization
    row — but the COO→CSC symbolic analysis (sort order, duplicate
    merging, indices/indptr) happens once here; each sweep point only
    refreshes the numeric ``data`` vector.
    """

    def __init__(self, edge_rows: np.ndarray, edge_cols: np.ndarray, n: int) -> None:
        self.n = n
        self.edge_rows = edge_rows
        # Generator triplets: every edge plus one diagonal slot per state.
        diag = np.arange(n)
        self.gen_rows = np.concatenate([edge_rows, diag])
        self.gen_cols = np.concatenate([edge_cols, diag])
        # A = Q^T without Q's last column (it becomes A's replaced last
        # row), plus the dense normalization row of ones.
        keep = self.gen_cols != n - 1
        a_rows = np.concatenate([self.gen_cols[keep], np.full(n, n - 1)])
        a_cols = np.concatenate([self.gen_rows[keep], diag])
        order = np.lexsort((a_rows, a_cols))
        sorted_rows = a_rows[order]
        sorted_cols = a_cols[order]
        first = np.ones(len(order), dtype=bool)
        first[1:] = (sorted_rows[1:] != sorted_rows[:-1]) | (
            sorted_cols[1:] != sorted_cols[:-1]
        )
        self._keep = keep
        self._order = order
        self._slot = np.cumsum(first) - 1
        self.nnz = int(self._slot[-1]) + 1
        self.indices = sorted_rows[first]
        counts = np.bincount(sorted_cols[first], minlength=n)
        self.indptr = np.concatenate([[0], np.cumsum(counts)])
        self._rhs = np.zeros(n)
        self._rhs[-1] = 1.0

    def _assemble(self, edge_rates: np.ndarray):
        """``(matrix, gen_data)`` of one point's system ``A x = rhs``."""
        sparse, _ = _markov._sparse_modules()
        n = self.n
        exit_rates = np.bincount(self.edge_rows, weights=edge_rates, minlength=n)
        gen_data = np.concatenate([edge_rates, -exit_rates])
        values = np.concatenate([gen_data[self._keep], np.ones(n)])
        data = np.bincount(
            self._slot, weights=values[self._order], minlength=self.nnz
        )
        matrix = sparse.csc_matrix(
            (data, self.indices, self.indptr), shape=(n, n)
        )
        return matrix, gen_data

    def _accept(self, pi: np.ndarray, gen_data: np.ndarray) -> np.ndarray | None:
        """The same acceptance test the reference applies: small residual
        against ``Q^T`` and no materially negative mass."""
        if not np.all(np.isfinite(pi)):
            return None
        flow = np.bincount(
            self.gen_cols, weights=gen_data * pi[self.gen_rows], minlength=self.n
        )
        scale = max(1.0, float(np.max(np.abs(gen_data))))
        if float(np.max(np.abs(flow))) > 1e-8 * scale or np.any(pi < -1e-9):
            return None
        pi = np.clip(pi, 0.0, None)
        total = pi.sum()
        if total <= 0.0:
            return None
        return pi / total

    def stationary(self, edge_rates: np.ndarray) -> np.ndarray | None:
        """Solve one point; ``None`` when the reference path must decide."""
        if _markov._sparse_modules() is None:  # pragma: no cover - guarded by caller
            return None
        _, sparse_linalg = _markov._sparse_modules()
        matrix, gen_data = self._assemble(edge_rates)
        try:
            pi = sparse_linalg.splu(matrix).solve(self._rhs)
        except (RuntimeError, ValueError):
            return None
        return self._accept(pi, gen_data)

    def stationary_iterative(self, edge_rates: np.ndarray) -> np.ndarray | None:
        """One point through ILU-preconditioned GMRES (BiCGSTAB retry).

        The incomplete factorization keeps bounded fill-in where the
        tree generators' exact LU explodes; the result still passes the
        universal residual/negativity acceptance or the point is flagged
        for the reference fallback.
        """
        if _markov._sparse_modules() is None:  # pragma: no cover - guarded by caller
            return None
        _, sparse_linalg = _markov._sparse_modules()
        matrix, gen_data = self._assemble(edge_rates)
        try:
            ilu = sparse_linalg.spilu(matrix, drop_tol=1e-5, fill_factor=20.0)
        except (RuntimeError, ValueError):
            return None
        preconditioner = sparse_linalg.LinearOperator(
            (self.n, self.n), matvec=ilu.solve
        )
        pi, info = sparse_linalg.gmres(
            matrix,
            self._rhs,
            M=preconditioner,
            rtol=_markov.ITERATIVE_RTOL,
            atol=0.0,
            maxiter=500,
        )
        if info != 0:
            pi, info = sparse_linalg.bicgstab(
                matrix,
                self._rhs,
                M=preconditioner,
                rtol=_markov.ITERATIVE_RTOL,
                atol=0.0,
                maxiter=2000,
            )
        if info != 0:
            return None
        return self._accept(pi, gen_data)


# ----------------------------------------------------------------------
# Single-hop templates
# ----------------------------------------------------------------------

#: Derived-feature order of the single-hop rate evaluator.
_SH_FEATURES = (
    "fast_ok",
    "fast_lost",
    "update",
    "removal",
    "recovery",
    "false_removal",
    "timeout",
    "timeout_retx",
    "removal_retx",
)
_SH_INDEX = {name: i for i, name in enumerate(_SH_FEATURES)}


def _singlehop_edge_specs(protocol: Protocol) -> list[tuple[S, S, str]]:
    """The Fig. 3 edge list in the reference build order (Table I)."""
    specs = [
        (S.S10_FAST, S.CONSISTENT, "fast_ok"),
        (S.S10_FAST, S.S10_SLOW, "fast_lost"),
        (S.IC_FAST, S.CONSISTENT, "fast_ok"),
        (S.IC_FAST, S.IC_SLOW, "fast_lost"),
        (S.S10_SLOW, S.CONSISTENT, "recovery"),
        (S.IC_SLOW, S.CONSISTENT, "recovery"),
        (S.CONSISTENT, S.IC_FAST, "update"),
        (S.S10_SLOW, S.S10_FAST, "update"),
        (S.IC_SLOW, S.IC_FAST, "update"),
        (S.S10_SLOW, S.ABSORBED, "removal"),
        (S.CONSISTENT, S.S01_FAST, "removal"),
        (S.IC_SLOW, S.S01_FAST, "removal"),
        (S.CONSISTENT, S.S10_SLOW, "false_removal"),
        (S.IC_SLOW, S.S10_SLOW, "false_removal"),
    ]
    if not protocol.explicit_removal:
        specs.append((S.S01_FAST, S.ABSORBED, "timeout"))
        return specs
    specs.append((S.S01_FAST, S.ABSORBED, "fast_ok"))
    specs.append((S.S01_FAST, S.S01_SLOW, "fast_lost"))
    if protocol is Protocol.SS_ER:
        specs.append((S.S01_SLOW, S.ABSORBED, "timeout"))
    elif protocol is Protocol.SS_RTR:
        specs.append((S.S01_SLOW, S.ABSORBED, "timeout_retx"))
    else:  # HS
        specs.append((S.S01_SLOW, S.ABSORBED, "removal_retx"))
    return specs


def _singlehop_derived_row(
    protocol: Protocol, params: SignalingParameters
) -> tuple[float, ...]:
    """One point's derived features, via the reference expressions."""
    p = params.loss_rate
    success = 1.0 - p
    delta = params.delay
    timeout = 1.0 / params.timeout_interval
    retransmit = 1.0 / params.retransmission_interval
    return (
        success / delta,
        p / delta,
        params.update_rate,
        params.removal_rate,
        singlehop_recovery_rate(protocol, params),
        effective_false_removal_rate(protocol, params),
        timeout,
        timeout + success * retransmit,
        success * retransmit,
    )


class SingleHopTemplate:
    """Compiled structure of one protocol's Fig. 3 chain.

    Use :func:`singlehop_template` to get the memoized instance.
    """

    def __init__(self, protocol: Protocol) -> None:
        self.protocol = Protocol(protocol)
        self.states: tuple[S, ...] = state_space(self.protocol)
        index = {state: i for i, state in enumerate(self.states)}
        specs = _singlehop_edge_specs(self.protocol)
        self.edges: tuple[tuple[S, S], ...] = tuple((o, d) for o, d, _ in specs)
        self.rows = np.array([index[o] for o, _, _ in specs], dtype=np.intp)
        self.cols = np.array([index[d] for _, d, _ in specs], dtype=np.intp)
        self._features = np.array([_SH_INDEX[f] for _, _, f in specs], dtype=np.intp)
        n = len(self.states)
        self._n = n
        self._absorbed = index[S.ABSORBED]
        self._start = index[S.S10_FAST]
        # Recurrent chain: the absorbing state (last) merged into the
        # start state — redirect its incoming edges, drop its row/column.
        merged_cols = np.where(self.cols == self._absorbed, self._start, self.cols)
        self._recurrent_flat = self.rows * (n - 1) + merged_cols
        self._transient_flat = self.rows * n + self.cols

    def edge_rates(self, points: Sequence[SignalingParameters]) -> np.ndarray:
        """The ``(K, E)`` edge-rate matrix for ``points``."""
        derived = np.array(
            [_singlehop_derived_row(self.protocol, params) for params in points]
        )
        return derived[:, self._features]

    def solve_batch(
        self, points: Sequence[SignalingParameters]
    ) -> list[SingleHopSolution]:
        """Solve every point; bit-identical to the per-point dense path."""
        points = list(points)
        if not points:
            return []
        rates = self.edge_rates(points)
        n = self._n
        m = n - 1  # both the recurrent and the transient block size
        try:
            recurrent = _fill_generator_diagonal(
                _assemble_dense(self._recurrent_flat, rates, m)
            )
            pi, bad_pi = batched_stationary_dense(recurrent)
            transient = _fill_generator_diagonal(
                _assemble_dense(self._transient_flat, rates, n)
            )
            times, bad_times = batched_absorption_times_dense(
                transient[:, :m, :m]
            )
        except np.linalg.LinAlgError:
            return [self._reference(params) for params in points]
        bad = bad_pi | bad_times
        solutions: list[SingleHopSolution] = []
        recurrent_states = self.states[:-1]
        for k, params in enumerate(points):
            if bad[k]:
                solutions.append(self._reference(params))
                continue
            stationary = {
                state: float(pi[k, i]) for i, state in enumerate(recurrent_states)
            }
            solutions.append(
                SingleHopSolution(
                    protocol=self.protocol,
                    params=params,
                    stationary=stationary,
                    inconsistency_ratio=1.0 - stationary[S.CONSISTENT],
                    expected_receiver_lifetime=float(times[k, self._start]),
                    message_breakdown=message_rate_components(
                        self.protocol, params, stationary
                    ),
                )
            )
        return solutions

    def _reference(self, params: SignalingParameters) -> SingleHopSolution:
        return SingleHopModel(self.protocol, params).solve()


# ----------------------------------------------------------------------
# Multi-hop templates (homogeneous and heterogeneous points)
# ----------------------------------------------------------------------


#: Chain solve backends: ``"template"`` is the historical exact-path
#: default (batched dense LAPACK below the sparse threshold, splu above
#: it); ``"structured"`` is the O(hops) block-Thomas kernel (tolerance
#: class).  ``"auto"`` resolves per task via :func:`select_chain_backend`.
CHAIN_BACKENDS = ("auto", "template", "structured")


def select_chain_backend(protocol: Protocol, hops: int) -> str:
    """The chain backend ``"auto"`` resolves to for ``(protocol, hops)``.

    Below :data:`~repro.core.markov.SPARSE_STATE_THRESHOLD` states the
    template's batched dense path stays the default — it is bit-identical
    to the historical per-point dense results, and the paper's own small
    chains must keep exact ``==`` parity.  At and above the threshold the
    template would fall to per-point splu factorizations, which already
    carry tolerance-class semantics; the structured O(hops) kernel takes
    over there, trading like for like (tolerance for tolerance) while
    dropping the per-point cost from a numeric factorization to a single
    linear recursion.
    """
    protocol = Protocol(protocol)
    n_states = 2 * hops + 1 + (1 if protocol is Protocol.HS else 0)
    if n_states >= _markov.SPARSE_STATE_THRESHOLD:
        return "structured"
    return "template"


class MultiHopTemplate:
    """Compiled structure of the Fig. 15/16 chain for ``(protocol, hops)``.

    One template serves both homogeneous points (``hops=None`` in the
    task, rates derived with the homogeneous reference helpers) and
    heterogeneous points (per-hop vectors, rates derived with the
    heterogeneous profile functions), because the chain structure is
    identical — only the rate values differ.

    Use :func:`multihop_template` to get the memoized instance.
    """

    def __init__(self, protocol: Protocol, hops: int) -> None:
        self.protocol = Protocol(protocol)
        if self.protocol not in Protocol.multihop_family():
            raise ValueError(
                f"{self.protocol.value} is not part of the multi-hop analysis"
            )
        if hops < 1:
            raise ValueError(f"hops must be >= 1, got {hops}")
        self.hops = hops
        with_recovery = self.protocol is Protocol.HS
        self.states = multihop_state_space(hops, with_recovery=with_recovery)
        n = hops
        ns = len(self.states)
        self._n_states = ns
        # State indexing mirrors multihop_state_space order:
        # fast (i,0) -> i for i in 0..n; slow (i,1) -> n+1+i; RECOVERY last.
        fast = lambda i: i  # noqa: E731 - tiny local alias
        slow = lambda i: n + 1 + i  # noqa: E731
        # Feature layout: [update, advance(n), lose(n), recover(n), extra].
        self._f_update = 0
        self._f_advance = 1
        self._f_lose = 1 + n
        self._f_recover = 1 + 2 * n
        self._f_extra = 1 + 3 * n
        self.n_features = self._f_extra + (2 if with_recovery else n)
        specs: list[tuple[int, int, int]] = []
        for si in range(1, ns):
            specs.append((si, fast(0), self._f_update))
        for i in range(n):
            specs.append((fast(i), fast(i + 1), self._f_advance + i))
            specs.append((fast(i), slow(i), self._f_lose + i))
            specs.append((slow(i), fast(i + 1), self._f_recover + i))
        if not with_recovery:
            for si, state in enumerate(self.states):
                for j in range(state.consistent_hops):
                    specs.append((si, slow(j), self._f_extra + j))
        else:
            recovery_index = ns - 1
            for si in range(ns - 1):
                specs.append((si, recovery_index, self._f_extra))
            specs.append((recovery_index, fast(0), self._f_extra + 1))
        self.rows = np.array([r for r, _, _ in specs], dtype=np.intp)
        self.cols = np.array([c for _, c, _ in specs], dtype=np.intp)
        self._features = np.array([f for _, _, f in specs], dtype=np.intp)
        self._flat = self.rows * ns + self.cols
        self._sparse_pattern: _SparseStationaryPattern | None = None

    # -- rate evaluation ------------------------------------------------

    def _derived_homogeneous(self, params: MultiHopParameters) -> np.ndarray:
        n = self.hops
        row = np.empty(self.n_features)
        row[self._f_update] = params.update_rate
        success = 1.0 - params.loss_rate
        row[self._f_advance : self._f_advance + n] = success / params.delay
        row[self._f_lose : self._f_lose + n] = params.loss_rate / params.delay
        for i in range(n):
            row[self._f_recover + i] = slow_path_recovery_rate(
                self.protocol, params, i + 1
            )
        if self.protocol is Protocol.HS:
            row[self._f_extra] = n * params.external_false_signal_rate
            row[self._f_extra + 1] = 1.0 / (2.0 * n * params.delay)
        else:
            for j in range(n):
                row[self._f_extra + j] = first_timeout_rate(params, j)
        return row

    def _derived_heterogeneous(
        self, params: MultiHopParameters, hops: tuple[HeterogeneousHop, ...]
    ) -> np.ndarray:
        n = self.hops
        reach = reach_profile(hops)
        row = np.empty(self.n_features)
        row[self._f_update] = params.update_rate
        for i, hop in enumerate(hops):
            row[self._f_advance + i] = (1.0 - hop.loss_rate) / hop.delay
            row[self._f_lose + i] = hop.loss_rate / hop.delay
        row[self._f_recover : self._f_recover + n] = recovery_rate_profile(
            self.protocol, params, hops, reach
        )
        if self.protocol is Protocol.HS:
            mean_delay = sum(h.delay for h in hops) / n
            row[self._f_extra] = n * params.external_false_signal_rate
            row[self._f_extra + 1] = 1.0 / (2.0 * n * mean_delay)
        else:
            row[self._f_extra : self._f_extra + n] = first_timeout_profile(
                params, reach
            )
        return row

    def derived_rows(
        self,
        points: Sequence[tuple[MultiHopParameters, tuple[HeterogeneousHop, ...] | None]],
    ) -> np.ndarray:
        """The ``(K, n_features)`` derived-feature matrix for ``points``."""
        derived = np.empty((len(points), self.n_features))
        for k, (params, hops) in enumerate(points):
            if hops is None:
                derived[k] = self._derived_homogeneous(params)
            else:
                derived[k] = self._derived_heterogeneous(params, hops)
        return derived

    def edge_rates(
        self,
        points: Sequence[tuple[MultiHopParameters, tuple[HeterogeneousHop, ...] | None]],
    ) -> np.ndarray:
        """The ``(K, E)`` edge-rate matrix for ``points``."""
        return self.derived_rows(points)[:, self._features]

    # -- solving --------------------------------------------------------

    def _use_sparse(self) -> bool:
        return (
            self._n_states >= _markov.SPARSE_STATE_THRESHOLD
            and _markov._sparse_modules() is not None
        )

    def _stationary_batch(self, rates: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(pi, bad)`` for all points, dense-batched or sparse-looped."""
        ns = self._n_states
        if not self._use_sparse():
            generators = _fill_generator_diagonal(
                _assemble_dense(self._flat, rates, ns)
            )
            return batched_stationary_dense(generators)
        if self._sparse_pattern is None:
            self._sparse_pattern = _SparseStationaryPattern(self.rows, self.cols, ns)
        return _sparse_batch(self._sparse_pattern, rates, type(self).__name__)

    def _stationary_structured(
        self, derived: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(pi, bad)`` through the O(hops) block-Thomas chain kernel.

        Feeds the derived-feature rows straight into
        :func:`~repro.core.markov.batched_stationary_chain` — the chain
        structure never has to be scattered into a generator matrix, so
        per-point cost is linear in hops instead of cubic in states.
        """
        n = self.hops
        update = derived[:, self._f_update]
        advance = derived[:, self._f_advance : self._f_advance + n]
        lose = derived[:, self._f_lose : self._f_lose + n]
        recover = derived[:, self._f_recover : self._f_recover + n]
        if self.protocol is Protocol.HS:
            return batched_stationary_chain(
                update,
                advance,
                lose,
                recover,
                false_signal=derived[:, self._f_extra],
                recovery_return=derived[:, self._f_extra + 1],
            )
        return batched_stationary_chain(
            update,
            advance,
            lose,
            recover,
            timeouts=derived[:, self._f_extra : self._f_extra + n],
        )

    def solve_batch(
        self,
        points: Sequence[tuple[MultiHopParameters, tuple[HeterogeneousHop, ...] | None]],
        backend: str = "template",
    ) -> list[MultiHopSolution]:
        """Solve every point (homogeneous or heterogeneous tasks).

        ``backend="template"`` is the historical fast path: batched
        dense LAPACK below the sparse threshold (bit-identical to the
        reference), structure-cached splu above it.  ``"structured"``
        routes through the O(hops) chain kernel instead — tolerance
        class, per-point fallback to the reference on any point the
        kernel cannot certify.
        """
        if backend not in CHAIN_BACKENDS:
            raise ValueError(
                f"chain backend must be one of {CHAIN_BACKENDS}, got {backend!r}"
            )
        if backend == "auto":
            backend = select_chain_backend(self.protocol, self.hops)
        points = list(points)
        if not points:
            return []
        for params, hops in points:
            if params.hops != self.hops:
                raise ValueError(
                    f"task has {params.hops} hops, template compiled for {self.hops}"
                )
            if hops is not None and len(hops) != self.hops:
                raise ValueError(
                    f"hop vector length {len(hops)} != template hops {self.hops}"
                )
        derived = self.derived_rows(points)
        try:
            if backend == "structured":
                pi, bad = self._stationary_structured(derived)
            else:
                pi, bad = self._stationary_batch(derived[:, self._features])
        except np.linalg.LinAlgError:
            return [self._reference(params, hops) for params, hops in points]
        solutions: list[MultiHopSolution] = []
        for k, (params, hops) in enumerate(points):
            if bad[k]:
                solutions.append(self._reference(params, hops))
                continue
            stationary = {
                state: float(pi[k, i]) for i, state in enumerate(self.states)
            }
            if hops is None:
                breakdown = multihop_message_components(
                    self.protocol, params, stationary
                )
            else:
                breakdown = heterogeneous_message_components(
                    self.protocol, params, hops, stationary
                )
            solutions.append(
                MultiHopSolution(
                    protocol=self.protocol,
                    params=params,
                    stationary=stationary,
                    message_breakdown=breakdown,
                )
            )
        return solutions

    def _reference(
        self,
        params: MultiHopParameters,
        hops: tuple[HeterogeneousHop, ...] | None,
    ) -> MultiHopSolution:
        if hops is None:
            return MultiHopModel(self.protocol, params).solve()
        return HeterogeneousMultiHopModel(self.protocol, params, hops).solve()


# ----------------------------------------------------------------------
# Tree templates (multicast fan-out topologies)
# ----------------------------------------------------------------------


class TreeTemplate:
    """Compiled structure of one ``(protocol, topology)`` tree chain.

    The transition structure comes from the same
    :func:`~repro.core.multihop.tree_transitions.tree_transition_specs`
    list the reference model builds its rate dict from, so the COO
    arrays scatter *exactly* the reference's edges in the reference's
    accumulation order; each transition tag maps to one derived
    feature whose value is computed by the shared
    :func:`~repro.core.multihop.tree_transitions.tree_tag_rate` helper.
    Dense batches therefore reproduce the per-point dense results bit
    for bit, and above the sparse crossover the template keeps its
    fixed CSC pattern exactly like :class:`MultiHopTemplate`.

    ``solver="iterative"`` compiles the same structure but solves every
    point through the pattern's ILU/GMRES path (with ``max_states``
    raised to
    :data:`~repro.core.multihop.tree_states.MAX_ENUMERATED_TREE_STATES`
    by :func:`iterative_tree_template`) — a *tolerance*-class backend,
    never substituted for the exact one.

    Use :func:`tree_template` / :func:`iterative_tree_template` to get
    the memoized instances.
    """

    def __init__(
        self,
        protocol: Protocol,
        topology: Topology,
        max_states: int | None = None,
        solver: str = "direct",
    ) -> None:
        self.protocol = Protocol(protocol)
        if self.protocol not in Protocol.multihop_family():
            raise ValueError(
                f"{self.protocol.value} is not part of the multi-hop analysis"
            )
        if solver not in ("direct", "iterative"):
            raise ValueError(f"solver must be 'direct' or 'iterative', got {solver!r}")
        self.topology = topology
        self.max_states = max_states
        self.solver = solver
        with_recovery = self.protocol is Protocol.HS
        self.states = tree_state_space(topology, with_recovery, max_states)
        index = {state: i for i, state in enumerate(self.states)}
        ns = len(self.states)
        self._n_states = ns
        specs = tree_transition_specs(self.protocol, topology, max_states)
        # One derived feature per distinct transition tag, in first-seen
        # order (the tag set is tiny: update/advance/lose plus one
        # recover and timeout slot per depth, or the two HS extras).
        tag_index: dict[tuple, int] = {}
        features: list[int] = []
        for _, _, tag in specs:
            if tag not in tag_index:
                tag_index[tag] = len(tag_index)
            features.append(tag_index[tag])
        self._tags = tuple(tag_index)
        self.n_features = len(self._tags)
        self.rows = np.array([index[o] for o, _, _ in specs], dtype=np.intp)
        self.cols = np.array([index[d] for _, d, _ in specs], dtype=np.intp)
        self._features = np.array(features, dtype=np.intp)
        self._flat = self.rows * ns + self.cols
        self._sparse_pattern: _SparseStationaryPattern | None = None

    def edge_rates(self, points: Sequence[MultiHopParameters]) -> np.ndarray:
        """The ``(K, E)`` edge-rate matrix for ``points``."""
        derived = np.empty((len(points), self.n_features))
        for k, params in enumerate(points):
            for j, tag in enumerate(self._tags):
                derived[k, j] = tree_tag_rate(
                    self.protocol, params, self.topology, tag
                )
        return derived[:, self._features]

    def _use_sparse(self) -> bool:
        return (
            self._n_states >= _markov.SPARSE_STATE_THRESHOLD
            and _markov._sparse_modules() is not None
        )

    def _stationary_batch(self, rates: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        ns = self._n_states
        if self.solver == "iterative":
            if self._sparse_pattern is None:
                self._sparse_pattern = _SparseStationaryPattern(
                    self.rows, self.cols, ns
                )
            return _iterative_batch(self._sparse_pattern, rates, type(self).__name__)
        if not self._use_sparse():
            generators = _fill_generator_diagonal(
                _assemble_dense(self._flat, rates, ns)
            )
            return batched_stationary_dense(generators)
        if self._sparse_pattern is None:
            self._sparse_pattern = _SparseStationaryPattern(self.rows, self.cols, ns)
        return _sparse_batch(self._sparse_pattern, rates, type(self).__name__)

    def solve_batch(self, points: Sequence[MultiHopParameters]) -> list[TreeSolution]:
        """Solve every point; bit-identical to the per-point dense path."""
        points = list(points)
        if not points:
            return []
        for params in points:
            if params.hops != self.topology.num_edges:
                raise ValueError(
                    f"task has {params.hops} hops, template compiled for a "
                    f"{self.topology.num_edges}-edge topology"
                )
        rates = self.edge_rates(points)
        try:
            pi, bad = self._stationary_batch(rates)
        except np.linalg.LinAlgError:
            return [self._reference(params) for params in points]
        solutions: list[TreeSolution] = []
        for k, params in enumerate(points):
            if bad[k]:
                solutions.append(self._reference(params))
                continue
            stationary = {
                state: float(pi[k, i]) for i, state in enumerate(self.states)
            }
            solutions.append(
                TreeSolution(
                    protocol=self.protocol,
                    params=params,
                    topology=self.topology,
                    stationary=stationary,
                    message_breakdown=tree_message_components(
                        self.protocol, params, self.topology, stationary
                    ),
                )
            )
        return solutions

    def _reference(self, params: MultiHopParameters) -> TreeSolution:
        return TreeModel(
            self.protocol,
            params,
            self.topology,
            max_states=self.max_states,
            solver="iterative" if self.solver == "iterative" else "auto",
        ).solve()


class LumpedTreeTemplate:
    """Compiled structure of one ``(protocol, topology)`` *lumped* chain.

    The orbit-space twin of :class:`TreeTemplate`: the COO arrays come
    from the same
    :func:`~repro.core.multihop.lumping.lumped_transition_specs` list
    :class:`~repro.core.multihop.lumping.LumpedTreeModel` accumulates
    its rate dict from, each tag's base rate is computed by the shared
    :func:`~repro.core.multihop.tree_transitions.tree_tag_rate` helper
    and scaled by the spec's integer multiplicity — the identical float
    product, scattered in the identical accumulation order — so the
    template and the reference lumped model stay bit-identical to each
    other.  (The *family* is a tolerance parity class relative to the
    direct enumeration: orbit aggregation reorders float additions.)

    Use :func:`lumped_tree_template` to get the memoized instance.
    """

    def __init__(self, protocol: Protocol, topology: Topology) -> None:
        self.protocol = Protocol(protocol)
        if self.protocol not in Protocol.multihop_family():
            raise ValueError(
                f"{self.protocol.value} is not part of the multi-hop analysis"
            )
        self.topology = topology
        with_recovery = self.protocol is Protocol.HS
        self.states = lumped_state_space(topology, with_recovery)
        index = {state: i for i, state in enumerate(self.states)}
        ns = len(self.states)
        self._n_states = ns
        specs = lumped_transition_specs(self.protocol, topology)
        tag_index: dict[tuple, int] = {}
        features: list[int] = []
        for _, _, tag, _ in specs:
            if tag not in tag_index:
                tag_index[tag] = len(tag_index)
            features.append(tag_index[tag])
        self._tags = tuple(tag_index)
        self.n_features = len(self._tags)
        self.rows = np.array([index[o] for o, _, _, _ in specs], dtype=np.intp)
        self.cols = np.array([index[d] for _, d, _, _ in specs], dtype=np.intp)
        self._features = np.array(features, dtype=np.intp)
        self._multiplicities = np.array(
            [mult for _, _, _, mult in specs], dtype=np.float64
        )
        self._flat = self.rows * ns + self.cols
        self._sparse_pattern: _SparseStationaryPattern | None = None

    def edge_rates(self, points: Sequence[MultiHopParameters]) -> np.ndarray:
        """The ``(K, E)`` edge-rate matrix: tag rate x multiplicity."""
        derived = np.empty((len(points), self.n_features))
        for k, params in enumerate(points):
            for j, tag in enumerate(self._tags):
                derived[k, j] = tree_tag_rate(
                    self.protocol, params, self.topology, tag
                )
        return derived[:, self._features] * self._multiplicities

    def _use_sparse(self) -> bool:
        return (
            self._n_states >= _markov.SPARSE_STATE_THRESHOLD
            and _markov._sparse_modules() is not None
        )

    def _stationary_batch(self, rates: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        ns = self._n_states
        if not self._use_sparse():
            generators = _fill_generator_diagonal(
                _assemble_dense(self._flat, rates, ns)
            )
            return batched_stationary_dense(generators)
        if self._sparse_pattern is None:
            self._sparse_pattern = _SparseStationaryPattern(self.rows, self.cols, ns)
        return _sparse_batch(self._sparse_pattern, rates, type(self).__name__)

    def solve_batch(
        self, points: Sequence[MultiHopParameters]
    ) -> list[LumpedTreeSolution]:
        """Solve every point; bit-identical to the per-point lumped model."""
        points = list(points)
        if not points:
            return []
        for params in points:
            if params.hops != self.topology.num_edges:
                raise ValueError(
                    f"task has {params.hops} hops, template compiled for a "
                    f"{self.topology.num_edges}-edge topology"
                )
        rates = self.edge_rates(points)
        try:
            pi, bad = self._stationary_batch(rates)
        except np.linalg.LinAlgError:
            return [self._reference(params) for params in points]
        solutions: list[LumpedTreeSolution] = []
        for k, params in enumerate(points):
            if bad[k]:
                solutions.append(self._reference(params))
                continue
            stationary = {
                state: float(pi[k, i]) for i, state in enumerate(self.states)
            }
            solutions.append(
                LumpedTreeSolution(
                    protocol=self.protocol,
                    params=params,
                    topology=self.topology,
                    stationary=stationary,
                    message_breakdown=lumped_message_components(
                        self.protocol, params, self.topology, stationary
                    ),
                )
            )
        return solutions

    def _reference(self, params: MultiHopParameters) -> LumpedTreeSolution:
        return LumpedTreeModel(self.protocol, params, self.topology).solve()


# ----------------------------------------------------------------------
# Gilbert-Elliott product templates (channel state x protocol state)
# ----------------------------------------------------------------------


class GilbertSingleHopTemplate:
    """Compiled structure of one protocol's single-hop product chain.

    Like :class:`TreeTemplate`, the COO arrays come from the same
    shared spec list the reference model accumulates its rate dict
    from (:func:`~repro.core.gilbert.transitions.gilbert_singlehop_specs`)
    and each tag's rate is computed by the shared
    :func:`~repro.core.gilbert.transitions.gilbert_singlehop_tag_rate`
    helper, so dense batches reproduce the per-point dense reference
    bit for bit.  Degenerate points (``loss_good == loss_bad``) never
    reach a template — :func:`solve_gilbert_singlehop_tasks` partitions
    them onto the i.i.d. template path first.

    Use :func:`gilbert_singlehop_template` for the memoized instance.
    """

    def __init__(self, protocol: Protocol) -> None:
        self.protocol = Protocol(protocol)
        self.states = gilbert_singlehop_states(self.protocol)
        index = {state: i for i, state in enumerate(self.states)}
        ns = len(self.states)
        self._n_states = ns
        specs = gilbert_singlehop_specs(self.protocol)
        tag_index: dict[tuple, int] = {}
        features: list[int] = []
        for _, _, tag in specs:
            if tag not in tag_index:
                tag_index[tag] = len(tag_index)
            features.append(tag_index[tag])
        self._tags = tuple(tag_index)
        self.n_features = len(self._tags)
        self.rows = np.array([index[o] for o, _, _ in specs], dtype=np.intp)
        self.cols = np.array([index[d] for _, d, _ in specs], dtype=np.intp)
        self._features = np.array(features, dtype=np.intp)
        self._flat = self.rows * ns + self.cols
        self._sparse_pattern: _SparseStationaryPattern | None = None

    def edge_rates(
        self,
        points: Sequence[tuple[SignalingParameters, GilbertElliottParameters]],
    ) -> np.ndarray:
        """The ``(K, E)`` edge-rate matrix for ``points``."""
        derived = np.empty((len(points), self.n_features))
        for k, (params, gilbert) in enumerate(points):
            check_singlehop_coverage(self.protocol, params, gilbert)
            for j, tag in enumerate(self._tags):
                derived[k, j] = gilbert_singlehop_tag_rate(
                    self.protocol, params, gilbert, tag
                )
        return derived[:, self._features]

    def _use_sparse(self) -> bool:
        return (
            self._n_states >= _markov.SPARSE_STATE_THRESHOLD
            and _markov._sparse_modules() is not None
        )

    def _stationary_batch(self, rates: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        ns = self._n_states
        if not self._use_sparse():
            generators = _fill_generator_diagonal(
                _assemble_dense(self._flat, rates, ns)
            )
            return batched_stationary_dense(generators)
        if self._sparse_pattern is None:
            self._sparse_pattern = _SparseStationaryPattern(self.rows, self.cols, ns)
        return _sparse_batch(self._sparse_pattern, rates, type(self).__name__)

    def solve_batch(
        self,
        points: Sequence[tuple[SignalingParameters, GilbertElliottParameters]],
    ) -> list[GilbertSingleHopSolution]:
        """Solve every point; bit-identical to the per-point dense path."""
        points = list(points)
        if not points:
            return []
        rates = self.edge_rates(points)
        try:
            pi, bad = self._stationary_batch(rates)
        except np.linalg.LinAlgError:
            return [self._reference(params, gilbert) for params, gilbert in points]
        solutions: list[GilbertSingleHopSolution] = []
        for k, (params, gilbert) in enumerate(points):
            if bad[k]:
                solutions.append(self._reference(params, gilbert))
                continue
            stationary = {
                state: float(pi[k, i]) for i, state in enumerate(self.states)
            }
            solutions.append(
                singlehop_solution_from_stationary(
                    self.protocol, params, gilbert, stationary
                )
            )
        return solutions

    def _reference(
        self, params: SignalingParameters, gilbert: GilbertElliottParameters
    ) -> GilbertSingleHopSolution:
        return GilbertSingleHopModel(self.protocol, params, gilbert).solve()


class GilbertMultiHopTemplate:
    """Compiled structure of the multi-hop product chain.

    Use :func:`gilbert_multihop_template` for the memoized instance.
    """

    def __init__(self, protocol: Protocol, hops: int) -> None:
        self.protocol = Protocol(protocol)
        if self.protocol not in Protocol.multihop_family():
            raise ValueError(
                f"{self.protocol.value} is not part of the multi-hop analysis"
            )
        if hops < 1:
            raise ValueError(f"hops must be >= 1, got {hops}")
        self.hops = hops
        self.states = gilbert_multihop_states(self.protocol, hops)
        index = {state: i for i, state in enumerate(self.states)}
        ns = len(self.states)
        self._n_states = ns
        specs = gilbert_multihop_specs(self.protocol, hops)
        tag_index: dict[tuple, int] = {}
        features: list[int] = []
        for _, _, tag in specs:
            if tag not in tag_index:
                tag_index[tag] = len(tag_index)
            features.append(tag_index[tag])
        self._tags = tuple(tag_index)
        self.n_features = len(self._tags)
        self.rows = np.array([index[o] for o, _, _ in specs], dtype=np.intp)
        self.cols = np.array([index[d] for _, d, _ in specs], dtype=np.intp)
        self._features = np.array(features, dtype=np.intp)
        self._flat = self.rows * ns + self.cols
        self._sparse_pattern: _SparseStationaryPattern | None = None

    def edge_rates(
        self,
        points: Sequence[tuple[MultiHopParameters, GilbertElliottParameters]],
    ) -> np.ndarray:
        """The ``(K, E)`` edge-rate matrix for ``points``."""
        derived = np.empty((len(points), self.n_features))
        for k, (params, gilbert) in enumerate(points):
            check_multihop_coverage(self.protocol, params, gilbert)
            for j, tag in enumerate(self._tags):
                derived[k, j] = gilbert_multihop_tag_rate(
                    self.protocol, params, gilbert, tag
                )
        return derived[:, self._features]

    def _use_sparse(self) -> bool:
        return (
            self._n_states >= _markov.SPARSE_STATE_THRESHOLD
            and _markov._sparse_modules() is not None
        )

    def _stationary_batch(self, rates: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        ns = self._n_states
        if not self._use_sparse():
            generators = _fill_generator_diagonal(
                _assemble_dense(self._flat, rates, ns)
            )
            return batched_stationary_dense(generators)
        if self._sparse_pattern is None:
            self._sparse_pattern = _SparseStationaryPattern(self.rows, self.cols, ns)
        return _sparse_batch(self._sparse_pattern, rates, type(self).__name__)

    def solve_batch(
        self,
        points: Sequence[tuple[MultiHopParameters, GilbertElliottParameters]],
    ) -> list[GilbertMultiHopSolution]:
        """Solve every point; bit-identical to the per-point dense path."""
        points = list(points)
        if not points:
            return []
        for params, _ in points:
            if params.hops != self.hops:
                raise ValueError(
                    f"task has {params.hops} hops, template compiled for {self.hops}"
                )
        rates = self.edge_rates(points)
        try:
            pi, bad = self._stationary_batch(rates)
        except np.linalg.LinAlgError:
            return [self._reference(params, gilbert) for params, gilbert in points]
        solutions: list[GilbertMultiHopSolution] = []
        for k, (params, gilbert) in enumerate(points):
            if bad[k]:
                solutions.append(self._reference(params, gilbert))
                continue
            stationary = {
                state: float(pi[k, i]) for i, state in enumerate(self.states)
            }
            solutions.append(
                multihop_solution_from_stationary(
                    self.protocol, params, gilbert, stationary
                )
            )
        return solutions

    def _reference(
        self, params: MultiHopParameters, gilbert: GilbertElliottParameters
    ) -> GilbertMultiHopSolution:
        return GilbertMultiHopModel(self.protocol, params, gilbert).solve()


# ----------------------------------------------------------------------
# Template registry and task-level entry points
# ----------------------------------------------------------------------


@functools.lru_cache(maxsize=64)
def singlehop_template(protocol: Protocol) -> SingleHopTemplate:
    """The memoized compiled template for ``protocol``."""
    return SingleHopTemplate(protocol)


@functools.lru_cache(maxsize=256)
def multihop_template(protocol: Protocol, hops: int) -> MultiHopTemplate:
    """The memoized compiled template for ``(protocol, hops)``."""
    return MultiHopTemplate(protocol, hops)


@functools.lru_cache(maxsize=128)
def tree_template(protocol: Protocol, topology: Topology) -> TreeTemplate:
    """The memoized compiled template for ``(protocol, topology)``."""
    return TreeTemplate(protocol, topology)


@functools.lru_cache(maxsize=128)
def lumped_tree_template(protocol: Protocol, topology: Topology) -> LumpedTreeTemplate:
    """The memoized compiled lumped template for ``(protocol, topology)``."""
    return LumpedTreeTemplate(protocol, topology)


@functools.lru_cache(maxsize=64)
def iterative_tree_template(protocol: Protocol, topology: Topology) -> TreeTemplate:
    """The memoized iterative-backend template for ``(protocol, topology)``.

    Enumerates the raw state space up to
    :data:`~repro.core.multihop.tree_states.MAX_ENUMERATED_TREE_STATES`
    and solves every point through ILU/GMRES — the tolerance-class
    escape hatch for topologies whose orbits do not compress.
    """
    return TreeTemplate(
        protocol,
        topology,
        max_states=MAX_ENUMERATED_TREE_STATES,
        solver="iterative",
    )


@functools.lru_cache(maxsize=64)
def gilbert_singlehop_template(protocol: Protocol) -> GilbertSingleHopTemplate:
    """The memoized compiled Gilbert product template for ``protocol``."""
    return GilbertSingleHopTemplate(protocol)


@functools.lru_cache(maxsize=256)
def gilbert_multihop_template(protocol: Protocol, hops: int) -> GilbertMultiHopTemplate:
    """The memoized compiled Gilbert product template for ``(protocol, hops)``."""
    return GilbertMultiHopTemplate(protocol, hops)


def _solve_grouped(tasks, group_key, solve_group):
    """Group tasks, solve each group batched, scatter to task order."""
    groups: dict[object, list[int]] = {}
    for position, task in enumerate(tasks):
        groups.setdefault(group_key(task), []).append(position)
    results: list[object] = [None] * len(tasks)
    for key, positions in groups.items():
        solved = solve_group(key, [tasks[p] for p in positions])
        for position, solution in zip(positions, solved):
            results[position] = solution
    return results


def solve_singlehop_tasks(
    tasks: Sequence[tuple[Protocol, SignalingParameters]],
) -> list[SingleHopSolution]:
    """Solve ``(protocol, params)`` tasks through compiled templates."""
    return _solve_grouped(
        list(tasks),
        lambda task: Protocol(task[0]),
        lambda protocol, group: singlehop_template(protocol).solve_batch(
            [params for _, params in group]
        ),
    )


def solve_multihop_tasks(
    tasks: Sequence[tuple[Protocol, MultiHopParameters]],
) -> list[MultiHopSolution]:
    """Solve homogeneous ``(protocol, params)`` tasks through templates."""
    return _solve_grouped(
        list(tasks),
        lambda task: (Protocol(task[0]), task[1].hops),
        lambda key, group: multihop_template(*key).solve_batch(
            [(params, None) for _, params in group]
        ),
    )


def solve_heterogeneous_tasks(
    tasks: Sequence[tuple[Protocol, MultiHopParameters, tuple[HeterogeneousHop, ...]]],
) -> list[MultiHopSolution]:
    """Solve ``(protocol, params, hop_vector)`` tasks through templates."""
    return _solve_grouped(
        list(tasks),
        lambda task: (Protocol(task[0]), task[1].hops),
        lambda key, group: multihop_template(*key).solve_batch(
            [(params, tuple(hops)) for _, params, hops in group]
        ),
    )


def solve_multihop_structured_tasks(
    tasks: Sequence[tuple[Protocol, MultiHopParameters]],
) -> list[MultiHopSolution]:
    """Solve homogeneous chain tasks through the O(hops) kernel.

    Same task shape as :func:`solve_multihop_tasks`, but every point
    runs the block-Thomas structured recursion instead of a generic LU
    factorization — tolerance parity class (the kernel reorders
    floating-point operations), with per-point reference fallback.
    """
    return _solve_grouped(
        list(tasks),
        lambda task: (Protocol(task[0]), task[1].hops),
        lambda key, group: multihop_template(*key).solve_batch(
            [(params, None) for _, params in group], backend="structured"
        ),
    )


def solve_heterogeneous_structured_tasks(
    tasks: Sequence[tuple[Protocol, MultiHopParameters, tuple[HeterogeneousHop, ...]]],
) -> list[MultiHopSolution]:
    """Solve heterogeneous chain tasks through the O(hops) kernel.

    Same task shape as :func:`solve_heterogeneous_tasks`; tolerance
    parity class, per-point reference fallback (see
    :func:`solve_multihop_structured_tasks`).
    """
    return _solve_grouped(
        list(tasks),
        lambda task: (Protocol(task[0]), task[1].hops),
        lambda key, group: multihop_template(*key).solve_batch(
            [(params, tuple(hops)) for _, params, hops in group],
            backend="structured",
        ),
    )


def solve_tree_tasks(
    tasks: Sequence[tuple[Protocol, MultiHopParameters, Topology]],
) -> list[TreeSolution]:
    """Solve ``(protocol, params, topology)`` tasks through templates."""
    return _solve_grouped(
        list(tasks),
        lambda task: (Protocol(task[0]), task[2]),
        lambda key, group: tree_template(*key).solve_batch(
            [params for _, params, _ in group]
        ),
    )


def solve_tree_lumped_tasks(
    tasks: Sequence[tuple[Protocol, MultiHopParameters, Topology]],
) -> list[LumpedTreeSolution]:
    """Solve tree tasks on the exact orbit (lumped) state space.

    Tolerance parity class relative to the direct enumeration: orbit
    aggregation reorders float additions (the lumping itself is exact —
    proved rationally in ``tests/core/test_tree_lumping.py``).
    """
    return _solve_grouped(
        list(tasks),
        lambda task: (Protocol(task[0]), task[2]),
        lambda key, group: lumped_tree_template(*key).solve_batch(
            [params for _, params, _ in group]
        ),
    )


def solve_tree_iterative_tasks(
    tasks: Sequence[tuple[Protocol, MultiHopParameters, Topology]],
) -> list[TreeSolution]:
    """Solve tree tasks through the ILU/GMRES iterative backend.

    Tolerance parity class: Krylov truncation bounds the residual (see
    :data:`~repro.core.markov.ITERATIVE_RTOL`) instead of factorizing
    exactly.  The raw-space escape hatch for topologies that neither
    fit the direct cap nor lump.
    """
    return _solve_grouped(
        list(tasks),
        lambda task: (Protocol(task[0]), task[2]),
        lambda key, group: iterative_tree_template(*key).solve_batch(
            [params for _, params, _ in group]
        ),
    )


def solve_gilbert_singlehop_tasks(
    tasks: Sequence[tuple[Protocol, SignalingParameters, GilbertElliottParameters]],
) -> list[GilbertSingleHopSolution]:
    """Solve ``(protocol, params, gilbert)`` tasks through templates.

    Degenerate channels (``loss_good == loss_bad``) take the i.i.d.
    template path at the common loss and are wrapped verbatim, so they
    stay bit-identical to the baseline results; all other points solve
    through the compiled product templates.
    """
    tasks = list(tasks)
    results: list[GilbertSingleHopSolution | None] = [None] * len(tasks)
    degenerate = [
        (position, task) for position, task in enumerate(tasks) if task[2].is_degenerate
    ]
    if degenerate:
        base = solve_singlehop_tasks(
            [
                (protocol, params.replace(loss_rate=gilbert.loss_good))
                for _, (protocol, params, gilbert) in degenerate
            ]
        )
        for (position, (_, params, gilbert)), solution in zip(degenerate, base):
            results[position] = degenerate_singlehop_solution(
                params, gilbert, solution
            )
    rest = [
        (position, task)
        for position, task in enumerate(tasks)
        if not task[2].is_degenerate
    ]
    solved = _solve_grouped(
        [task for _, task in rest],
        lambda task: Protocol(task[0]),
        lambda protocol, group: gilbert_singlehop_template(protocol).solve_batch(
            [(params, gilbert) for _, params, gilbert in group]
        ),
    )
    for (position, _), solution in zip(rest, solved):
        results[position] = solution
    return results


def solve_gilbert_multihop_tasks(
    tasks: Sequence[tuple[Protocol, MultiHopParameters, GilbertElliottParameters]],
) -> list[GilbertMultiHopSolution]:
    """Solve multi-hop ``(protocol, params, gilbert)`` tasks through templates.

    Degenerate channels delegate to the i.i.d. multi-hop template path
    (bit-identical to baseline); the rest solve through the compiled
    product templates.
    """
    tasks = list(tasks)
    results: list[GilbertMultiHopSolution | None] = [None] * len(tasks)
    degenerate = [
        (position, task) for position, task in enumerate(tasks) if task[2].is_degenerate
    ]
    if degenerate:
        base = solve_multihop_tasks(
            [
                (protocol, params.replace(loss_rate=gilbert.loss_good))
                for _, (protocol, params, gilbert) in degenerate
            ]
        )
        for (position, (_, params, gilbert)), solution in zip(degenerate, base):
            results[position] = degenerate_multihop_solution(params, gilbert, solution)
    rest = [
        (position, task)
        for position, task in enumerate(tasks)
        if not task[2].is_degenerate
    ]
    solved = _solve_grouped(
        [task for _, task in rest],
        lambda task: (Protocol(task[0]), task[1].hops),
        lambda key, group: gilbert_multihop_template(*key).solve_batch(
            [(params, gilbert) for _, params, gilbert in group]
        ),
    )
    for (position, _), solution in zip(rest, solved):
        results[position] = solution
    return results
