"""Gilbert-Elliott channel x protocol product-chain models.

The analytic half of the ``burst_loss`` fault scenarios: the signaling
chains of the paper, re-solved on the product state space
``(protocol_state, channel_state)`` where the channel is the two-state
Gilbert-Elliott loss modulator from :mod:`repro.faults`.  See
:mod:`repro.core.gilbert.transitions` for the shared edge specs and
:mod:`repro.core.gilbert.model` for the reference models; the compiled
batch path lives in :mod:`repro.core.templates`.
"""

from repro.core.gilbert.model import (
    GilbertMultiHopModel,
    GilbertMultiHopSolution,
    GilbertSingleHopModel,
    GilbertSingleHopSolution,
)
from repro.core.gilbert.transitions import CHANNEL_STATES, ChannelState

__all__ = [
    "CHANNEL_STATES",
    "ChannelState",
    "GilbertMultiHopModel",
    "GilbertMultiHopSolution",
    "GilbertSingleHopModel",
    "GilbertSingleHopSolution",
]
