"""Product-chain transition specs: Gilbert-Elliott channel x protocol.

Under a Gilbert-Elliott channel the loss probability is itself a
two-state CTMC, so the analytic treatment is a *product* Markov chain
over ``(protocol_state, channel_state)``: within each channel slice the
protocol evolves with the reference transition structure evaluated at
that slice's loss probability, and every product state additionally
carries the channel flip edges.  This module builds the shared
``(origin, destination, tag)`` spec list — the same pattern as
:mod:`repro.core.multihop.tree_transitions` — consumed by both the
reference models (:mod:`repro.core.gilbert.model`) and the compiled
templates (:mod:`repro.core.templates`), so the two accumulate exactly
the same edges in the same order and stay bit-identical.

Tags:

* ``("proto", channel, origin, dest)`` — a reference protocol edge in
  one channel slice; its rate is looked up in the reference builder's
  rate dict evaluated at that channel's loss probability.
* ``("absorb", channel, origin)`` — single-hop only: a reference edge
  into the absorbing state, redirected to the renewal start
  ``(1,0)_1`` so the product chain is recurrent by construction
  (mirroring ``merge_states`` in the i.i.d. model).  These tags also
  carry the renewal flow used for the expected receiver lifetime.
* ``("to_bad",)`` / ``("to_good",)`` — the channel flip edges, one per
  product state, at the modulator's flip rates.

The edge *union* is compiled once per ``(protocol[, hops])`` from a
structural parameter point whose every candidate rate is positive
(loss 0.1 over the defaults); a coverage guard verifies at solve time
that the user's reference rate dicts never contain an edge outside that
union, so a future change to the reference builders cannot silently
desynchronize the product spec.
"""

from __future__ import annotations

import enum
import functools
from collections.abc import Mapping

from repro.core.multihop.states import multihop_state_space
from repro.core.multihop.transitions import build_multihop_rates
from repro.core.parameters import MultiHopParameters, SignalingParameters
from repro.core.protocols import Protocol
from repro.core.singlehop.states import SingleHopState as S
from repro.core.singlehop.transitions import build_transition_rates, state_space
from repro.faults.gilbert import GilbertElliottParameters

__all__ = [
    "CHANNEL_STATES",
    "ChannelState",
    "build_gilbert_multihop_rates",
    "build_gilbert_singlehop_rates",
    "channel_loss",
    "check_multihop_coverage",
    "check_singlehop_coverage",
    "gilbert_absorption_flow",
    "gilbert_multihop_specs",
    "gilbert_multihop_states",
    "gilbert_multihop_tag_rate",
    "gilbert_singlehop_specs",
    "gilbert_singlehop_states",
    "gilbert_singlehop_tag_rate",
]


class ChannelState(str, enum.Enum):
    """The two states of the Gilbert-Elliott loss modulator."""

    GOOD = "G"
    BAD = "B"

    def __str__(self) -> str:
        return self.value


CHANNEL_STATES: tuple[ChannelState, ...] = (ChannelState.GOOD, ChannelState.BAD)

#: Structural loss probability used to compile the edge union: strictly
#: inside (0, 1) so every candidate reference edge has a positive rate
#: (over the default parameters) and therefore appears in the spec.
_STRUCTURAL_LOSS = 0.1


def channel_loss(gilbert: GilbertElliottParameters, channel: ChannelState) -> float:
    """The loss probability the channel applies in ``channel``."""
    if channel is ChannelState.GOOD:
        return gilbert.loss_good
    return gilbert.loss_bad


# ----------------------------------------------------------------------
# Structural edge unions and product state spaces
# ----------------------------------------------------------------------


@functools.lru_cache(maxsize=None)
def _singlehop_structural_edges(protocol: Protocol) -> tuple[tuple[S, S], ...]:
    params = SignalingParameters(loss_rate=_STRUCTURAL_LOSS)
    return tuple(build_transition_rates(protocol, params))


@functools.lru_cache(maxsize=None)
def _multihop_structural_edges(
    protocol: Protocol, hops: int
) -> tuple[tuple[object, object], ...]:
    params = MultiHopParameters(hops=hops, loss_rate=_STRUCTURAL_LOSS)
    return tuple(build_multihop_rates(protocol, params))


@functools.lru_cache(maxsize=None)
def gilbert_singlehop_states(
    protocol: Protocol,
) -> tuple[tuple[S, ChannelState], ...]:
    """Recurrent product states, channel-major (all good, then all bad)."""
    proto = tuple(state for state in state_space(protocol) if state is not S.ABSORBED)
    return tuple((state, channel) for channel in CHANNEL_STATES for state in proto)


@functools.lru_cache(maxsize=None)
def gilbert_multihop_states(
    protocol: Protocol, hops: int
) -> tuple[tuple[object, ChannelState], ...]:
    """Multi-hop product states, channel-major (all good, then all bad)."""
    proto = multihop_state_space(hops, with_recovery=protocol is Protocol.HS)
    return tuple((state, channel) for channel in CHANNEL_STATES for state in proto)


# ----------------------------------------------------------------------
# Shared (origin, destination, tag) specs
# ----------------------------------------------------------------------


@functools.lru_cache(maxsize=None)
def gilbert_singlehop_specs(
    protocol: Protocol,
) -> tuple[tuple[object, object, tuple], ...]:
    """The single-hop product edge list in canonical build order."""
    specs: list[tuple[object, object, tuple]] = []
    for channel in CHANNEL_STATES:
        for origin, dest in _singlehop_structural_edges(protocol):
            if dest is S.ABSORBED:
                specs.append(
                    (
                        (origin, channel),
                        (S.S10_FAST, channel),
                        ("absorb", channel, origin),
                    )
                )
            else:
                specs.append(
                    (
                        (origin, channel),
                        (dest, channel),
                        ("proto", channel, origin, dest),
                    )
                )
    for state in gilbert_singlehop_states(protocol):
        proto_state, channel = state
        if channel is ChannelState.GOOD:
            specs.append((state, (proto_state, ChannelState.BAD), ("to_bad",)))
        else:
            specs.append((state, (proto_state, ChannelState.GOOD), ("to_good",)))
    return tuple(specs)


@functools.lru_cache(maxsize=None)
def gilbert_multihop_specs(
    protocol: Protocol, hops: int
) -> tuple[tuple[object, object, tuple], ...]:
    """The multi-hop product edge list in canonical build order."""
    specs: list[tuple[object, object, tuple]] = []
    for channel in CHANNEL_STATES:
        for origin, dest in _multihop_structural_edges(protocol, hops):
            specs.append(
                ((origin, channel), (dest, channel), ("proto", channel, origin, dest))
            )
    for state in gilbert_multihop_states(protocol, hops):
        proto_state, channel = state
        if channel is ChannelState.GOOD:
            specs.append((state, (proto_state, ChannelState.BAD), ("to_bad",)))
        else:
            specs.append((state, (proto_state, ChannelState.GOOD), ("to_good",)))
    return tuple(specs)


# ----------------------------------------------------------------------
# Tag -> rate evaluation (shared by reference models and templates)
# ----------------------------------------------------------------------


@functools.lru_cache(maxsize=4096)
def _singlehop_channel_rates(
    protocol: Protocol, params: SignalingParameters, loss: float
) -> dict[tuple[S, S], float]:
    return build_transition_rates(protocol, params.replace(loss_rate=loss))


@functools.lru_cache(maxsize=4096)
def _multihop_channel_rates(
    protocol: Protocol, params: MultiHopParameters, loss: float
) -> dict[tuple[object, object], float]:
    return build_multihop_rates(protocol, params.replace(loss_rate=loss))


def gilbert_singlehop_tag_rate(
    protocol: Protocol,
    params: SignalingParameters,
    gilbert: GilbertElliottParameters,
    tag: tuple,
) -> float:
    """The rate of one single-hop product transition tag."""
    kind = tag[0]
    if kind == "to_bad":
        return gilbert.good_to_bad
    if kind == "to_good":
        return gilbert.bad_to_good
    channel = tag[1]
    rates = _singlehop_channel_rates(protocol, params, channel_loss(gilbert, channel))
    if kind == "proto":
        return rates.get((tag[2], tag[3]), 0.0)
    return rates.get((tag[2], S.ABSORBED), 0.0)  # "absorb"


def gilbert_multihop_tag_rate(
    protocol: Protocol,
    params: MultiHopParameters,
    gilbert: GilbertElliottParameters,
    tag: tuple,
) -> float:
    """The rate of one multi-hop product transition tag."""
    kind = tag[0]
    if kind == "to_bad":
        return gilbert.good_to_bad
    if kind == "to_good":
        return gilbert.bad_to_good
    channel = tag[1]
    rates = _multihop_channel_rates(protocol, params, channel_loss(gilbert, channel))
    return rates.get((tag[2], tag[3]), 0.0)


def _check_edge_coverage(
    label: str,
    structural: tuple[tuple[object, object], ...],
    user_rates: Mapping[tuple[object, object], float],
) -> None:
    extra = sorted(str(key) for key in set(user_rates) - set(structural))
    if extra:
        raise RuntimeError(
            f"{label} reference rates contain edges outside the compiled "
            f"Gilbert product spec: {extra}; the reference transition builder "
            "has grown edges the product spec does not know about"
        )


def check_singlehop_coverage(
    protocol: Protocol,
    params: SignalingParameters,
    gilbert: GilbertElliottParameters,
) -> None:
    """Raise if the reference edge set escapes the compiled spec."""
    structural = _singlehop_structural_edges(protocol)
    for channel in CHANNEL_STATES:
        user = _singlehop_channel_rates(protocol, params, channel_loss(gilbert, channel))
        _check_edge_coverage("single-hop", structural, user)


def check_multihop_coverage(
    protocol: Protocol,
    params: MultiHopParameters,
    gilbert: GilbertElliottParameters,
) -> None:
    """Raise if the reference edge set escapes the compiled spec."""
    structural = _multihop_structural_edges(protocol, params.hops)
    for channel in CHANNEL_STATES:
        user = _multihop_channel_rates(protocol, params, channel_loss(gilbert, channel))
        _check_edge_coverage("multi-hop", structural, user)


# ----------------------------------------------------------------------
# Rate-dict builders (reference-model path)
# ----------------------------------------------------------------------


def build_gilbert_singlehop_rates(
    protocol: Protocol,
    params: SignalingParameters,
    gilbert: GilbertElliottParameters,
) -> dict[tuple[object, object], float]:
    """All single-hop product transition rates, spec-order accumulated."""
    check_singlehop_coverage(protocol, params, gilbert)
    rates: dict[tuple[object, object], float] = {}
    for origin, dest, tag in gilbert_singlehop_specs(protocol):
        rate = gilbert_singlehop_tag_rate(protocol, params, gilbert, tag)
        if rate <= 0.0:
            continue
        key = (origin, dest)
        rates[key] = rates.get(key, 0.0) + rate
    return rates


def build_gilbert_multihop_rates(
    protocol: Protocol,
    params: MultiHopParameters,
    gilbert: GilbertElliottParameters,
) -> dict[tuple[object, object], float]:
    """All multi-hop product transition rates, spec-order accumulated."""
    check_multihop_coverage(protocol, params, gilbert)
    rates: dict[tuple[object, object], float] = {}
    for origin, dest, tag in gilbert_multihop_specs(protocol, params.hops):
        rate = gilbert_multihop_tag_rate(protocol, params, gilbert, tag)
        if rate <= 0.0:
            continue
        key = (origin, dest)
        rates[key] = rates.get(key, 0.0) + rate
    return rates


def gilbert_absorption_flow(
    protocol: Protocol,
    params: SignalingParameters,
    gilbert: GilbertElliottParameters,
    stationary: Mapping[tuple[object, ChannelState], float],
) -> float:
    """Stationary rate of renewal (absorption) events in the product chain.

    By renewal-reward the expected receiver lifetime is the mean
    inter-absorption time, ``1 / flow``.
    """
    flow = 0.0
    for origin, _dest, tag in gilbert_singlehop_specs(protocol):
        if tag[0] != "absorb":
            continue
        rate = gilbert_singlehop_tag_rate(protocol, params, gilbert, tag)
        flow += rate * stationary.get(origin, 0.0)
    return flow
