"""Analytic models for signaling over a Gilbert-Elliott channel.

:class:`GilbertSingleHopModel` and :class:`GilbertMultiHopModel` solve
the channel x protocol product chains built by
:mod:`repro.core.gilbert.transitions` and report the same metrics as
their i.i.d. counterparts (:class:`~repro.core.singlehop.model.SingleHopModel`,
:class:`~repro.core.multihop.model.MultiHopModel`), so the ``burst_loss``
scenarios can put bursty and i.i.d. curves on one axis.

Metric definitions on the product chain:

* inconsistency — one minus the total (both-channel) mass of the
  consistent protocol state;
* expected receiver lifetime (single-hop) — by renewal-reward, the
  reciprocal of the stationary absorption-edge flow (the product chain
  is built recurrent, with absorbing edges redirected to the renewal
  start, so the flow through those edges is the renewal rate);
* message breakdown — the per-channel conditional protocol distribution
  fed through the reference message-component functions at that
  channel's loss probability, weighted by channel occupancy.  The
  components are linear in the distribution, so this is exact.

**Degeneracy contract:** when ``loss_good == loss_bad`` the modulator is
invisible and the models delegate to the i.i.d. models outright —
metrics are copied verbatim (bit-identical, not merely close) and the
product stationary distribution is synthesized in exact product form
(channel occupancy times i.i.d. mass).
"""

from __future__ import annotations

import dataclasses

from repro.core.gilbert.transitions import (
    CHANNEL_STATES,
    ChannelState,
    build_gilbert_multihop_rates,
    build_gilbert_singlehop_rates,
    channel_loss,
    gilbert_absorption_flow,
    gilbert_multihop_states,
    gilbert_singlehop_states,
)
from repro.core.markov import ContinuousTimeMarkovChain
from repro.core.multihop.messages import multihop_message_components
from repro.core.multihop.model import MultiHopModel, MultiHopSolution
from repro.core.multihop.states import RECOVERY, HopState, multihop_state_space
from repro.core.multihop.transitions import supported_protocols
from repro.core.parameters import MultiHopParameters, SignalingParameters
from repro.core.protocols import Protocol
from repro.core.singlehop.messages import message_rate_components
from repro.core.singlehop.model import SingleHopModel, SingleHopSolution
from repro.core.singlehop.states import SingleHopState as S
from repro.core.singlehop.transitions import state_space
from repro.faults.gilbert import GilbertElliottParameters

__all__ = [
    "GilbertMultiHopModel",
    "GilbertMultiHopSolution",
    "GilbertSingleHopModel",
    "GilbertSingleHopSolution",
    "degenerate_multihop_solution",
    "degenerate_singlehop_solution",
    "multihop_solution_from_stationary",
    "singlehop_solution_from_stationary",
]


@dataclasses.dataclass(frozen=True)
class GilbertSingleHopSolution:
    """Solved single-hop metrics under a Gilbert-Elliott channel.

    ``params.loss_rate`` is superseded by the channel's per-state loss
    probabilities; every other field of ``params`` is in effect.
    """

    protocol: Protocol
    params: SignalingParameters
    gilbert: GilbertElliottParameters
    stationary: dict[tuple[S, ChannelState], float]
    inconsistency_ratio: float
    expected_receiver_lifetime: float
    message_breakdown: dict[str, float]

    @property
    def message_rate(self) -> float:
        """Stationary signaling message rate ``m`` (messages/s)."""
        return sum(self.message_breakdown.values())

    @property
    def total_messages(self) -> float:
        """``Lambda = L * m`` — expected messages over a session."""
        return self.expected_receiver_lifetime * self.message_rate

    @property
    def normalized_message_rate(self) -> float:
        """``M = Lambda * mu_r`` — messages per mean sender session."""
        return self.total_messages * self.params.removal_rate

    def integrated_cost(self, weight: float = 10.0) -> float:
        """``C = weight * I + M`` (eq. 8); ``weight`` in messages/s."""
        if weight < 0:
            raise ValueError(f"weight must be non-negative, got {weight}")
        return weight * self.inconsistency_ratio + self.normalized_message_rate

    def occupancy(self, state: tuple[S, ChannelState]) -> float:
        """Stationary probability of one product state."""
        return self.stationary.get(state, 0.0)

    def channel_occupancy(self, channel: ChannelState) -> float:
        """Total stationary mass of one channel slice."""
        return sum(
            probability
            for (_, state_channel), probability in self.stationary.items()
            if state_channel is channel
        )


@dataclasses.dataclass(frozen=True)
class GilbertMultiHopSolution:
    """Solved multi-hop metrics under a Gilbert-Elliott channel.

    All hops share one channel process (the model's bursts are
    path-wide, matching the simulator's single shared modulator);
    ``params.loss_rate`` is superseded by the channel.
    """

    protocol: Protocol
    params: MultiHopParameters
    gilbert: GilbertElliottParameters
    stationary: dict[tuple[object, ChannelState], float]
    inconsistency_ratio: float
    message_breakdown: dict[str, float]

    @property
    def message_rate(self) -> float:
        """Total per-link transmissions per second."""
        return sum(self.message_breakdown.values())

    def hop_inconsistency(self, hop: int) -> float:
        """Fraction of time hop ``hop`` (1-based) is inconsistent."""
        if not 1 <= hop <= self.params.hops:
            raise ValueError(f"hop must be in [1, {self.params.hops}], got {hop}")
        total = 0.0
        for (proto_state, _channel), probability in self.stationary.items():
            if proto_state is RECOVERY:
                total += probability
            elif isinstance(proto_state, HopState) and proto_state.consistent_hops < hop:
                total += probability
        return total

    def hop_profile(self) -> list[float]:
        """``[hop_inconsistency(1), ..., hop_inconsistency(N)]``."""
        return [self.hop_inconsistency(h) for h in range(1, self.params.hops + 1)]

    def integrated_cost(self, weight: float = 10.0) -> float:
        """``weight * I + message_rate`` — the eq. (8) cost in this regime."""
        if weight < 0:
            raise ValueError(f"weight must be non-negative, got {weight}")
        return weight * self.inconsistency_ratio + self.message_rate

    def channel_occupancy(self, channel: ChannelState) -> float:
        """Total stationary mass of one channel slice."""
        return sum(
            probability
            for (_, state_channel), probability in self.stationary.items()
            if state_channel is channel
        )


# ----------------------------------------------------------------------
# Solution constructors (shared between models and compiled templates)
# ----------------------------------------------------------------------


def _blended_singlehop_breakdown(
    protocol: Protocol,
    params: SignalingParameters,
    gilbert: GilbertElliottParameters,
    stationary: dict[tuple[S, ChannelState], float],
) -> dict[str, float]:
    proto_states = tuple(s for s in state_space(protocol) if s is not S.ABSORBED)
    totals: dict[str, float] = {}
    for channel in CHANNEL_STATES:
        weight = sum(stationary.get((s, channel), 0.0) for s in proto_states)
        if weight <= 0.0:
            continue
        conditional = {
            s: stationary.get((s, channel), 0.0) / weight for s in proto_states
        }
        components = message_rate_components(
            protocol,
            params.replace(loss_rate=channel_loss(gilbert, channel)),
            conditional,
        )
        for key, value in components.items():
            totals[key] = totals.get(key, 0.0) + weight * value
    return totals


def _blended_multihop_breakdown(
    protocol: Protocol,
    params: MultiHopParameters,
    gilbert: GilbertElliottParameters,
    stationary: dict[tuple[object, ChannelState], float],
) -> dict[str, float]:
    proto_states = multihop_state_space(
        params.hops, with_recovery=protocol is Protocol.HS
    )
    totals: dict[str, float] = {}
    for channel in CHANNEL_STATES:
        weight = sum(stationary.get((s, channel), 0.0) for s in proto_states)
        if weight <= 0.0:
            continue
        conditional = {
            s: stationary.get((s, channel), 0.0) / weight for s in proto_states
        }
        components = multihop_message_components(
            protocol,
            params.replace(loss_rate=channel_loss(gilbert, channel)),
            conditional,
        )
        for key, value in components.items():
            totals[key] = totals.get(key, 0.0) + weight * value
    return totals


def singlehop_solution_from_stationary(
    protocol: Protocol,
    params: SignalingParameters,
    gilbert: GilbertElliottParameters,
    stationary: dict[tuple[S, ChannelState], float],
) -> GilbertSingleHopSolution:
    """Assemble the solution from a solved product stationary distribution."""
    inconsistency = 1.0 - sum(
        stationary.get((S.CONSISTENT, channel), 0.0) for channel in CHANNEL_STATES
    )
    flow = gilbert_absorption_flow(protocol, params, gilbert, stationary)
    lifetime = float("inf") if flow <= 0.0 else 1.0 / flow
    return GilbertSingleHopSolution(
        protocol=protocol,
        params=params,
        gilbert=gilbert,
        stationary=stationary,
        inconsistency_ratio=inconsistency,
        expected_receiver_lifetime=lifetime,
        message_breakdown=_blended_singlehop_breakdown(
            protocol, params, gilbert, stationary
        ),
    )


def multihop_solution_from_stationary(
    protocol: Protocol,
    params: MultiHopParameters,
    gilbert: GilbertElliottParameters,
    stationary: dict[tuple[object, ChannelState], float],
) -> GilbertMultiHopSolution:
    """Assemble the solution from a solved product stationary distribution."""
    top = HopState(params.hops, False)
    inconsistency = 1.0 - sum(
        stationary.get((top, channel), 0.0) for channel in CHANNEL_STATES
    )
    return GilbertMultiHopSolution(
        protocol=protocol,
        params=params,
        gilbert=gilbert,
        stationary=stationary,
        inconsistency_ratio=inconsistency,
        message_breakdown=_blended_multihop_breakdown(
            protocol, params, gilbert, stationary
        ),
    )


def _product_stationary(
    base_stationary: dict[object, float],
    gilbert: GilbertElliottParameters,
    states: tuple[tuple[object, ChannelState], ...],
) -> dict[tuple[object, ChannelState], float]:
    weights = {
        ChannelState.GOOD: gilbert.stationary_good,
        ChannelState.BAD: gilbert.stationary_bad,
    }
    return {
        (proto_state, channel): weights[channel] * base_stationary.get(proto_state, 0.0)
        for proto_state, channel in states
    }


def degenerate_singlehop_solution(
    params: SignalingParameters,
    gilbert: GilbertElliottParameters,
    base: SingleHopSolution,
) -> GilbertSingleHopSolution:
    """Wrap an i.i.d. solution as the degenerate Gilbert solution.

    Metrics are the base solution's floats verbatim; the product
    stationary distribution is the exact product of channel occupancy
    and i.i.d. mass (the modulator is independent of the protocol when
    it does not affect losses).
    """
    return GilbertSingleHopSolution(
        protocol=base.protocol,
        params=params,
        gilbert=gilbert,
        stationary=_product_stationary(
            base.stationary, gilbert, gilbert_singlehop_states(base.protocol)
        ),
        inconsistency_ratio=base.inconsistency_ratio,
        expected_receiver_lifetime=base.expected_receiver_lifetime,
        message_breakdown=dict(base.message_breakdown),
    )


def degenerate_multihop_solution(
    params: MultiHopParameters,
    gilbert: GilbertElliottParameters,
    base: MultiHopSolution,
) -> GilbertMultiHopSolution:
    """Wrap an i.i.d. multi-hop solution as the degenerate Gilbert solution."""
    return GilbertMultiHopSolution(
        protocol=base.protocol,
        params=params,
        gilbert=gilbert,
        stationary=_product_stationary(
            base.stationary,
            gilbert,
            gilbert_multihop_states(base.protocol, params.hops),
        ),
        inconsistency_ratio=base.inconsistency_ratio,
        message_breakdown=dict(base.message_breakdown),
    )


# ----------------------------------------------------------------------
# Reference models
# ----------------------------------------------------------------------


class GilbertSingleHopModel:
    """The single-hop product chain for one protocol and channel."""

    def __init__(
        self,
        protocol: Protocol,
        params: SignalingParameters,
        gilbert: GilbertElliottParameters,
    ) -> None:
        if params.removal_rate <= 0:
            raise ValueError(
                "single-hop model requires a finite session (removal_rate > 0); "
                "the multi-hop model covers the infinite-lifetime regime"
            )
        self.protocol = Protocol(protocol)
        self.params = params
        self.gilbert = gilbert

    def chain(self) -> ContinuousTimeMarkovChain:
        """The recurrent product CTMC."""
        return ContinuousTimeMarkovChain(
            gilbert_singlehop_states(self.protocol),
            build_gilbert_singlehop_rates(self.protocol, self.params, self.gilbert),
        )

    def solve(self) -> GilbertSingleHopSolution:
        """Solve the product chain (or delegate when degenerate)."""
        if self.gilbert.is_degenerate:
            base = SingleHopModel(
                self.protocol, self.params.replace(loss_rate=self.gilbert.loss_good)
            ).solve()
            return degenerate_singlehop_solution(self.params, self.gilbert, base)
        stationary = self.chain().stationary_distribution()
        return singlehop_solution_from_stationary(
            self.protocol, self.params, self.gilbert, stationary
        )


class GilbertMultiHopModel:
    """The multi-hop product chain for one protocol and channel."""

    def __init__(
        self,
        protocol: Protocol,
        params: MultiHopParameters,
        gilbert: GilbertElliottParameters,
    ) -> None:
        protocol = Protocol(protocol)
        if protocol not in supported_protocols():
            raise ValueError(
                f"{protocol.value} is not modeled in the multi-hop analysis; "
                f"use one of {[p.value for p in supported_protocols()]}"
            )
        self.protocol = protocol
        self.params = params
        self.gilbert = gilbert

    def chain(self) -> ContinuousTimeMarkovChain:
        """The recurrent product CTMC."""
        return ContinuousTimeMarkovChain(
            gilbert_multihop_states(self.protocol, self.params.hops),
            build_gilbert_multihop_rates(self.protocol, self.params, self.gilbert),
        )

    def solve(self) -> GilbertMultiHopSolution:
        """Solve the product chain (or delegate when degenerate)."""
        if self.gilbert.is_degenerate:
            base = MultiHopModel(
                self.protocol, self.params.replace(loss_rate=self.gilbert.loss_good)
            ).solve()
            return degenerate_multihop_solution(self.params, self.gilbert, base)
        stationary = self.chain().stationary_distribution()
        return multihop_solution_from_stationary(
            self.protocol, self.params, self.gilbert, stationary
        )
