"""Model parameters and the paper's default parameterizations.

The symbols follow §III-A.1 of the paper:

========================  =====================================================
``update_rate``           ``lambda_u`` — signaling state update rate (1/s)
``removal_rate``          ``mu_r`` — 1/mean signaling-state lifetime (1/s)
``loss_rate``             ``p_l`` — Bernoulli per-message channel loss
``delay``                 ``Delta`` — mean one-way channel delay (s)
``refresh_interval``      ``R`` — soft-state refresh timer (s)
``timeout_interval``      ``T`` — soft-state state-timeout timer (s)
``retransmission_interval``  ``K`` — reliable-transmission timer (s)
``external_false_signal_rate``  ``lambda_x`` — HS false external signal (1/s)
========================  =====================================================

Two default parameter sets are provided, decoded from the paper (the
published PDF's digits are glyph-garbled; DESIGN.md §5 documents every
decoding decision):

* :func:`kazaa_defaults` — the single-hop Kazaa peer/supernode scenario
  of §III-A.3;
* :func:`reservation_defaults` — the multi-hop bandwidth-reservation
  scenario of §III-B.2 (20 hops).
"""

from __future__ import annotations

import dataclasses

__all__ = [
    "MultiHopParameters",
    "SignalingParameters",
    "kazaa_defaults",
    "reservation_defaults",
]


@dataclasses.dataclass(frozen=True)
class SignalingParameters:
    """Parameters of the single-hop signaling model (paper §III-A)."""

    loss_rate: float = 0.02
    delay: float = 0.03
    update_rate: float = 1.0 / 20.0
    removal_rate: float = 1.0 / 1800.0
    refresh_interval: float = 5.0
    timeout_interval: float = 15.0
    retransmission_interval: float = 0.12
    external_false_signal_rate: float = 1e-4

    def __post_init__(self) -> None:
        # loss_rate == 1.0 is admitted for the Gilbert-Elliott bad-state
        # slice (repro.core.gilbert evaluates per-channel rates at the
        # bad-state loss, which may be certain loss).
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0, 1], got {self.loss_rate}")
        for name in (
            "delay",
            "refresh_interval",
            "timeout_interval",
            "retransmission_interval",
        ):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        for name in ("update_rate", "removal_rate", "external_false_signal_rate"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")

    @property
    def mean_session_length(self) -> float:
        """``1/mu_r`` — mean signaling-state lifetime at the sender."""
        if self.removal_rate == 0:
            return float("inf")
        return 1.0 / self.removal_rate

    @property
    def false_removal_rate(self) -> float:
        """``lambda_f = p_l^(T/R) / T`` (paper §III-A.1, SS model).

        A false (timeout-driven) removal requires every refresh within a
        timeout interval — ``T/R`` of them on average — to be lost.
        """
        if self.loss_rate == 0.0:
            return 0.0
        exponent = self.timeout_interval / self.refresh_interval
        return (self.loss_rate**exponent) / self.timeout_interval

    def replace(self, **changes: float) -> "SignalingParameters":
        """A copy with the given fields changed (sweep helper)."""
        return dataclasses.replace(self, **changes)

    def with_coupled_timers(
        self,
        refresh_interval: float,
        timeout_multiple: float = 3.0,
    ) -> "SignalingParameters":
        """Change ``R`` while keeping ``T = timeout_multiple * R``.

        The paper's refresh-timer sweeps (Figs. 6, 7, 9, 12, 19) hold
        ``T = 3R`` as the timers vary.
        """
        return self.replace(
            refresh_interval=refresh_interval,
            timeout_interval=timeout_multiple * refresh_interval,
        )


@dataclasses.dataclass(frozen=True)
class MultiHopParameters:
    """Parameters of the multi-hop signaling model (paper §III-B).

    Hops are homogeneous: every hop has the same loss rate and delay,
    and losses are independent (paper §III-B.1).  The sender-side state
    lifetime is infinite in this regime; only updates drive the chain.
    """

    hops: int = 20
    loss_rate: float = 0.02
    delay: float = 0.03
    update_rate: float = 1.0 / 60.0
    refresh_interval: float = 5.0
    timeout_interval: float = 15.0
    retransmission_interval: float = 0.12
    external_false_signal_rate: float = 0.02**3

    def __post_init__(self) -> None:
        if self.hops < 1:
            raise ValueError(f"hops must be >= 1, got {self.hops}")
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0, 1], got {self.loss_rate}")
        for name in (
            "delay",
            "refresh_interval",
            "timeout_interval",
            "retransmission_interval",
        ):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.update_rate <= 0:
            raise ValueError(f"update_rate must be positive, got {self.update_rate}")
        if self.external_false_signal_rate < 0:
            raise ValueError(
                "external_false_signal_rate must be non-negative, "
                f"got {self.external_false_signal_rate}"
            )

    def replace(self, **changes: float) -> "MultiHopParameters":
        """A copy with the given fields changed (sweep helper)."""
        return dataclasses.replace(self, **changes)

    def with_coupled_timers(
        self,
        refresh_interval: float,
        timeout_multiple: float = 3.0,
    ) -> "MultiHopParameters":
        """Change ``R`` while keeping ``T = timeout_multiple * R``."""
        return self.replace(
            refresh_interval=refresh_interval,
            timeout_interval=timeout_multiple * refresh_interval,
        )

    def refresh_reach_probability(self, hop: int) -> float:
        """Probability that a refresh crosses the first ``hop`` links."""
        if not 0 <= hop <= self.hops:
            raise ValueError(f"hop must be in [0, {self.hops}], got {hop}")
        return (1.0 - self.loss_rate) ** hop


def kazaa_defaults() -> SignalingParameters:
    """Single-hop defaults: the Kazaa peer/supernode scenario (§III-A.3).

    ``p_l = 0.02``, ``Delta = 30 ms``, ``1/lambda_u = 20 s``,
    ``1/mu_r = 1800 s``, ``R = 5 s``, ``T = 3R = 15 s``, ``K = 4*Delta``,
    ``lambda_x = 1e-4``.
    """
    return SignalingParameters()


def reservation_defaults() -> MultiHopParameters:
    """Multi-hop defaults: bandwidth reservation along 20 hops (§III-B.2).

    Per hop ``p_l = 0.02`` and ``Delta = 30 ms``; ``1/lambda_u = 60 s``,
    ``R = 5 s``, ``T = 15 s``, ``K = 4*Delta``, ``lambda_x = p_l^3``
    per receiver.
    """
    return MultiHopParameters()
