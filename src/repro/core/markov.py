"""Continuous-time Markov chain (CTMC) toolkit.

The paper's analysis rests on two standard CTMC computations, both
implemented here on top of numpy/scipy linear algebra:

* the **stationary distribution** of a recurrent chain — used for the
  inconsistency ratio (eq. 1) and the stationary message rates
  (eqs. 3-7), after the absorbing state is merged into the start state;
* the **mean time to absorption** of a transient chain — the expected
  receiver-side session length ``L`` in eq. 2.

States may be arbitrary hashable objects; the chain is specified as a
sparse mapping ``{(from_state, to_state): rate}``.

Three linear-algebra backends are provided: the original dense
``numpy.linalg.solve`` path, a ``scipy.sparse`` LU path that never
materializes the O(n²) generator, and an ILU-preconditioned iterative
path (GMRES, falling back to BiCGSTAB) for chains whose exact LU
factorization fills in catastrophically — the tree models' raw state
spaces being the motivating case.  The backend is chosen per chain via
the ``solver`` argument — ``"auto"`` (the default) picks sparse once the
state count reaches :data:`SPARSE_STATE_THRESHOLD`, keeping the small
paper chains bit-identical to the historical dense results while large
multihop/heterogeneous chains scale.  ``"iterative"`` must be requested
explicitly: its results carry Krylov truncation error (bounded by the
same residual acceptance every backend passes, see
:data:`ITERATIVE_RTOL`), so it lives in the validation suite's
*tolerance* parity class, never the bit-parity one.
"""

from __future__ import annotations

import warnings
from collections.abc import Hashable, Mapping, Sequence

import numpy as np

__all__ = [
    "ITERATIVE_RTOL",
    "SPARSE_STATE_THRESHOLD",
    "ContinuousTimeMarkovChain",
    "batched_absorption_times_dense",
    "batched_stationary_chain",
    "batched_stationary_dense",
]

State = Hashable

#: State count at which ``solver="auto"`` switches to the sparse backend.
SPARSE_STATE_THRESHOLD = 256

#: Relative residual target handed to the Krylov solvers.  Two decades
#: tighter than the universal ``1e-8``-relative acceptance check in
#: :meth:`ContinuousTimeMarkovChain.stationary_distribution`, so an
#: iterative solve either converges well inside the contract or is
#: rejected loudly — never silently degraded.
ITERATIVE_RTOL = 1e-10

_SOLVERS = ("auto", "dense", "sparse", "iterative")


def _sparse_modules():
    """``(scipy.sparse, scipy.sparse.linalg)``, or ``None`` if unavailable."""
    try:
        import scipy.sparse
        import scipy.sparse.linalg
    except ImportError:
        return None
    return scipy.sparse, scipy.sparse.linalg


class ContinuousTimeMarkovChain:
    """A finite CTMC over arbitrary hashable states.

    Parameters
    ----------
    states:
        Ordered state list; the order fixes matrix row/column indices.
    rates:
        Mapping from ``(origin, destination)`` to a non-negative
        transition rate.  Zero-rate entries are allowed and ignored.
        Self-loops are rejected (they are meaningless in a CTMC).
    solver:
        ``"dense"``, ``"sparse"``, ``"iterative"``, or ``"auto"``
        (sparse once the state count reaches
        :data:`SPARSE_STATE_THRESHOLD`, dense below it or when scipy is
        unavailable).  ``"iterative"`` (ILU-preconditioned GMRES with a
        BiCGSTAB retry) is never chosen automatically — it trades exact
        factorization for bounded-residual convergence and belongs to
        the tolerance parity class.
    """

    def __init__(
        self,
        states: Sequence[State],
        rates: Mapping[tuple[State, State], float],
        solver: str = "auto",
    ) -> None:
        if solver not in _SOLVERS:
            raise ValueError(f"solver must be one of {_SOLVERS}, got {solver!r}")
        self._solver = solver
        if len(states) == 0:
            raise ValueError("a chain needs at least one state")
        if len(set(states)) != len(states):
            raise ValueError("duplicate states in state list")
        self._states: tuple[State, ...] = tuple(states)
        self._index: dict[State, int] = {s: i for i, s in enumerate(self._states)}
        self._rates: dict[tuple[State, State], float] = {}
        # Per-state total exit rate, accumulated once here so holding
        # times and generator assembly never rescan the transition map.
        self._exit_rates: list[float] = [0.0] * len(self._states)
        for (origin, destination), rate in rates.items():
            if origin not in self._index or destination not in self._index:
                raise ValueError(f"transition {origin!r}->{destination!r} uses unknown state")
            if origin == destination:
                raise ValueError(f"self-loop on {origin!r} is not allowed")
            if rate < 0 or not np.isfinite(rate):
                raise ValueError(f"invalid rate {rate!r} for {origin!r}->{destination!r}")
            if rate > 0:
                self._rates[(origin, destination)] = self._rates.get((origin, destination), 0.0) + float(rate)
                self._exit_rates[self._index[origin]] += float(rate)

    @property
    def states(self) -> tuple[State, ...]:
        """The chain's states, in index order."""
        return self._states

    @property
    def rates(self) -> dict[tuple[State, State], float]:
        """A copy of the positive transition rates."""
        return dict(self._rates)

    def rate(self, origin: State, destination: State) -> float:
        """The rate of ``origin -> destination`` (0 when absent)."""
        return self._rates.get((origin, destination), 0.0)

    @property
    def solver(self) -> str:
        """The configured backend (one of ``"auto"``, ``"dense"``,
        ``"sparse"``, ``"iterative"``)."""
        return self._solver

    def with_solver(self, solver: str) -> "ContinuousTimeMarkovChain":
        """The same chain with a different linear-algebra backend.

        Used by the runtime's solver fallback chain to recompute a
        failed sparse solve densely.
        """
        return ContinuousTimeMarkovChain(self.states, self.rates, solver=solver)

    def _use_sparse(self, n: int) -> bool:
        if self._solver == "dense":
            return False
        if self._solver in ("sparse", "iterative"):
            if _sparse_modules() is None:
                raise RuntimeError(
                    f"solver={self._solver!r} requested but scipy is unavailable"
                )
            return True
        return n >= SPARSE_STATE_THRESHOLD and _sparse_modules() is not None

    def _generator_triplets(self) -> tuple[list[int], list[int], list[float]]:
        """COO triplets of ``Q`` (off-diagonal rates plus the diagonal)."""
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        for (origin, destination), rate in self._rates.items():
            rows.append(self._index[origin])
            cols.append(self._index[destination])
            data.append(rate)
        for i, total in enumerate(self._exit_rates):
            if total:
                rows.append(i)
                cols.append(i)
                data.append(-total)
        return rows, cols, data

    def generator_matrix(self) -> np.ndarray:
        """The generator ``Q`` (rows sum to zero), densely materialized."""
        n = len(self._states)
        q = np.zeros((n, n))
        for (origin, destination), rate in self._rates.items():
            i, j = self._index[origin], self._index[destination]
            q[i, j] += rate
        np.fill_diagonal(q, q.diagonal() - q.sum(axis=1))
        return q

    def sparse_generator_matrix(self):
        """The generator ``Q`` as a ``scipy.sparse`` CSR matrix."""
        modules = _sparse_modules()
        if modules is None:
            raise RuntimeError("scipy is required for sparse_generator_matrix()")
        sparse, _ = modules
        n = len(self._states)
        rows, cols, data = self._generator_triplets()
        return sparse.csr_matrix((data, (rows, cols)), shape=(n, n))

    def stationary_distribution(self) -> dict[State, float]:
        """Solve ``pi Q = 0`` with ``sum(pi) = 1``.

        Works for chains whose recurrent class is unique; transient
        states receive probability 0.  Raises ``ValueError`` when the
        linear system is singular (e.g. several closed classes).
        """
        n = len(self._states)
        if self._solver == "iterative":
            pi, residual, scale = self._stationary_iterative(n)
        elif self._use_sparse(n):
            pi, residual, scale = self._stationary_sparse(n)
        else:
            pi, residual, scale = self._stationary_dense(n)
        if residual > 1e-8 * scale or np.any(pi < -1e-9):
            raise ValueError("stationary distribution solve failed (ill-conditioned chain)")
        pi = np.clip(pi, 0.0, None)
        pi /= pi.sum()
        return {state: float(pi[i]) for i, state in enumerate(self._states)}

    def _stationary_dense(self, n: int) -> tuple[np.ndarray, float, float]:
        q = self.generator_matrix()
        # Replace the last balance equation with the normalization row.
        a = q.T.copy()
        a[-1, :] = 1.0
        b = np.zeros(n)
        b[-1] = 1.0
        try:
            pi = np.linalg.solve(a, b)
        except np.linalg.LinAlgError as exc:
            raise ValueError("stationary distribution is not unique or does not exist") from exc
        residual = float(np.max(np.abs(q.T @ pi)))
        scale = max(1.0, float(np.max(np.abs(q))))
        return pi, residual, scale

    def _stationary_system(self, n: int):
        """``(A, b, q_t, scale)`` of the sparse stationary system.

        ``A`` is ``Q^T`` with the last balance row replaced by the
        normalization row, assembled in CSC form; ``q_t`` is the plain
        ``Q^T`` used for the residual check; ``scale`` bounds the rate
        magnitudes for the relative acceptance test.  Shared verbatim by
        the splu and iterative backends so both solve the identical
        matrix.
        """
        sparse, _ = _sparse_modules()
        rows, cols, data = self._generator_triplets()
        q_t = sparse.csr_matrix((data, (cols, rows)), shape=(n, n))
        a_rows: list[int] = []
        a_cols: list[int] = []
        a_data: list[float] = []
        for i, j, value in zip(rows, cols, data):
            if j == n - 1:
                continue
            a_rows.append(j)
            a_cols.append(i)
            a_data.append(value)
        a_rows.extend([n - 1] * n)
        a_cols.extend(range(n))
        a_data.extend([1.0] * n)
        a = sparse.csc_matrix((a_data, (a_rows, a_cols)), shape=(n, n))
        b = np.zeros(n)
        b[-1] = 1.0
        scale = max(1.0, max((abs(v) for v in data), default=1.0))
        return a, b, q_t, scale

    def _stationary_sparse(self, n: int) -> tuple[np.ndarray, float, float]:
        _, sparse_linalg = _sparse_modules()
        a, b, q_t, scale = self._stationary_system(n)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error", sparse_linalg.MatrixRankWarning)
                pi = sparse_linalg.spsolve(a, b)
        except (RuntimeError, sparse_linalg.MatrixRankWarning) as exc:
            raise ValueError("stationary distribution is not unique or does not exist") from exc
        if not np.all(np.isfinite(pi)):
            raise ValueError("stationary distribution is not unique or does not exist")
        residual = float(np.max(np.abs(q_t @ pi)))
        return pi, residual, scale

    def _stationary_iterative(self, n: int) -> tuple[np.ndarray, float, float]:
        """ILU-preconditioned GMRES on the stationary system, with a
        BiCGSTAB retry.

        An incomplete LU keeps a *bounded* fraction of the fill-in the
        exact factorization would produce, which is precisely what the
        big tree generators need: spilu stays in memory where splu's
        ~10^8-nonzero factors do not.  The Krylov iterations then drive
        the preconditioned residual to :data:`ITERATIVE_RTOL`; the
        universal residual/negativity acceptance check still runs on the
        result, so a stagnated solve raises instead of returning junk.
        """
        if _sparse_modules() is None:
            raise RuntimeError("solver='iterative' requested but scipy is unavailable")
        _, sparse_linalg = _sparse_modules()
        a, b, q_t, scale = self._stationary_system(n)
        try:
            ilu = sparse_linalg.spilu(a, drop_tol=1e-5, fill_factor=20.0)
        except RuntimeError as exc:
            raise ValueError(
                "stationary distribution is not unique or does not exist"
            ) from exc
        preconditioner = sparse_linalg.LinearOperator(
            (n, n), matvec=ilu.solve
        )
        pi, info = sparse_linalg.gmres(
            a, b, M=preconditioner, rtol=ITERATIVE_RTOL, atol=0.0, maxiter=500
        )
        if info != 0:
            pi, info = sparse_linalg.bicgstab(
                a, b, M=preconditioner, rtol=ITERATIVE_RTOL, atol=0.0, maxiter=2000
            )
        if info != 0 or not np.all(np.isfinite(pi)):
            raise ValueError(
                f"iterative stationary solve did not converge (info={info})"
            )
        # Krylov convergence at ITERATIVE_RTOL leaves errors near the
        # 1e-8 parity bound on small-magnitude metrics (1 - pi[full]
        # cancels).  A few ILU refinement steps contract the error by
        # the preconditioner quality per step, pushing the solution to
        # the machine-precision floor of the assembled system.
        b_norm = float(np.max(np.abs(b)))
        for _ in range(3):
            defect = b - a @ pi
            if float(np.max(np.abs(defect))) <= 1e-15 * b_norm:
                break
            refined = pi + ilu.solve(defect)
            if not np.all(np.isfinite(refined)):
                break
            pi = refined
        residual = float(np.max(np.abs(q_t @ pi)))
        return pi, residual, scale

    def mean_time_to_absorption(
        self,
        start: State,
        absorbing: Sequence[State],
    ) -> float:
        """Expected time from ``start`` until any state in ``absorbing``.

        Solves ``(-Q_TT) t = 1`` on the transient block.  Raises
        ``ValueError`` when absorption is not certain from ``start``.
        """
        absorbing_set = set(absorbing)
        if not absorbing_set:
            raise ValueError("need at least one absorbing state")
        if start in absorbing_set:
            return 0.0
        unknown = absorbing_set - set(self._states)
        if unknown:
            raise ValueError(f"unknown absorbing states: {sorted(map(repr, unknown))}")
        transient = [s for s in self._states if s not in absorbing_set]
        t_index = {s: i for i, s in enumerate(transient)}
        if start not in t_index:
            raise ValueError(f"unknown start state {start!r}")
        if self._use_sparse(len(self._states)):
            times = self._absorption_times_sparse(transient, t_index)
        else:
            times = self._absorption_times_dense(transient)
        value = float(times[t_index[start]])
        if not np.isfinite(value) or value < 0:
            raise ValueError("absorption time solve produced an invalid value")
        return value

    def _absorption_times_dense(self, transient: list[State]) -> np.ndarray:
        q = self.generator_matrix()
        rows = [self._index[s] for s in transient]
        q_tt = q[np.ix_(rows, rows)]
        try:
            return np.linalg.solve(-q_tt, np.ones(len(transient)))
        except np.linalg.LinAlgError as exc:
            raise ValueError("absorption is not certain from the given start state") from exc

    def _absorption_times_sparse(
        self, transient: list[State], t_index: dict[State, int]
    ) -> np.ndarray:
        sparse, sparse_linalg = _sparse_modules()
        m = len(transient)
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        exit_rates = [0.0] * m
        for (origin, destination), rate in self._rates.items():
            i = t_index.get(origin)
            if i is None:
                continue
            exit_rates[i] += rate
            j = t_index.get(destination)
            if j is not None:
                # -Q_TT: negate the off-diagonal rates.
                rows.append(i)
                cols.append(j)
                data.append(-rate)
        for i, total in enumerate(exit_rates):
            rows.append(i)
            cols.append(i)
            data.append(total)
        neg_q_tt = sparse.csc_matrix((data, (rows, cols)), shape=(m, m))
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error", sparse_linalg.MatrixRankWarning)
                times = sparse_linalg.spsolve(neg_q_tt, np.ones(m))
        except (RuntimeError, sparse_linalg.MatrixRankWarning) as exc:
            raise ValueError("absorption is not certain from the given start state") from exc
        if not np.all(np.isfinite(times)):
            raise ValueError("absorption is not certain from the given start state")
        return np.atleast_1d(times)

    def absorption_probability_flow(self, absorbing: Sequence[State]) -> dict[State, float]:
        """Total rate into each absorbing state from transient states.

        A diagnostic helper used by tests to check rate bookkeeping.
        """
        absorbing_set = set(absorbing)
        flows: dict[State, float] = {s: 0.0 for s in absorbing_set}
        for (origin, destination), rate in self._rates.items():
            if destination in absorbing_set and origin not in absorbing_set:
                flows[destination] += rate
        return flows

    def merge_states(self, merged: State, into: State) -> "ContinuousTimeMarkovChain":
        """Return a new chain where ``merged`` is collapsed into ``into``.

        Every transition entering ``merged`` is redirected to ``into``;
        transitions leaving ``merged`` are dropped.  This implements the
        paper's construction of the recurrent chain: "the absorption
        state (0,0) and the starting state (1,0)_1 are merged".
        """
        if merged == into:
            raise ValueError("cannot merge a state into itself")
        if merged not in self._index or into not in self._index:
            raise ValueError("both states must belong to the chain")
        new_states = [s for s in self._states if s != merged]
        new_rates: dict[tuple[State, State], float] = {}
        for (origin, destination), rate in self._rates.items():
            if origin == merged:
                continue
            target = into if destination == merged else destination
            if origin == target:
                continue
            new_rates[(origin, target)] = new_rates.get((origin, target), 0.0) + rate
        return ContinuousTimeMarkovChain(new_states, new_rates, solver=self._solver)

    def holding_time(self, state: State) -> float:
        """Mean sojourn time of ``state`` (inf when it has no exits)."""
        index = self._index.get(state)
        if index is None:
            return float("inf")
        total = self._exit_rates[index]
        if total == 0.0:
            return float("inf")
        return 1.0 / total

    def describe(self) -> str:
        """Human-readable transition listing (for debugging and docs)."""
        lines = [f"CTMC with {len(self._states)} states"]
        for (origin, destination), rate in sorted(
            self._rates.items(), key=lambda item: (str(item[0][0]), str(item[0][1]))
        ):
            lines.append(f"  {origin!r} -> {destination!r} @ {rate:.6g}")
        return "\n".join(lines)


def batched_stationary_dense(generators: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Stationary distributions of ``K`` stacked dense generators.

    ``generators`` is a ``(K, n, n)`` array of generator matrices (rows
    summing to zero).  Solves every point with one stacked LAPACK call —
    the same ``dgesv`` the per-chain dense path uses, applied per
    matrix, so results are bit-identical to K separate
    :meth:`ContinuousTimeMarkovChain.stationary_distribution` calls.

    Returns ``(pi, bad)``: ``pi`` is ``(K, n)`` with each row clipped to
    non-negative and normalized to sum 1; ``bad`` is a ``(K,)`` boolean
    mask marking points whose solve failed the same residual /
    negativity acceptance test the per-chain path applies (callers
    should re-solve those through the reference path so they raise the
    reference's diagnostics).  Raises ``numpy.linalg.LinAlgError`` when
    any stacked matrix is exactly singular.
    """
    if generators.ndim != 3 or generators.shape[1] != generators.shape[2]:
        raise ValueError(f"expected (K, n, n) generators, got {generators.shape}")
    k, n, _ = generators.shape
    a = generators.transpose(0, 2, 1).copy()
    a[:, -1, :] = 1.0
    b = np.zeros((k, n, 1))
    b[:, -1, 0] = 1.0
    pi = np.linalg.solve(a, b)[..., 0]
    residual = np.abs(generators.transpose(0, 2, 1) @ pi[..., None])[..., 0].max(axis=1)
    scale = np.maximum(1.0, np.abs(generators).reshape(k, -1).max(axis=1))
    bad = (residual > 1e-8 * scale) | np.any(pi < -1e-9, axis=1) | ~np.all(
        np.isfinite(pi), axis=1
    )
    pi = np.clip(pi, 0.0, None)
    totals = pi.sum(axis=1, keepdims=True)
    safe = np.where(totals > 0.0, totals, 1.0)
    pi /= safe
    bad |= totals[:, 0] <= 0.0
    return pi, bad


def batched_stationary_chain(
    update: np.ndarray,
    advance: np.ndarray,
    lose: np.ndarray,
    recover: np.ndarray,
    timeouts: np.ndarray | None = None,
    false_signal: np.ndarray | None = None,
    recovery_return: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Stationary distributions of ``K`` multihop chain generators in
    O(hops) per point.

    The chain generator is block-tridiagonal in the hop levels — each
    level holds the fast state ``F_i`` and slow state ``S_i`` — plus two
    kinds of long-range "drain" edges that every state above a level
    sends below it: the update edge into ``F_0`` and either the timeout
    staircase into each ``S_j`` (SS/SS_RT) or the false-signal edge into
    RECOVERY (HS).  Because every state above the cut between levels
    ``i`` and ``i+1`` drains across it at the *same* total rate, the cut
    balance collapses the tail mass into one scalar per level and the
    block-Thomas elimination runs level by level:

    * cut balance:   ``a_i·pi(F_i) + r_i·pi(S_i) = (u + tau_{i+1})·A_i``
      where ``A_i`` is the total mass strictly above the cut and
      ``tau_c = sum_{j<c} t_j`` the accumulated timeout drain;
    * slow balance:  ``(u + r_i + tau_i)·pi(S_i) = l_i·pi(F_i) + t_i·A_i``;
    * fast balance:  ``(u + a_{i+1} + l_{i+1} + tau_{i+1})·pi(F_{i+1})
      = a_i·pi(F_i) + r_i·pi(S_i)``.

    Seeding ``pi(F_0) = 1`` and normalizing at the end makes the whole
    recursion a product of strictly positive terms — no subtractions of
    same-sign quantities ever occur (the one subtraction below is
    bounded away from cancellation because ``t_i/(u+tau_{i+1}) < 1``),
    so the kernel is unconditionally forward-stable.  It reorders
    floating-point operations relative to the LU paths, so it lives in
    the *tolerance* parity class, never the bit-parity one.

    Parameters (all vectorized over the leading ``K`` axis):

    ``update``
        ``(K,)`` — the update rate ``u`` (every non-``F_0`` state back
        to ``F_0``).
    ``advance`` / ``lose`` / ``recover``
        ``(K, n)`` — per-hop fast-path advance ``(1-l_i)/d_i``, loss
        ``l_i/d_i``, and slow-path recovery rates.
    ``timeouts``
        ``(K, n)`` — the SS-family per-destination timeout rates
        (``F_c/S_c -> S_j`` for ``j < c``).  Mutually exclusive with the
        HS pair below.
    ``false_signal`` / ``recovery_return``
        ``(K,)`` each — the HS external false-signal rate ``e`` (every
        non-RECOVERY state into RECOVERY) and the RECOVERY ``-> F_0``
        repair rate ``g`` (on top of the update edge).

    Returns ``(pi, bad)``: ``pi`` is ``(K, ns)`` over the
    ``multihop_state_space`` order (``F_0..F_n``, ``S_0..S_{n-1}``, then
    RECOVERY for HS), each good row normalized to sum 1; ``bad`` marks
    points whose recursion produced non-finite values or non-positive
    mass (degenerate rates), for re-solving through a reference path.
    Raises ``ValueError`` for structurally invalid input — mismatched
    shapes, or neither/both of the SS-family and HS rate sets.
    """
    update = np.asarray(update, dtype=float)
    advance = np.asarray(advance, dtype=float)
    lose = np.asarray(lose, dtype=float)
    recover = np.asarray(recover, dtype=float)
    if update.ndim != 1:
        raise ValueError(f"update must be (K,), got shape {update.shape}")
    k = update.shape[0]
    for name, array in (("advance", advance), ("lose", lose), ("recover", recover)):
        if array.ndim != 2 or array.shape[0] != k:
            raise ValueError(
                f"{name} must be (K, n) with K={k}, got shape {array.shape}"
            )
    n = advance.shape[1]
    if n < 1:
        raise ValueError("chain kernels need at least one hop")
    if lose.shape[1] != n or recover.shape[1] != n:
        raise ValueError(
            f"advance/lose/recover disagree on hops: "
            f"{advance.shape[1]}/{lose.shape[1]}/{recover.shape[1]}"
        )
    with_recovery = false_signal is not None or recovery_return is not None
    if with_recovery == (timeouts is not None):
        raise ValueError(
            "provide either timeouts (SS family) or both false_signal and "
            "recovery_return (HS), not both or neither"
        )
    pi_fast = np.empty((k, n + 1))
    pi_slow = np.empty((k, n))
    pi_fast[:, 0] = 1.0
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        if with_recovery:
            if false_signal is None or recovery_return is None:
                raise ValueError(
                    "HS chains need both false_signal and recovery_return"
                )
            false_signal = np.asarray(false_signal, dtype=float)
            recovery_return = np.asarray(recovery_return, dtype=float)
            if false_signal.shape != (k,) or recovery_return.shape != (k,):
                raise ValueError(
                    f"false_signal/recovery_return must be (K,)=({k},), got "
                    f"{false_signal.shape}/{recovery_return.shape}"
                )
            for i in range(n):
                pi_slow[:, i] = (
                    lose[:, i] * pi_fast[:, i]
                    / (update + recover[:, i] + false_signal)
                )
                inflow = advance[:, i] * pi_fast[:, i] + recover[:, i] * pi_slow[:, i]
                if i + 1 < n:
                    drain = update + advance[:, i + 1] + lose[:, i + 1] + false_signal
                else:
                    drain = update + false_signal
                pi_fast[:, i + 1] = inflow / drain
            rest = pi_fast.sum(axis=1) + pi_slow.sum(axis=1)
            pi_recovery = false_signal * rest / (update + recovery_return)
            pi = np.concatenate([pi_fast, pi_slow, pi_recovery[:, None]], axis=1)
        else:
            timeouts = np.asarray(timeouts, dtype=float)
            if timeouts.shape != (k, n):
                raise ValueError(
                    f"timeouts must be (K, n)=({k}, {n}), got {timeouts.shape}"
                )
            # tau[:, c] = sum of the timeout rates below level c.
            tau = np.zeros((k, n + 1))
            np.cumsum(timeouts, axis=1, out=tau[:, 1:])
            for i in range(n):
                tail_drain = update + tau[:, i + 1]
                coupling = timeouts[:, i] / tail_drain
                pi_slow[:, i] = (
                    pi_fast[:, i]
                    * (lose[:, i] + coupling * advance[:, i])
                    / (update + recover[:, i] + tau[:, i] - coupling * recover[:, i])
                )
                inflow = advance[:, i] * pi_fast[:, i] + recover[:, i] * pi_slow[:, i]
                if i + 1 < n:
                    drain = update + advance[:, i + 1] + lose[:, i + 1] + tau[:, i + 1]
                else:
                    drain = update + tau[:, n]
                pi_fast[:, i + 1] = inflow / drain
            pi = np.concatenate([pi_fast, pi_slow], axis=1)
        bad = ~np.all(np.isfinite(pi), axis=1) | np.any(pi < 0.0, axis=1)
        pi = np.where(np.isfinite(pi), pi, 0.0)
        pi = np.clip(pi, 0.0, None)
        totals = pi.sum(axis=1, keepdims=True)
        safe = np.where(totals > 0.0, totals, 1.0)
        pi /= safe
    bad |= ~np.isfinite(totals[:, 0]) | (totals[:, 0] <= 0.0)
    return pi, bad


def batched_absorption_times_dense(
    transient_generators: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Expected absorption times for ``K`` stacked transient blocks.

    ``transient_generators`` is ``(K, m, m)``: the ``Q_TT`` block of
    each point's generator (diagonals carry the *full* exit rates,
    including flows into the absorbing states).  Solves
    ``(-Q_TT) t = 1`` for every point in one stacked LAPACK call.

    Returns ``(times, bad)`` where ``times`` is ``(K, m)`` and ``bad``
    marks points with non-finite or negative entries (absorption not
    certain); callers should re-solve those via the reference path.
    """
    if (
        transient_generators.ndim != 3
        or transient_generators.shape[1] != transient_generators.shape[2]
    ):
        raise ValueError(
            f"expected (K, m, m) transient blocks, got {transient_generators.shape}"
        )
    k, m, _ = transient_generators.shape
    ones = np.ones((k, m, 1))
    times = np.linalg.solve(-transient_generators, ones)[..., 0]
    bad = ~np.all(np.isfinite(times), axis=1) | np.any(times < 0.0, axis=1)
    return times, bad
