"""Continuous-time Markov chain (CTMC) toolkit.

The paper's analysis rests on two standard CTMC computations, both
implemented here on top of numpy/scipy linear algebra:

* the **stationary distribution** of a recurrent chain — used for the
  inconsistency ratio (eq. 1) and the stationary message rates
  (eqs. 3-7), after the absorbing state is merged into the start state;
* the **mean time to absorption** of a transient chain — the expected
  receiver-side session length ``L`` in eq. 2.

States may be arbitrary hashable objects; the chain is specified as a
sparse mapping ``{(from_state, to_state): rate}``.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping, Sequence
from typing import Any

import numpy as np

__all__ = ["ContinuousTimeMarkovChain"]

State = Hashable


class ContinuousTimeMarkovChain:
    """A finite CTMC over arbitrary hashable states.

    Parameters
    ----------
    states:
        Ordered state list; the order fixes matrix row/column indices.
    rates:
        Mapping from ``(origin, destination)`` to a non-negative
        transition rate.  Zero-rate entries are allowed and ignored.
        Self-loops are rejected (they are meaningless in a CTMC).
    """

    def __init__(
        self,
        states: Sequence[State],
        rates: Mapping[tuple[State, State], float],
    ) -> None:
        if len(states) == 0:
            raise ValueError("a chain needs at least one state")
        if len(set(states)) != len(states):
            raise ValueError("duplicate states in state list")
        self._states: tuple[State, ...] = tuple(states)
        self._index: dict[State, int] = {s: i for i, s in enumerate(self._states)}
        self._rates: dict[tuple[State, State], float] = {}
        for (origin, destination), rate in rates.items():
            if origin not in self._index or destination not in self._index:
                raise ValueError(f"transition {origin!r}->{destination!r} uses unknown state")
            if origin == destination:
                raise ValueError(f"self-loop on {origin!r} is not allowed")
            if rate < 0 or not np.isfinite(rate):
                raise ValueError(f"invalid rate {rate!r} for {origin!r}->{destination!r}")
            if rate > 0:
                self._rates[(origin, destination)] = self._rates.get((origin, destination), 0.0) + float(rate)

    @property
    def states(self) -> tuple[State, ...]:
        """The chain's states, in index order."""
        return self._states

    @property
    def rates(self) -> dict[tuple[State, State], float]:
        """A copy of the positive transition rates."""
        return dict(self._rates)

    def rate(self, origin: State, destination: State) -> float:
        """The rate of ``origin -> destination`` (0 when absent)."""
        return self._rates.get((origin, destination), 0.0)

    def generator_matrix(self) -> np.ndarray:
        """The generator ``Q`` (rows sum to zero)."""
        n = len(self._states)
        q = np.zeros((n, n))
        for (origin, destination), rate in self._rates.items():
            i, j = self._index[origin], self._index[destination]
            q[i, j] += rate
        np.fill_diagonal(q, q.diagonal() - q.sum(axis=1))
        return q

    def stationary_distribution(self) -> dict[State, float]:
        """Solve ``pi Q = 0`` with ``sum(pi) = 1``.

        Works for chains whose recurrent class is unique; transient
        states receive probability 0.  Raises ``ValueError`` when the
        linear system is singular (e.g. several closed classes).
        """
        q = self.generator_matrix()
        n = q.shape[0]
        # Replace the last balance equation with the normalization row.
        a = q.T.copy()
        a[-1, :] = 1.0
        b = np.zeros(n)
        b[-1] = 1.0
        try:
            pi = np.linalg.solve(a, b)
        except np.linalg.LinAlgError as exc:
            raise ValueError("stationary distribution is not unique or does not exist") from exc
        residual = float(np.max(np.abs(q.T @ pi)))
        scale = max(1.0, float(np.max(np.abs(q))))
        if residual > 1e-8 * scale or np.any(pi < -1e-9):
            raise ValueError("stationary distribution solve failed (ill-conditioned chain)")
        pi = np.clip(pi, 0.0, None)
        pi /= pi.sum()
        return {state: float(pi[i]) for i, state in enumerate(self._states)}

    def mean_time_to_absorption(
        self,
        start: State,
        absorbing: Sequence[State],
    ) -> float:
        """Expected time from ``start`` until any state in ``absorbing``.

        Solves ``(-Q_TT) t = 1`` on the transient block.  Raises
        ``ValueError`` when absorption is not certain from ``start``.
        """
        absorbing_set = set(absorbing)
        if not absorbing_set:
            raise ValueError("need at least one absorbing state")
        if start in absorbing_set:
            return 0.0
        unknown = absorbing_set - set(self._states)
        if unknown:
            raise ValueError(f"unknown absorbing states: {sorted(map(repr, unknown))}")
        transient = [s for s in self._states if s not in absorbing_set]
        t_index = {s: i for i, s in enumerate(transient)}
        if start not in t_index:
            raise ValueError(f"unknown start state {start!r}")
        q = self.generator_matrix()
        rows = [self._index[s] for s in transient]
        q_tt = q[np.ix_(rows, rows)]
        try:
            times = np.linalg.solve(-q_tt, np.ones(len(transient)))
        except np.linalg.LinAlgError as exc:
            raise ValueError("absorption is not certain from the given start state") from exc
        value = float(times[t_index[start]])
        if not np.isfinite(value) or value < 0:
            raise ValueError("absorption time solve produced an invalid value")
        return value

    def absorption_probability_flow(self, absorbing: Sequence[State]) -> dict[State, float]:
        """Total rate into each absorbing state from transient states.

        A diagnostic helper used by tests to check rate bookkeeping.
        """
        absorbing_set = set(absorbing)
        flows: dict[State, float] = {s: 0.0 for s in absorbing_set}
        for (origin, destination), rate in self._rates.items():
            if destination in absorbing_set and origin not in absorbing_set:
                flows[destination] += rate
        return flows

    def merge_states(self, merged: State, into: State) -> "ContinuousTimeMarkovChain":
        """Return a new chain where ``merged`` is collapsed into ``into``.

        Every transition entering ``merged`` is redirected to ``into``;
        transitions leaving ``merged`` are dropped.  This implements the
        paper's construction of the recurrent chain: "the absorption
        state (0,0) and the starting state (1,0)_1 are merged".
        """
        if merged == into:
            raise ValueError("cannot merge a state into itself")
        if merged not in self._index or into not in self._index:
            raise ValueError("both states must belong to the chain")
        new_states = [s for s in self._states if s != merged]
        new_rates: dict[tuple[State, State], float] = {}
        for (origin, destination), rate in self._rates.items():
            if origin == merged:
                continue
            target = into if destination == merged else destination
            if origin == target:
                continue
            new_rates[(origin, target)] = new_rates.get((origin, target), 0.0) + rate
        return ContinuousTimeMarkovChain(new_states, new_rates)

    def holding_time(self, state: State) -> float:
        """Mean sojourn time of ``state`` (inf when it has no exits)."""
        total = sum(rate for (origin, _), rate in self._rates.items() if origin == state)
        if total == 0.0:
            return float("inf")
        return 1.0 / total

    def describe(self) -> str:
        """Human-readable transition listing (for debugging and docs)."""
        lines = [f"CTMC with {len(self._states)} states"]
        for (origin, destination), rate in sorted(
            self._rates.items(), key=lambda item: (str(item[0][0]), str(item[0][1]))
        ):
            lines.append(f"  {origin!r} -> {destination!r} @ {rate:.6g}")
        return "\n".join(lines)
