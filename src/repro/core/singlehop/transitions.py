"""Transition-rate table for the single-hop chain (paper Table I).

:func:`build_transition_rates` materializes Fig. 3 for one protocol:
the protocol-independent rows (setup/update fast paths, update and
removal events, false removal) plus the protocol-specific rows of
Table I.  The result feeds :class:`repro.core.markov.ContinuousTimeMarkovChain`.
"""

from __future__ import annotations

from repro.core.parameters import SignalingParameters
from repro.core.protocols import Protocol
from repro.core.singlehop.states import SingleHopState as S

__all__ = [
    "build_transition_rates",
    "effective_false_removal_rate",
    "slow_path_recovery_rate",
    "state_space",
]

Rates = dict[tuple[S, S], float]


def effective_false_removal_rate(protocol: Protocol, params: SignalingParameters) -> float:
    """``lambda_f`` for the protocol.

    Soft-state protocols lose state when every refresh in a timeout
    window is lost: ``p_l^(T/R) / T``.  Hard state has no timeout; its
    false removals come from the external failure detector firing
    spuriously at rate ``lambda_x``.
    """
    if protocol is Protocol.HS:
        return params.external_false_signal_rate
    return params.false_removal_rate


def state_space(protocol: Protocol) -> tuple[S, ...]:
    """States used by the protocol's chain.

    ``(0,1)_2`` exists only when an explicit removal message can be
    lost, i.e. for SS+ER, SS+RTR and HS (Fig. 3 caption).
    """
    states = [
        S.S10_FAST,
        S.S10_SLOW,
        S.CONSISTENT,
        S.IC_FAST,
        S.IC_SLOW,
        S.S01_FAST,
    ]
    if protocol.explicit_removal:
        states.append(S.S01_SLOW)
    states.append(S.ABSORBED)
    return tuple(states)


def slow_path_recovery_rate(protocol: Protocol, params: SignalingParameters) -> float:
    """Rate of ``(1,0)_2 -> C`` and ``IC_2 -> C`` (Table I row 3)."""
    success = 1.0 - params.loss_rate
    refresh = 1.0 / params.refresh_interval
    retransmit = 1.0 / params.retransmission_interval
    if protocol in (Protocol.SS, Protocol.SS_ER):
        return success * refresh
    if protocol in (Protocol.SS_RT, Protocol.SS_RTR):
        return success * (refresh + retransmit)
    return success * retransmit  # HS: retransmission only


def _orphan_removal_rates(protocol: Protocol, params: SignalingParameters) -> Rates:
    """Rows 4-6 of Table I: how receiver-side orphaned state goes away."""
    p = params.loss_rate
    success = 1.0 - p
    delta = params.delay
    timeout = 1.0 / params.timeout_interval
    retransmit = 1.0 / params.retransmission_interval
    rates: Rates = {}
    if protocol in (Protocol.SS, Protocol.SS_RT):
        # No explicit removal: only the state-timeout clears the orphan.
        rates[(S.S01_FAST, S.ABSORBED)] = timeout
        return rates
    # SS+ER, SS+RTR, HS carry an explicit removal message.
    rates[(S.S01_FAST, S.ABSORBED)] = success / delta
    rates[(S.S01_FAST, S.S01_SLOW)] = p / delta
    if protocol is Protocol.SS_ER:
        rates[(S.S01_SLOW, S.ABSORBED)] = timeout
    elif protocol is Protocol.SS_RTR:
        rates[(S.S01_SLOW, S.ABSORBED)] = timeout + success * retransmit
    else:  # HS: retransmission of the removal message only
        rates[(S.S01_SLOW, S.ABSORBED)] = success * retransmit
    return rates


def build_transition_rates(protocol: Protocol, params: SignalingParameters) -> Rates:
    """All transition rates of Fig. 3 for ``protocol`` under ``params``."""
    p = params.loss_rate
    success = 1.0 - p
    delta = params.delay
    lam_u = params.update_rate
    mu_r = params.removal_rate
    lam_f = effective_false_removal_rate(protocol, params)
    recovery = slow_path_recovery_rate(protocol, params)

    rates: Rates = {
        # Setup/update trigger in flight: delivered or lost after ~Delta.
        (S.S10_FAST, S.CONSISTENT): success / delta,
        (S.S10_FAST, S.S10_SLOW): p / delta,
        (S.IC_FAST, S.CONSISTENT): success / delta,
        (S.IC_FAST, S.IC_SLOW): p / delta,
        # Slow-path recovery via refresh and/or retransmission.
        (S.S10_SLOW, S.CONSISTENT): recovery,
        (S.IC_SLOW, S.CONSISTENT): recovery,
        # State updates (events are serialized: never while in flight).
        (S.CONSISTENT, S.IC_FAST): lam_u,
        (S.S10_SLOW, S.S10_FAST): lam_u,
        (S.IC_SLOW, S.IC_FAST): lam_u,
        # Sender-side state removal.
        (S.S10_SLOW, S.ABSORBED): mu_r,
        (S.CONSISTENT, S.S01_FAST): mu_r,
        (S.IC_SLOW, S.S01_FAST): mu_r,
        # False removal at the receiver sends us back to slow setup.
        (S.CONSISTENT, S.S10_SLOW): lam_f,
        (S.IC_SLOW, S.S10_SLOW): lam_f,
    }
    rates.update(_orphan_removal_rates(protocol, params))
    return {pair: rate for pair, rate in rates.items() if rate > 0.0}
