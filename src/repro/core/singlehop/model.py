"""The single-hop analytic model and its performance metrics.

:class:`SingleHopModel` assembles the Fig. 3 chain for one protocol,
and :meth:`SingleHopModel.solve` produces a :class:`SingleHopSolution`
carrying the paper's three metrics:

* ``inconsistency_ratio`` — eq. (1): ``I = 1 - pi_C`` on the recurrent
  chain (absorbing state merged into the start state);
* ``normalized_message_rate`` — eq. (2) and the normalization
  ``M = Lambda * mu_r``, where ``Lambda = L * m`` with ``L`` the mean
  receiver-side session length (mean time to absorption) and ``m`` the
  stationary message rate;
* ``integrated_cost(weight)`` — eq. (8): ``C = weight * I + M``.
"""

from __future__ import annotations

import dataclasses

from repro.core.markov import ContinuousTimeMarkovChain
from repro.core.parameters import SignalingParameters
from repro.core.protocols import Protocol
from repro.core.singlehop.messages import message_rate_components
from repro.core.singlehop.states import SingleHopState as S
from repro.core.singlehop.transitions import build_transition_rates, state_space

__all__ = ["SingleHopModel", "SingleHopSolution"]


@dataclasses.dataclass(frozen=True)
class SingleHopSolution:
    """Solved metrics of one protocol/parameter combination."""

    protocol: Protocol
    params: SignalingParameters
    stationary: dict[S, float]
    inconsistency_ratio: float
    expected_receiver_lifetime: float
    message_breakdown: dict[str, float]

    @property
    def message_rate(self) -> float:
        """Stationary signaling message rate ``m`` (messages/s)."""
        return sum(self.message_breakdown.values())

    @property
    def total_messages(self) -> float:
        """``Lambda = L * m`` — expected messages over a session (eq. 2)."""
        return self.expected_receiver_lifetime * self.message_rate

    @property
    def normalized_message_rate(self) -> float:
        """``M = Lambda * mu_r`` — messages per mean sender session."""
        return self.total_messages * self.params.removal_rate

    def integrated_cost(self, weight: float = 10.0) -> float:
        """``C = weight * I + M`` (eq. 8); ``weight`` in messages/s."""
        if weight < 0:
            raise ValueError(f"weight must be non-negative, got {weight}")
        return weight * self.inconsistency_ratio + self.normalized_message_rate

    def occupancy(self, state: S) -> float:
        """Stationary probability of ``state`` (0 for states not in the chain)."""
        return self.stationary.get(state, 0.0)


class SingleHopModel:
    """The paper's unified single-hop CTMC, specialized to one protocol."""

    def __init__(self, protocol: Protocol, params: SignalingParameters) -> None:
        if params.removal_rate <= 0:
            raise ValueError(
                "single-hop model requires a finite session (removal_rate > 0); "
                "the multi-hop model covers the infinite-lifetime regime"
            )
        self.protocol = Protocol(protocol)
        self.params = params
        self._rates = build_transition_rates(self.protocol, params)
        self._states = state_space(self.protocol)

    def transient_chain(self) -> ContinuousTimeMarkovChain:
        """The lifecycle chain with ``(0,0)`` absorbing (Fig. 3 as drawn)."""
        return ContinuousTimeMarkovChain(self._states, self._rates)

    def recurrent_chain(self) -> ContinuousTimeMarkovChain:
        """The renewal chain: ``(0,0)`` merged into the start ``(1,0)_1``."""
        return self.transient_chain().merge_states(S.ABSORBED, S.S10_FAST)

    def transition_rates(self) -> dict[tuple[S, S], float]:
        """A copy of the chain's transition rates (Table I materialized)."""
        return dict(self._rates)

    def solve(self) -> SingleHopSolution:
        """Compute stationary distribution, ``I``, ``L`` and message rates."""
        stationary = self.recurrent_chain().stationary_distribution()
        inconsistency = 1.0 - stationary[S.CONSISTENT]
        lifetime = self.transient_chain().mean_time_to_absorption(
            S.S10_FAST, [S.ABSORBED]
        )
        breakdown = message_rate_components(self.protocol, self.params, stationary)
        return SingleHopSolution(
            protocol=self.protocol,
            params=self.params,
            stationary=stationary,
            inconsistency_ratio=inconsistency,
            expected_receiver_lifetime=lifetime,
            message_breakdown=breakdown,
        )


def solve_all(
    params: SignalingParameters,
    protocols: tuple[Protocol, ...] = tuple(Protocol),
) -> dict[Protocol, SingleHopSolution]:
    """Solve every protocol under one parameter set (comparison helper)."""
    return {protocol: SingleHopModel(protocol, params).solve() for protocol in protocols}
