"""States of the single-hop Markov model (paper Fig. 3).

Each state pairs the sender's and receiver's view of the signaling
state.  Fast/slow subscripts (the paper's 1/2) distinguish "a message is
in flight" from "the message was lost; waiting for a timer".
"""

from __future__ import annotations

import enum

__all__ = ["SingleHopState", "INCONSISTENT_STATES"]


class SingleHopState(str, enum.Enum):
    """A state of the Fig. 3 chain, written ``(sender, receiver)``."""

    S10_FAST = "(1,0)_1"
    """Sender installed state, trigger message in flight."""

    S10_SLOW = "(1,0)_2"
    """Sender installed state, trigger lost; waiting for refresh/retransmit."""

    CONSISTENT = "C"
    """Sender and receiver hold the same value."""

    IC_FAST = "IC_1"
    """Both hold state but values differ; update trigger in flight."""

    IC_SLOW = "IC_2"
    """Both hold state but values differ; update trigger lost."""

    S01_FAST = "(0,1)_1"
    """Sender removed state; receiver still holds it (removal in flight)."""

    S01_SLOW = "(0,1)_2"
    """Sender removed state; explicit removal message lost.

    Only exists for SS+ER, SS+RTR and HS (Fig. 3 caption)."""

    ABSORBED = "(0,0)"
    """Both removed — the absorbing end of the session lifecycle."""

    @property
    def is_consistent(self) -> bool:
        """Whether sender and receiver agree in this state.

        Only ``CONSISTENT`` counts; the absorbing state terminates the
        lifecycle and never contributes time in the recurrent chain.
        """
        return self is SingleHopState.CONSISTENT


INCONSISTENT_STATES: tuple[SingleHopState, ...] = (
    SingleHopState.S10_FAST,
    SingleHopState.S10_SLOW,
    SingleHopState.IC_FAST,
    SingleHopState.IC_SLOW,
    SingleHopState.S01_FAST,
    SingleHopState.S01_SLOW,
)
"""States summed by eq. (1): everything except ``CONSISTENT``."""
