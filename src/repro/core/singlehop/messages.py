"""Stationary signaling message rates (paper eqs. 3-7).

Each component is the stationary rate at which one kind of message is
transmitted, derived from the recurrent chain's stationary distribution.
Components:

* ``triggers`` — one explicit trigger per visit to a fast-path state
  (eq. 3 collapses to ``(pi_(1,0)1 + pi_IC1)/Delta``).
* ``refreshes`` — rate ``1/R`` while in ``(1,0)_2``, ``C``, ``IC_2``
  (eq. 5).
* ``removals`` — one explicit removal per visit to ``(0,1)_1``
  (eq. 4 collapses to ``pi_(0,1)1/Delta``).
* ``trigger_retransmissions`` / ``trigger_acks`` /
  ``removal_notifications`` — the reliable-trigger machinery (eq. 6):
  retransmissions at ``1/K`` in slow-path states, one ACK per
  successfully delivered trigger or retransmission, and one
  notification per false removal (the receiver tells the sender its
  state vanished).
* ``removal_retransmissions`` / ``removal_acks`` — the reliable-removal
  machinery (eq. 7).

The published equations (6)-(7) are glyph-garbled in the source PDF;
the ACK terms here are reconstructed mechanistically — one ACK per
successful delivery of a reliably-transmitted message — which matches
the prose description of the protocols (DESIGN.md §3 records this).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.parameters import SignalingParameters
from repro.core.protocols import Protocol
from repro.core.singlehop.states import SingleHopState as S
from repro.core.singlehop.transitions import effective_false_removal_rate

__all__ = ["message_rate_components", "total_message_rate"]


def message_rate_components(
    protocol: Protocol,
    params: SignalingParameters,
    stationary: Mapping[S, float],
) -> dict[str, float]:
    """Per-kind stationary message rates for ``protocol``.

    ``stationary`` is the distribution of the *recurrent* chain (the
    absorbing state merged into the start state).  Components that the
    protocol does not use are reported as 0.0, so the breakdown always
    has the same keys.
    """
    pi = {state: stationary.get(state, 0.0) for state in S}
    success = 1.0 - params.loss_rate
    delta = params.delay
    refresh = 1.0 / params.refresh_interval
    retransmit = 1.0 / params.retransmission_interval
    lam_f = effective_false_removal_rate(protocol, params)

    fast_occupancy = pi[S.S10_FAST] + pi[S.IC_FAST]
    slow_occupancy = pi[S.S10_SLOW] + pi[S.IC_SLOW]

    components = {
        "triggers": fast_occupancy / delta,
        "refreshes": 0.0,
        "removals": 0.0,
        "trigger_retransmissions": 0.0,
        "trigger_acks": 0.0,
        "removal_notifications": 0.0,
        "removal_retransmissions": 0.0,
        "removal_acks": 0.0,
    }
    if protocol.uses_refreshes:
        components["refreshes"] = refresh * (slow_occupancy + pi[S.CONSISTENT])
    if protocol.explicit_removal:
        components["removals"] = pi[S.S01_FAST] / delta
    if protocol.reliable_triggers:
        components["trigger_retransmissions"] = retransmit * slow_occupancy
        components["trigger_acks"] = (
            success * fast_occupancy / delta + success * retransmit * slow_occupancy
        )
    if protocol.removal_notification:
        components["removal_notifications"] = lam_f * (pi[S.CONSISTENT] + pi[S.IC_SLOW])
    if protocol.reliable_removal:
        components["removal_retransmissions"] = retransmit * pi[S.S01_SLOW]
        components["removal_acks"] = (
            success * pi[S.S01_FAST] / delta + success * retransmit * pi[S.S01_SLOW]
        )
    return components


def total_message_rate(
    protocol: Protocol,
    params: SignalingParameters,
    stationary: Mapping[S, float],
) -> float:
    """The protocol's total stationary message rate ``m`` (paper §III-A.2)."""
    return sum(message_rate_components(protocol, params, stationary).values())
