"""Single-hop analytic models (paper §III-A)."""

from repro.core.singlehop.messages import message_rate_components, total_message_rate
from repro.core.singlehop.model import SingleHopModel, SingleHopSolution, solve_all
from repro.core.singlehop.states import INCONSISTENT_STATES, SingleHopState
from repro.core.singlehop.transitions import (
    build_transition_rates,
    effective_false_removal_rate,
    state_space,
)

__all__ = [
    "INCONSISTENT_STATES",
    "SingleHopModel",
    "SingleHopSolution",
    "SingleHopState",
    "build_transition_rates",
    "effective_false_removal_rate",
    "message_rate_components",
    "solve_all",
    "state_space",
    "total_message_rate",
]
